open Netpkt

type mac_test = { value : Mac_addr.t; mask : Mac_addr.t }

type vlan_test = Absent | Present | Vid of int

type t = {
  in_port : int option;
  eth_dst : mac_test option;
  eth_src : mac_test option;
  eth_type : int option;
  vlan : vlan_test option;
  vlan_pcp : int option;
  ip_src : Ipv4_addr.Prefix.t option;
  ip_dst : Ipv4_addr.Prefix.t option;
  ip_proto : int option;
  ip_tos : int option;
  l4_src : int option;
  l4_dst : int option;
}

let any =
  {
    in_port = None;
    eth_dst = None;
    eth_src = None;
    eth_type = None;
    vlan = None;
    vlan_pcp = None;
    ip_src = None;
    ip_dst = None;
    ip_proto = None;
    ip_tos = None;
    l4_src = None;
    l4_dst = None;
  }

let full_mask = Mac_addr.broadcast
let in_port p t = { t with in_port = Some p }
let eth_dst ?(mask = full_mask) value t = { t with eth_dst = Some { value; mask } }
let eth_src ?(mask = full_mask) value t = { t with eth_src = Some { value; mask } }
let eth_type ty t = { t with eth_type = Some ty }
let vlan_absent t = { t with vlan = Some Absent }
let vlan_present t = { t with vlan = Some Present }
let vid v t = { t with vlan = Some (Vid v) }
let vlan_pcp p t = { t with vlan_pcp = Some p }
let ip_src p t = { t with ip_src = Some p }
let ip_dst p t = { t with ip_dst = Some p }
let ip_proto p t = { t with ip_proto = Some p }
let ip_tos v t = { t with ip_tos = Some v }
let l4_src p t = { t with l4_src = Some p }
let l4_dst p t = { t with l4_dst = Some p }

let mac_masked mac mask =
  Int64.logand (Mac_addr.to_int64 mac) (Mac_addr.to_int64 mask)

let mac_test_matches test mac =
  Int64.equal (mac_masked mac test.mask) (mac_masked test.value test.mask)

let opt_test test = function
  | None -> true
  | Some expected -> test expected

let field_eq actual = function
  | None -> true
  | Some expected -> ( match actual with Some v -> v = expected | None -> false)

let matches t ~in_port:port (f : Packet.Fields.t) =
  opt_test (fun p -> p = port) t.in_port
  && opt_test (fun test -> mac_test_matches test f.Packet.Fields.eth_dst) t.eth_dst
  && opt_test (fun test -> mac_test_matches test f.Packet.Fields.eth_src) t.eth_src
  && opt_test (fun ty -> ty = f.Packet.Fields.eth_type) t.eth_type
  && opt_test
       (fun v ->
         match (v, f.Packet.Fields.vlan_vid) with
         | Absent, None -> true
         | Present, Some _ -> true
         | Vid expected, Some actual -> expected = actual
         | Absent, Some _ | Present, None | Vid _, None -> false)
       t.vlan
  && field_eq f.Packet.Fields.vlan_pcp t.vlan_pcp
  && opt_test
       (fun prefix ->
         match f.Packet.Fields.ip_src with
         | Some ip -> Ipv4_addr.Prefix.mem ip prefix
         | None -> false)
       t.ip_src
  && opt_test
       (fun prefix ->
         match f.Packet.Fields.ip_dst with
         | Some ip -> Ipv4_addr.Prefix.mem ip prefix
         | None -> false)
       t.ip_dst
  && field_eq f.Packet.Fields.ip_proto t.ip_proto
  && field_eq f.Packet.Fields.ip_tos t.ip_tos
  && field_eq f.Packet.Fields.l4_src t.l4_src
  && field_eq f.Packet.Fields.l4_dst t.l4_dst

let matches_packet t ~in_port pkt =
  matches t ~in_port (Packet.Fields.of_packet pkt)

(* [sub_opt field_subsumes a b]: does test [a] accept everything [b]
   accepts? A wildcard accepts everything; a present test against a
   wildcard does not. *)
let sub_opt field_subsumes a b =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some x, Some y -> field_subsumes x y

let mac_subsumes a b =
  (* a's constrained bits must be constrained identically in b. *)
  let am = Mac_addr.to_int64 a.mask and bm = Mac_addr.to_int64 b.mask in
  Int64.equal (Int64.logand am bm) am
  && Int64.equal (mac_masked a.value a.mask) (mac_masked b.value a.mask)

let vlan_subsumes a b =
  match (a, b) with
  | Present, (Present | Vid _) -> true
  | Absent, Absent -> true
  | Vid x, Vid y -> x = y
  | (Absent | Present | Vid _), _ -> false

let subsumes a b =
  sub_opt ( = ) a.in_port b.in_port
  && sub_opt mac_subsumes a.eth_dst b.eth_dst
  && sub_opt mac_subsumes a.eth_src b.eth_src
  && sub_opt ( = ) a.eth_type b.eth_type
  && sub_opt vlan_subsumes a.vlan b.vlan
  && sub_opt ( = ) a.vlan_pcp b.vlan_pcp
  && sub_opt Ipv4_addr.Prefix.subsumes a.ip_src b.ip_src
  && sub_opt Ipv4_addr.Prefix.subsumes a.ip_dst b.ip_dst
  && sub_opt ( = ) a.ip_proto b.ip_proto
  && sub_opt ( = ) a.ip_tos b.ip_tos
  && sub_opt ( = ) a.l4_src b.l4_src
  && sub_opt ( = ) a.l4_dst b.l4_dst

let equal a b = a = b
let is_exact_overlap = equal
let compare = Stdlib.compare
let hash = Hashtbl.hash

let wildcard_count t =
  let count opt = if Option.is_none opt then 1 else 0 in
  count t.in_port + count t.eth_dst + count t.eth_src + count t.eth_type
  + count t.vlan + count t.vlan_pcp + count t.ip_src + count t.ip_dst
  + count t.ip_proto + count t.ip_tos + count t.l4_src + count t.l4_dst

let pp fmt t =
  let parts = ref [] in
  let add name s = parts := Printf.sprintf "%s=%s" name s :: !parts in
  Option.iter (fun p -> add "in_port" (string_of_int p)) t.in_port;
  Option.iter
    (fun m ->
      add "eth_dst"
        (if Mac_addr.equal m.mask full_mask then Mac_addr.to_string m.value
         else Mac_addr.to_string m.value ^ "/" ^ Mac_addr.to_string m.mask))
    t.eth_dst;
  Option.iter
    (fun m ->
      add "eth_src"
        (if Mac_addr.equal m.mask full_mask then Mac_addr.to_string m.value
         else Mac_addr.to_string m.value ^ "/" ^ Mac_addr.to_string m.mask))
    t.eth_src;
  Option.iter (fun ty -> add "eth_type" (Printf.sprintf "0x%04x" ty)) t.eth_type;
  Option.iter
    (fun v ->
      add "vlan"
        (match v with Absent -> "none" | Present -> "any" | Vid x -> string_of_int x))
    t.vlan;
  Option.iter (fun p -> add "pcp" (string_of_int p)) t.vlan_pcp;
  Option.iter (fun p -> add "ip_src" (Ipv4_addr.Prefix.to_string p)) t.ip_src;
  Option.iter (fun p -> add "ip_dst" (Ipv4_addr.Prefix.to_string p)) t.ip_dst;
  Option.iter (fun p -> add "proto" (string_of_int p)) t.ip_proto;
  Option.iter (fun v -> add "tos" (string_of_int v)) t.ip_tos;
  Option.iter (fun p -> add "l4_src" (string_of_int p)) t.l4_src;
  Option.iter (fun p -> add "l4_dst" (string_of_int p)) t.l4_dst;
  match !parts with
  | [] -> Format.pp_print_string fmt "*"
  | parts -> Format.pp_print_string fmt (String.concat "," (List.rev parts))
