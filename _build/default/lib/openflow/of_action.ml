open Netpkt

type out_port = Physical of int | In_port | Flood | All | Controller of int

type t =
  | Output of out_port
  | Group of int
  | Push_vlan
  | Pop_vlan
  | Set_vlan_vid of int
  | Set_vlan_pcp of int
  | Set_eth_src of Mac_addr.t
  | Set_eth_dst of Mac_addr.t
  | Set_ip_src of Ipv4_addr.t
  | Set_ip_dst of Ipv4_addr.t
  | Set_ip_tos of int
  | Set_l4_src of int
  | Set_l4_dst of int
  | Drop

let output n = Output (Physical n)

let map_ip pkt f =
  match pkt.Packet.l3 with
  | Packet.Ip ip -> { pkt with Packet.l3 = Packet.Ip (f ip) }
  | Packet.Arp _ | Packet.Raw _ -> pkt

let map_l4 pkt ~tcp ~udp =
  map_ip pkt (fun ip ->
      match ip.Ipv4.payload with
      | Ipv4.Tcp seg -> { ip with Ipv4.payload = Ipv4.Tcp (tcp seg) }
      | Ipv4.Udp dgram -> { ip with Ipv4.payload = Ipv4.Udp (udp dgram) }
      | Ipv4.Icmp _ | Ipv4.Raw _ -> ip)

let apply_rewrite action pkt =
  match action with
  | Output _ | Group _ | Drop -> pkt
  | Push_vlan -> Packet.push_vlan (Vlan.make 0) pkt
  | Pop_vlan -> (
      match Packet.pop_vlan pkt with Some (_, rest) -> rest | None -> pkt)
  | Set_vlan_vid vid -> (
      match pkt.Packet.vlans with
      | [] -> pkt
      | _ :: _ -> Packet.set_outer_vid vid pkt)
  | Set_vlan_pcp pcp -> (
      match pkt.Packet.vlans with
      | [] -> pkt
      | tag :: rest -> { pkt with Packet.vlans = { tag with Vlan.pcp } :: rest })
  | Set_eth_src mac -> { pkt with Packet.src = mac }
  | Set_eth_dst mac -> { pkt with Packet.dst = mac }
  | Set_ip_src ip -> map_ip pkt (fun hdr -> { hdr with Ipv4.src = ip })
  | Set_ip_dst ip -> map_ip pkt (fun hdr -> { hdr with Ipv4.dst = ip })
  | Set_ip_tos tos -> map_ip pkt (fun hdr -> { hdr with Ipv4.tos })
  | Set_l4_src port ->
      map_l4 pkt
        ~tcp:(fun seg -> { seg with Tcp.src_port = port })
        ~udp:(fun dgram -> { dgram with Udp.src_port = port })
  | Set_l4_dst port ->
      map_l4 pkt
        ~tcp:(fun seg -> { seg with Tcp.dst_port = port })
        ~udp:(fun dgram -> { dgram with Udp.dst_port = port })

let equal a b = a = b

let pp_out fmt = function
  | Physical n -> Format.fprintf fmt "output:%d" n
  | In_port -> Format.pp_print_string fmt "output:in_port"
  | Flood -> Format.pp_print_string fmt "output:flood"
  | All -> Format.pp_print_string fmt "output:all"
  | Controller n -> Format.fprintf fmt "output:controller(%d)" n

let pp fmt = function
  | Output o -> pp_out fmt o
  | Group g -> Format.fprintf fmt "group:%d" g
  | Push_vlan -> Format.pp_print_string fmt "push_vlan"
  | Pop_vlan -> Format.pp_print_string fmt "pop_vlan"
  | Set_vlan_vid v -> Format.fprintf fmt "set_vlan_vid:%d" v
  | Set_vlan_pcp p -> Format.fprintf fmt "set_vlan_pcp:%d" p
  | Set_eth_src m -> Format.fprintf fmt "set_eth_src:%a" Mac_addr.pp m
  | Set_eth_dst m -> Format.fprintf fmt "set_eth_dst:%a" Mac_addr.pp m
  | Set_ip_src i -> Format.fprintf fmt "set_ip_src:%a" Ipv4_addr.pp i
  | Set_ip_dst i -> Format.fprintf fmt "set_ip_dst:%a" Ipv4_addr.pp i
  | Set_ip_tos v -> Format.fprintf fmt "set_ip_tos:%d" v
  | Set_l4_src p -> Format.fprintf fmt "set_l4_src:%d" p
  | Set_l4_dst p -> Format.fprintf fmt "set_l4_dst:%d" p
  | Drop -> Format.pp_print_string fmt "drop"

let pp_list fmt actions =
  match actions with
  | [] -> Format.pp_print_string fmt "drop"
  | actions ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
        pp fmt actions
