(** OpenFlow actions: where packets go and how their headers are
    rewritten on the way. *)

(** Targets an [Output] action can name. *)
type out_port =
  | Physical of int
  | In_port        (** hairpin out of the ingress port *)
  | Flood          (** all ports except the ingress *)
  | All            (** all ports including the ingress *)
  | Controller of int  (** send to controller, truncated to [n] bytes (0 = full) *)

type t =
  | Output of out_port
  | Group of int
  | Push_vlan              (** push an empty 802.1Q tag (VID 0) *)
  | Pop_vlan
  | Set_vlan_vid of int    (** requires a tag to be present *)
  | Set_vlan_pcp of int
  | Set_eth_src of Netpkt.Mac_addr.t
  | Set_eth_dst of Netpkt.Mac_addr.t
  | Set_ip_src of Netpkt.Ipv4_addr.t
  | Set_ip_dst of Netpkt.Ipv4_addr.t
  | Set_ip_tos of int
  | Set_l4_src of int
  | Set_l4_dst of int
  | Drop
      (** explicit drop: clears the action set (OpenFlow expresses this as
          an empty action list; a constructor makes intent visible) *)

val output : int -> t
(** [output n] is [Output (Physical n)]. *)

val apply_rewrite : t -> Netpkt.Packet.t -> Netpkt.Packet.t
(** Apply a header-rewrite action.  Output/Group/Drop leave the packet
    unchanged; rewrites that do not apply (e.g. [Set_l4_src] on an ARP
    frame, [Set_vlan_vid] on an untagged frame) are no-ops, matching
    OpenFlow's "do nothing on prerequisite failure" behaviour. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
