type t = {
  mutable entries : Flow_entry.t list; (* priority-descending, stable *)
  max_entries : int;
  mutable lookups : int;
  mutable version : int;
}

exception Table_full

let create ?(max_entries = 100_000) () =
  if max_entries <= 0 then invalid_arg "Flow_table.create: max_entries <= 0";
  { entries = []; max_entries; lookups = 0; version = 0 }

let bump t = t.version <- t.version + 1

(* Insert preserving priority-descending order; FIFO among equal
   priorities so lookup ties are stable. *)
let rec insert entry = function
  | [] -> [ entry ]
  | e :: rest as all ->
      if e.Flow_entry.priority < entry.Flow_entry.priority then entry :: all
      else e :: insert entry rest

let add t ~now_ns entry =
  let replacing e =
    e.Flow_entry.priority = entry.Flow_entry.priority
    && Of_match.is_exact_overlap e.Flow_entry.match_ entry.Flow_entry.match_
  in
  let remaining = List.filter (fun e -> not (replacing e)) t.entries in
  if List.length remaining >= t.max_entries then raise Table_full;
  entry.Flow_entry.installed_at_ns <- now_ns;
  entry.Flow_entry.last_used_ns <- now_ns;
  t.entries <- insert entry remaining;
  bump t

let selected ~strict match_ ~priority e =
  if strict then
    e.Flow_entry.priority = priority
    && Of_match.is_exact_overlap e.Flow_entry.match_ match_
  else Of_match.subsumes match_ e.Flow_entry.match_

let modify t ~strict match_ ~priority instructions =
  let changed = ref 0 in
  t.entries <-
    List.map
      (fun e ->
        if selected ~strict match_ ~priority e then begin
          incr changed;
          { e with Flow_entry.instructions }
        end
        else e)
      t.entries;
  if !changed > 0 then bump t;
  !changed

let outputs_to_port port e =
  List.exists
    (function
      | Of_action.Output (Of_action.Physical p) -> p = port
      | Of_action.Output
          (Of_action.In_port | Of_action.Flood | Of_action.All | Of_action.Controller _)
      | Of_action.Group _ | Of_action.Push_vlan | Of_action.Pop_vlan
      | Of_action.Set_vlan_vid _ | Of_action.Set_vlan_pcp _
      | Of_action.Set_eth_src _ | Of_action.Set_eth_dst _
      | Of_action.Set_ip_src _ | Of_action.Set_ip_dst _ | Of_action.Set_ip_tos _
      | Of_action.Set_l4_src _ | Of_action.Set_l4_dst _ | Of_action.Drop -> false)
    (Flow_entry.actions e)

let delete t ~strict ?out_port match_ ~priority =
  let doomed e =
    selected ~strict match_ ~priority e
    && match out_port with None -> true | Some p -> outputs_to_port p e
  in
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> not (doomed e)) t.entries;
  let removed = before - List.length t.entries in
  if removed > 0 then bump t;
  removed

let clear t =
  if t.entries <> [] then begin
    t.entries <- [];
    bump t
  end

let lookup t ~in_port fields =
  t.lookups <- t.lookups + 1;
  List.find_opt (fun e -> Of_match.matches e.Flow_entry.match_ ~in_port fields) t.entries

let lookup_scan t ~in_port fields =
  t.lookups <- t.lookups + 1;
  let rec scan n = function
    | [] -> (None, n)
    | e :: rest ->
        if Of_match.matches e.Flow_entry.match_ ~in_port fields then (Some e, n + 1)
        else scan (n + 1) rest
  in
  scan 0 t.entries

let hit _t ~now_ns ~bytes entry = Flow_entry.touch entry ~now_ns ~bytes

let expire t ~now_ns =
  let expired, live =
    List.partition (fun e -> Flow_entry.expired e ~now_ns) t.entries
  in
  if expired <> [] then begin
    t.entries <- live;
    bump t
  end;
  expired

let size t = List.length t.entries
let entries t = t.entries
let lookups t = t.lookups
let version t = t.version

let pp fmt t =
  Format.fprintf fmt "flow table (%d entries):@." (size t);
  List.iter (fun e -> Format.fprintf fmt "  %a@." Flow_entry.pp e) t.entries
