type bucket = { weight : int; actions : Of_action.t list }

type group_type = All | Select | Indirect

type group = { gtype : group_type; buckets : bucket list; total_weight : int }

type t = (int, group) Hashtbl.t

let create () : t = Hashtbl.create 16

let validate gtype buckets =
  let total = List.fold_left (fun acc b -> acc + Stdlib.max 0 b.weight) 0 buckets in
  (match gtype with
  | Indirect ->
      if List.length buckets <> 1 then
        invalid_arg "Group_table: indirect group needs exactly one bucket"
  | Select ->
      if total <= 0 then invalid_arg "Group_table: select group needs positive weight"
  | All -> ());
  total

let add t ~id gtype buckets =
  if Hashtbl.mem t id then invalid_arg "Group_table.add: id exists";
  let total_weight = validate gtype buckets in
  Hashtbl.replace t id { gtype; buckets; total_weight }

let modify t ~id gtype buckets =
  if not (Hashtbl.mem t id) then raise Not_found;
  let total_weight = validate gtype buckets in
  Hashtbl.replace t id { gtype; buckets; total_weight }

let remove t ~id = Hashtbl.remove t id
let mem t ~id = Hashtbl.mem t id
let size t = Hashtbl.length t

let select_buckets t ~id ~flow_hash =
  match Hashtbl.find_opt t id with
  | None -> raise Not_found
  | Some g -> (
      match g.gtype with
      | All -> g.buckets
      | Indirect -> g.buckets
      | Select ->
          let target = abs flow_hash mod g.total_weight in
          let rec pick acc = function
            | [] -> [] (* unreachable: total_weight > 0 *)
            | b :: rest ->
                let acc = acc + Stdlib.max 0 b.weight in
                if target < acc then [ b ] else pick acc rest
          in
          pick 0 g.buckets)
