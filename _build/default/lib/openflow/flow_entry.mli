(** One flow-table entry: priority, match, instructions, counters and
    timeouts.

    The openflow library is clock-agnostic: times enter as plain
    nanosecond integers ([now_ns]) supplied by whoever owns the clock. *)

type instruction =
  | Apply_actions of Of_action.t list
      (** executed immediately, in order *)
  | Write_actions of Of_action.t list
      (** merged into the action set, executed at pipeline end *)
  | Clear_actions
  | Goto_table of int
  | Meter of int
      (** police the packet through a {!Meter_table} band first; a packet
          the meter drops stops the pipeline with no outputs *)

type t = {
  priority : int;
  match_ : Of_match.t;
  instructions : instruction list;
  cookie : int64;
  idle_timeout_s : int option;  (** [None] = permanent *)
  hard_timeout_s : int option;
  mutable packets : int;
  mutable bytes : int;
  mutable installed_at_ns : int;
  mutable last_used_ns : int;
}

val make :
  ?priority:int ->
  ?cookie:int64 ->
  ?idle_timeout_s:int ->
  ?hard_timeout_s:int ->
  match_:Of_match.t ->
  instruction list ->
  t
(** Default priority 1000 (higher wins), no timeouts, zero counters. *)

val touch : t -> now_ns:int -> bytes:int -> unit
(** Update counters on a hit. *)

val expired : t -> now_ns:int -> bool

val actions : t -> Of_action.t list
(** Flattened [Apply_actions] content — convenient for single-table use. *)

val pp : Format.formatter -> t -> unit
