(** Multi-table OpenFlow pipeline execution.

    A pipeline owns a fixed array of flow tables and a group table.
    {!execute} walks a packet through the tables starting at table 0,
    honouring [Apply_actions] (immediate, in order), [Write_actions]/
    [Clear_actions] (deferred action set, run at pipeline end) and
    [Goto_table], and resolving [Group] actions through the group table.

    The pipeline is engine-agnostic; flooding is returned symbolically so
    the owning switch can expand it over its own port set. *)

(** Where a packet (in its state at emission time) leaves the pipeline. *)
type output =
  | Port of int * Netpkt.Packet.t
  | In_port of Netpkt.Packet.t
  | Flood of Netpkt.Packet.t            (** every port except the ingress *)
  | All_ports of Netpkt.Packet.t        (** every port including the ingress *)
  | Controller of int * Netpkt.Packet.t (** truncation length (0 = full) *)

type result = {
  outputs : output list;   (** in emission order *)
  table_miss : bool;       (** true iff the walk hit a table with no match *)
  matched : Flow_entry.t list;  (** entries hit, per table, in order *)
}

type t

val create : ?num_tables:int -> ?max_entries_per_table:int -> unit -> t
(** Default: 4 tables (0-3), matching small hardware pipelines, with the
    {!Flow_table} default capacity. *)

val num_tables : t -> int
val table : t -> int -> Flow_table.t
(** @raise Invalid_argument on a bad index. *)

val groups : t -> Group_table.t
val meters : t -> Meter_table.t

val flow_hash : Netpkt.Packet.Fields.t -> int
(** The hash [Select] groups use — a function of the 5-tuple only, so a
    flow's packets always pick the same bucket. *)

val execute : t -> now_ns:int -> in_port:int -> Netpkt.Packet.t -> result
(** Flow-entry counters of matched entries are updated. *)

val execute_with :
  t ->
  lookup:(int -> in_port:int -> Netpkt.Packet.Fields.t -> Flow_entry.t option) ->
  now_ns:int ->
  in_port:int ->
  Netpkt.Packet.t ->
  result
(** Like {!execute}, but table lookups go through [lookup] (first argument
    is the table id).  This is how alternative dataplanes — caches,
    specialized matchers — reuse the instruction-execution semantics while
    supplying their own classification. *)

val total_entries : t -> int
val version : t -> int
(** Sum of table versions — changes whenever any table changes. *)
