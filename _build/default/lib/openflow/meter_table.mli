(** OpenFlow meter table: per-flow rate policing via token buckets.

    Only the drop band type is modelled (OFPMBT_DROP) — the one the
    "replace a standalone policer appliance" use case needs.  Token
    buckets are refilled lazily from the packet timestamps, so the meters
    are exact in simulated time with no periodic events. *)

type band = { rate_kbps : int; burst_kb : int }

type t

val create : unit -> t

val add : t -> id:int -> band -> unit
(** @raise Invalid_argument if the id exists or the band has a
    non-positive rate or burst. *)

val modify : t -> id:int -> band -> unit
(** Replaces the band and resets the bucket. @raise Not_found if absent. *)

val remove : t -> id:int -> unit
val mem : t -> id:int -> bool
val size : t -> int

val apply : t -> id:int -> now_ns:int -> bytes:int -> [ `Pass | `Drop ]
(** Offer a packet of [bytes] to meter [id] at [now_ns].  Unknown meters
    pass (matching OpenFlow's behaviour of treating a dangling meter
    instruction as a no-op once the meter is deleted). *)

val stats : t -> id:int -> (int * int) option
(** (passed, dropped) packet counts. *)
