type instruction =
  | Apply_actions of Of_action.t list
  | Write_actions of Of_action.t list
  | Clear_actions
  | Goto_table of int
  | Meter of int

type t = {
  priority : int;
  match_ : Of_match.t;
  instructions : instruction list;
  cookie : int64;
  idle_timeout_s : int option;
  hard_timeout_s : int option;
  mutable packets : int;
  mutable bytes : int;
  mutable installed_at_ns : int;
  mutable last_used_ns : int;
}

let make ?(priority = 1000) ?(cookie = 0L) ?idle_timeout_s ?hard_timeout_s
    ~match_ instructions =
  {
    priority;
    match_;
    instructions;
    cookie;
    idle_timeout_s;
    hard_timeout_s;
    packets = 0;
    bytes = 0;
    installed_at_ns = 0;
    last_used_ns = 0;
  }

let touch t ~now_ns ~bytes =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes;
  t.last_used_ns <- now_ns

let expired t ~now_ns =
  let over timeout_s since =
    match timeout_s with
    | None -> false
    | Some s -> now_ns - since > s * 1_000_000_000
  in
  over t.hard_timeout_s t.installed_at_ns
  || over t.idle_timeout_s (Stdlib.max t.last_used_ns t.installed_at_ns)

let actions t =
  List.concat_map
    (function
      | Apply_actions acts -> acts
      | Write_actions _ | Clear_actions | Goto_table _ | Meter _ -> [])
    t.instructions

let pp_instruction fmt = function
  | Apply_actions acts -> Format.fprintf fmt "apply(%a)" Of_action.pp_list acts
  | Write_actions acts -> Format.fprintf fmt "write(%a)" Of_action.pp_list acts
  | Clear_actions -> Format.pp_print_string fmt "clear"
  | Goto_table n -> Format.fprintf fmt "goto:%d" n
  | Meter id -> Format.fprintf fmt "meter:%d" id

let pp fmt t =
  Format.fprintf fmt "prio=%d %a -> %a [n=%d]" t.priority Of_match.pp t.match_
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       pp_instruction)
    t.instructions t.packets
