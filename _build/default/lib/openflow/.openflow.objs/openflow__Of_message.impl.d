lib/openflow/of_message.ml: Flow_entry Format Group_table List Meter_table Netpkt Of_action Of_match
