lib/openflow/group_table.mli: Of_action
