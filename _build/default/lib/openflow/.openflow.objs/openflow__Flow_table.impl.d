lib/openflow/flow_table.ml: Flow_entry Format List Of_action Of_match
