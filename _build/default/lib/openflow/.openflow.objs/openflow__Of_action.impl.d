lib/openflow/of_action.ml: Format Ipv4 Ipv4_addr Mac_addr Netpkt Packet Tcp Udp Vlan
