lib/openflow/flow_entry.mli: Format Of_action Of_match
