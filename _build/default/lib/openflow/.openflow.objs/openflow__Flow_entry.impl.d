lib/openflow/flow_entry.ml: Format List Of_action Of_match Stdlib
