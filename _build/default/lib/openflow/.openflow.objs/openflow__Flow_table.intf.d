lib/openflow/flow_table.mli: Flow_entry Format Netpkt Of_match
