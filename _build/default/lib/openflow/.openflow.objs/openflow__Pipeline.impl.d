lib/openflow/pipeline.ml: Array Flow_entry Flow_table Group_table Hashtbl List Meter_table Netpkt Of_action Packet
