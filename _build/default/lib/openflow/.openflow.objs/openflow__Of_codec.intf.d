lib/openflow/of_codec.mli: Of_message
