lib/openflow/of_message.mli: Flow_entry Format Group_table Meter_table Netpkt Of_action Of_match
