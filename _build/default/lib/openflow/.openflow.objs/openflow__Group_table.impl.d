lib/openflow/group_table.ml: Hashtbl List Of_action Stdlib
