lib/openflow/meter_table.ml: Float Hashtbl Option
