lib/openflow/of_codec.ml: Flow_entry Group_table Int32 Int64 Ipv4_addr List Mac_addr Meter_table Netpkt Of_action Of_match Of_message Option Packet Printf String Wire
