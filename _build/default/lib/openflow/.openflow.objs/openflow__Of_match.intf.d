lib/openflow/of_match.mli: Format Netpkt
