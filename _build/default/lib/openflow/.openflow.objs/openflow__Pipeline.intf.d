lib/openflow/pipeline.mli: Flow_entry Flow_table Group_table Meter_table Netpkt
