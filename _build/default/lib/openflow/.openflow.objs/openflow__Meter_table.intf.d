lib/openflow/meter_table.mli:
