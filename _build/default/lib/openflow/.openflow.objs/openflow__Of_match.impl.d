lib/openflow/of_match.ml: Format Hashtbl Int64 Ipv4_addr List Mac_addr Netpkt Option Packet Printf Stdlib String
