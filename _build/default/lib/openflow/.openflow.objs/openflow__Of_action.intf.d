lib/openflow/of_action.mli: Format Netpkt
