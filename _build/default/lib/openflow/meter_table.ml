type band = { rate_kbps : int; burst_kb : int }

type meter = {
  mutable band : band;
  mutable tokens_bits : float;
  mutable last_refill_ns : int;
  mutable passed : int;
  mutable dropped : int;
}

type t = (int, meter) Hashtbl.t

let create () : t = Hashtbl.create 8

let capacity_bits band = float_of_int (band.burst_kb * 8000)

let validate band =
  if band.rate_kbps <= 0 || band.burst_kb <= 0 then
    invalid_arg "Meter_table: rate and burst must be positive"

let add t ~id band =
  validate band;
  if Hashtbl.mem t id then invalid_arg "Meter_table.add: id exists";
  Hashtbl.replace t id
    {
      band;
      tokens_bits = capacity_bits band;
      last_refill_ns = 0;
      passed = 0;
      dropped = 0;
    }

let modify t ~id band =
  validate band;
  match Hashtbl.find_opt t id with
  | None -> raise Not_found
  | Some m ->
      m.band <- band;
      m.tokens_bits <- capacity_bits band;
      m.last_refill_ns <- 0

let remove t ~id = Hashtbl.remove t id
let mem t ~id = Hashtbl.mem t id
let size t = Hashtbl.length t

let apply t ~id ~now_ns ~bytes =
  match Hashtbl.find_opt t id with
  | None -> `Pass
  | Some m ->
      let elapsed = now_ns - m.last_refill_ns in
      if elapsed > 0 then begin
        (* rate_kbps = bits per microsecond / 1000 = bits/ns * 1e6 *)
        let refill = float_of_int m.band.rate_kbps *. float_of_int elapsed /. 1e6 in
        m.tokens_bits <- Float.min (capacity_bits m.band) (m.tokens_bits +. refill);
        m.last_refill_ns <- now_ns
      end;
      let need = float_of_int (bytes * 8) in
      if m.tokens_bits >= need then begin
        m.tokens_bits <- m.tokens_bits -. need;
        m.passed <- m.passed + 1;
        `Pass
      end
      else begin
        m.dropped <- m.dropped + 1;
        `Drop
      end

let stats t ~id =
  Option.map (fun m -> (m.passed, m.dropped)) (Hashtbl.find_opt t id)
