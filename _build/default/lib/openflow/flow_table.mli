(** A priority-ordered flow table with OpenFlow add/modify/delete
    semantics, counters, capacity and timeout expiry. *)

type t

val create : ?max_entries:int -> unit -> t
(** Default capacity 100_000 entries. *)

exception Table_full

val add : t -> now_ns:int -> Flow_entry.t -> unit
(** Insert an entry.  An existing entry with identical match and priority
    is replaced (counters reset), per OFPFC_ADD.
    @raise Table_full when at capacity and not replacing. *)

val modify : t -> strict:bool -> Of_match.t -> priority:int ->
  Flow_entry.instruction list -> int
(** Replace the instructions of matching entries (strict: same match and
    priority; non-strict: every entry whose match is subsumed).  Counters
    are preserved.  Returns the number of entries changed. *)

val delete : t -> strict:bool -> ?out_port:int -> Of_match.t -> priority:int -> int
(** Remove matching entries (same strictness rules); [out_port] further
    restricts to entries with an output to that port.  Returns the number
    removed. *)

val clear : t -> unit

val lookup : t -> in_port:int -> Netpkt.Packet.Fields.t -> Flow_entry.t option
(** Highest-priority matching entry (stable: earliest-added wins ties).
    Does {e not} update counters — callers decide (see {!hit}). *)

val lookup_scan :
  t -> in_port:int -> Netpkt.Packet.Fields.t -> Flow_entry.t option * int
(** Like {!lookup} but also reports how many entries were examined —
    the cost a linear dataplane pays. *)

val hit : t -> now_ns:int -> bytes:int -> Flow_entry.t -> unit
(** Record a packet against an entry found by {!lookup}. *)

val expire : t -> now_ns:int -> Flow_entry.t list
(** Remove and return entries whose idle/hard timeout has passed. *)

val size : t -> int
val entries : t -> Flow_entry.t list
(** Priority-descending. *)

val lookups : t -> int
(** Total {!lookup} calls (for cache-hit-rate style statistics). *)

val version : t -> int
(** Increments on every mutation — lets caches detect staleness. *)

val pp : Format.formatter -> t -> unit
