(** OpenFlow matches: a conjunction of (optionally masked) header-field
    tests against a packet's {!Netpkt.Packet.Fields} view plus the ingress
    port.  An absent test is a wildcard.

    Field prerequisites follow OpenFlow semantics implicitly: a test on a
    field the packet does not carry (e.g. [ip_src] on an ARP frame) simply
    fails, so rules behave as if guarded by their protocol preconditions. *)

type mac_test = { value : Netpkt.Mac_addr.t; mask : Netpkt.Mac_addr.t }
(** Bits set in [mask] must match [value]. *)

type vlan_test =
  | Absent        (** matches only untagged frames (OFPVID_NONE) *)
  | Present       (** matches any tagged frame (OFPVID_PRESENT) *)
  | Vid of int    (** matches a tagged frame with this VID *)

type t = {
  in_port : int option;
  eth_dst : mac_test option;
  eth_src : mac_test option;
  eth_type : int option;
  vlan : vlan_test option;
  vlan_pcp : int option;
  ip_src : Netpkt.Ipv4_addr.Prefix.t option;
  ip_dst : Netpkt.Ipv4_addr.Prefix.t option;
  ip_proto : int option;
  ip_tos : int option;
  l4_src : int option;
  l4_dst : int option;
}

val any : t
(** The all-wildcard match. *)

(** Builder combinators, e.g.
    [Of_match.(any |> in_port 3 |> vid 101)]. *)

val in_port : int -> t -> t
val eth_dst : ?mask:Netpkt.Mac_addr.t -> Netpkt.Mac_addr.t -> t -> t
val eth_src : ?mask:Netpkt.Mac_addr.t -> Netpkt.Mac_addr.t -> t -> t
val eth_type : int -> t -> t
val vlan_absent : t -> t
val vlan_present : t -> t
val vid : int -> t -> t
val vlan_pcp : int -> t -> t
val ip_src : Netpkt.Ipv4_addr.Prefix.t -> t -> t
val ip_dst : Netpkt.Ipv4_addr.Prefix.t -> t -> t
val ip_proto : int -> t -> t
val ip_tos : int -> t -> t
val l4_src : int -> t -> t
val l4_dst : int -> t -> t

val matches : t -> in_port:int -> Netpkt.Packet.Fields.t -> bool

val matches_packet : t -> in_port:int -> Netpkt.Packet.t -> bool
(** Convenience: [matches] on [Fields.of_packet]. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: every packet matched by [b] is matched by [a]
    (conservative: may return [false] for exotic mask overlaps, never a
    wrong [true]). *)

val is_exact_overlap : t -> t -> bool
(** Structural equality — what OpenFlow uses to decide whether a
    flow-mod replaces an existing entry of equal priority. *)

val wildcard_count : t -> int
(** Number of absent tests (12 = match-all). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
