(** OpenFlow group table: indirection targets for [Group] actions.

    Three of the four OpenFlow group types are modelled — [All]
    (replicate to every bucket, e.g. multicast), [Select] (pick one
    bucket by flow hash, e.g. ECMP/load-balancing) and [Indirect]
    (single bucket, shared next-hop). *)

type bucket = { weight : int; actions : Of_action.t list }

type group_type = All | Select | Indirect

type t

val create : unit -> t

val add : t -> id:int -> group_type -> bucket list -> unit
(** @raise Invalid_argument if the id exists, if an [Indirect] group has
    other than one bucket, or if a [Select] group has a non-positive
    total weight. *)

val modify : t -> id:int -> group_type -> bucket list -> unit
(** @raise Not_found if absent. *)

val remove : t -> id:int -> unit
val mem : t -> id:int -> bool
val size : t -> int

val select_buckets :
  t -> id:int -> flow_hash:int -> bucket list
(** Buckets to execute for a packet with [flow_hash]: all of them for
    [All], the weighted hash-selected one for [Select], the single one
    for [Indirect].  @raise Not_found for an unknown id. *)
