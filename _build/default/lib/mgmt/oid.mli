(** SNMP object identifiers. *)

type t
(** A non-empty sequence of non-negative arcs, e.g. [1.3.6.1.2.1.1.1.0]. *)

val of_list : int list -> t
(** @raise Invalid_argument on an empty list or negative arc. *)

val to_list : t -> int list

val of_string : string -> t
(** Parses dotted notation, with or without a leading dot.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val append : t -> int list -> t
(** [append t arcs] extends [t]. *)

val is_prefix : t -> t -> bool
(** [is_prefix p t]: does [t] live under [p]? (Reflexive.) *)

val compare : t -> t -> int
(** Lexicographic — the ordering SNMP getnext walks. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Well-known MIB-2 locations used by the simulated agents.  Interface
    accessors take a 1-based ifIndex, SNMP-style. *)
module Std : sig
  val sys_descr : t

  val sys_object_id : t

  val sys_up_time : t

  val sys_name : t

  val if_number : t

  val if_table : t

  val if_descr : int -> t

  val if_oper_status : int -> t

  val if_in_ucast : int -> t

  val if_out_ucast : int -> t

  val vlan_port_vlan : int -> t
  (** Port-VLAN assignment (modelled on Q-BRIDGE dot1qPvid): readable and
      writable per port index. *)
end
