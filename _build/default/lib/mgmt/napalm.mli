(** A NAPALM-like vendor-neutral device-management API.  The HARMLESS
    Manager programs legacy switches exclusively through this interface,
    so it works identically against the IOS-like and EOS-like dialects —
    the vendor-neutrality claim of the paper. *)

type facts = {
  vendor : string;
  model : string;
  os_version : string;
  serial : string;
  hostname : string;
  uptime_s : int;
  interface_count : int;
}

type interface = {
  index : int;          (** 0-based port *)
  if_name : string;     (** dialect CLI name *)
  oper_up : bool;
  in_packets : int;
  out_packets : int;
}

(** A connected driver; all operations act on one device. *)
type t = {
  driver_name : string;
  get_facts : unit -> facts;
  get_interfaces : unit -> interface list;
  get_vlans : unit -> int list;
  get_config : unit -> string;
      (** running config, rendered in the device's dialect *)
  load_candidate : string -> (unit, string) result;
      (** stage a full replacement config (dialect text) *)
  compare_config : unit -> string list;
      (** differences running → candidate; [] when none or no candidate *)
  commit : unit -> (unit, string) result;
      (** apply the candidate; the previous running config is retained
          for {!rollback} *)
  discard : unit -> unit;
  rollback : unit -> (unit, string) result;
      (** restore the config from before the last commit *)
}

val pp_facts : Format.formatter -> facts -> unit
