type value = Int of int | Str of string

let pp_value fmt = function
  | Int n -> Format.fprintf fmt "INTEGER: %d" n
  | Str s -> Format.fprintf fmt "STRING: %s" s

type provider = {
  prefix : Oid.t;
  bindings : unit -> (Oid.t * value) list;
  setter : (Oid.t -> value -> (unit, string) result) option;
}

type t = { mutable providers : provider list }

let create () = { providers = [] }

let register_subtree t prefix ~bindings ?set () =
  let overlapping p =
    Oid.is_prefix p.prefix prefix || Oid.is_prefix prefix p.prefix
  in
  if List.exists overlapping t.providers then
    invalid_arg
      (Printf.sprintf "Mib.register_subtree: %s overlaps an existing mount"
         (Oid.to_string prefix));
  t.providers <- { prefix; bindings; setter = set } :: t.providers

let register_scalar t oid ~get ?set () =
  let bindings () = [ (oid, get ()) ] in
  register_subtree t oid ~bindings
    ?set:(Option.map (fun f _oid v -> f v) set)
    ()

let all_bindings t =
  List.concat_map (fun p -> p.bindings ()) t.providers
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let get t oid =
  List.find_map
    (fun p ->
      if Oid.is_prefix p.prefix oid then
        List.find_map
          (fun (o, v) -> if Oid.equal o oid then Some v else None)
          (p.bindings ())
      else None)
    t.providers

let set t oid value =
  match List.find_opt (fun p -> Oid.is_prefix p.prefix oid) t.providers with
  | Some { setter = Some f; _ } -> f oid value
  | Some { setter = None; _ } | None -> Error "notWritable"

let next t oid =
  List.find_opt (fun (o, _) -> Oid.compare o oid > 0) (all_bindings t)

let walk t prefix =
  List.filter (fun (o, _) -> Oid.is_prefix prefix o) (all_bindings t)
