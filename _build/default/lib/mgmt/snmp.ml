type error =
  | Bad_community
  | No_such_object
  | Not_writable of string
  | End_of_mib

let pp_error fmt = function
  | Bad_community -> Format.pp_print_string fmt "bad community"
  | No_such_object -> Format.pp_print_string fmt "noSuchObject"
  | Not_writable reason -> Format.fprintf fmt "notWritable (%s)" reason
  | End_of_mib -> Format.pp_print_string fmt "endOfMibView"

type t = {
  mib : Mib.t;
  read_community : string;
  write_community : string;
  mutable requests : int;
}

let create ?(read_community = "public") ?(write_community = "private") mib =
  { mib; read_community; write_community; requests = 0 }

let readable t community =
  String.equal community t.read_community || String.equal community t.write_community

let get t ~community oid =
  t.requests <- t.requests + 1;
  if not (readable t community) then Error Bad_community
  else match Mib.get t.mib oid with Some v -> Ok v | None -> Error No_such_object

let get_next t ~community oid =
  t.requests <- t.requests + 1;
  if not (readable t community) then Error Bad_community
  else match Mib.next t.mib oid with Some b -> Ok b | None -> Error End_of_mib

let set t ~community oid value =
  t.requests <- t.requests + 1;
  if not (String.equal community t.write_community) then Error Bad_community
  else
    match Mib.set t.mib oid value with
    | Ok () -> Ok ()
    | Error reason -> Error (Not_writable reason)

let walk t ~community prefix =
  t.requests <- t.requests + 1;
  if not (readable t community) then Error Bad_community
  else Ok (Mib.walk t.mib prefix)

let requests t = t.requests
