(** An SNMP agent over a {!Mib}: community-authenticated get / set /
    getnext / walk, with SNMPv2-style error reporting. *)

type error =
  | Bad_community
  | No_such_object
  | Not_writable of string
  | End_of_mib

val pp_error : Format.formatter -> error -> unit

type t

val create : ?read_community:string -> ?write_community:string -> Mib.t -> t
(** Defaults: ["public"] / ["private"]. *)

val get : t -> community:string -> Oid.t -> (Mib.value, error) result
val get_next : t -> community:string -> Oid.t -> (Oid.t * Mib.value, error) result
val set : t -> community:string -> Oid.t -> Mib.value -> (unit, error) result
val walk : t -> community:string -> Oid.t -> ((Oid.t * Mib.value) list, error) result

val requests : t -> int
(** Total operations served (for the manager-workflow experiment). *)
