(** A device's management information base: a dynamic, ordered key-value
    view over live device state.  Providers register subtrees whose
    bindings are computed on demand, so counters read through SNMP are
    always current. *)

type value = Int of int | Str of string

val pp_value : Format.formatter -> value -> unit

type t

val create : unit -> t

val register_subtree :
  t ->
  Oid.t ->
  bindings:(unit -> (Oid.t * value) list) ->
  ?set:(Oid.t -> value -> (unit, string) result) ->
  unit ->
  unit
(** Mount a provider at a prefix.  [bindings] must return OIDs under the
    prefix.  [set] (if given) handles writes anywhere under the prefix.
    @raise Invalid_argument when the prefix overlaps an existing mount. *)

val register_scalar :
  t -> Oid.t -> get:(unit -> value) ->
  ?set:(value -> (unit, string) result) -> unit -> unit
(** Single-OID convenience wrapper over {!register_subtree}. *)

val get : t -> Oid.t -> value option
val set : t -> Oid.t -> value -> (unit, string) result
(** [Error "notWritable"] when no provider accepts the OID. *)

val next : t -> Oid.t -> (Oid.t * value) option
(** The first binding strictly after the given OID in lexicographic
    order — SNMP getnext. *)

val walk : t -> Oid.t -> (Oid.t * value) list
(** All bindings under a prefix, in order. *)
