type t = int list

let of_list arcs =
  if arcs = [] then invalid_arg "Oid.of_list: empty";
  if List.exists (fun a -> a < 0) arcs then invalid_arg "Oid.of_list: negative arc";
  arcs

let to_list t = t

let of_string s =
  let s = if String.length s > 0 && s.[0] = '.' then String.sub s 1 (String.length s - 1) else s in
  let arcs =
    List.map
      (fun part ->
        match int_of_string_opt part with
        | Some a when a >= 0 -> a
        | Some _ | None -> invalid_arg "Oid.of_string: bad arc")
      (String.split_on_char '.' s)
  in
  of_list arcs

let to_string t = String.concat "." (List.map string_of_int t)
let append t arcs = t @ arcs

let rec is_prefix p t =
  match (p, t) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: t' -> a = b && is_prefix p' t'

let rec compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> ( match Int.compare x y with 0 -> compare a' b' | c -> c)

let equal a b = compare a b = 0
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Std = struct
  let mib2 = [ 1; 3; 6; 1; 2; 1 ]
  let sys_descr = mib2 @ [ 1; 1; 0 ]
  let sys_object_id = mib2 @ [ 1; 2; 0 ]
  let sys_up_time = mib2 @ [ 1; 3; 0 ]
  let sys_name = mib2 @ [ 1; 5; 0 ]
  let if_number = mib2 @ [ 2; 1; 0 ]
  let if_table = mib2 @ [ 2; 2 ]
  let if_descr i = mib2 @ [ 2; 2; 1; 2; i ]
  let if_oper_status i = mib2 @ [ 2; 2; 1; 8; i ]
  let if_in_ucast i = mib2 @ [ 2; 2; 1; 11; i ]
  let if_out_ucast i = mib2 @ [ 2; 2; 1; 17; i ]

  (* dot1qPvid lives at 1.3.6.1.2.1.17.7.1.4.5.1.1.<port> *)
  let vlan_port_vlan i = mib2 @ [ 17; 7; 1; 4; 5; 1; 1; i ]
end
