(** NOS configuration dialects: render a {!Device_config} to the CLI text
    of a particular network operating system and parse it back.  Two
    dialects are modelled — an IOS-like one and an EOS-like one — which is
    what exercises the NAPALM abstraction the HARMLESS Manager relies on
    (the original uses NAPALM to speak to "Cisco IOS, Arista EOS, ...").  *)

module type S = sig
  val name : string
  (** e.g. ["ios"] *)

  val interface_name : int -> string
  (** 0-based port index to CLI name, e.g. 0 → ["GigabitEthernet0/1"]. *)

  val parse_interface_name : string -> int option

  val render : Device_config.t -> string

  val parse : string -> (Device_config.t, string) result
  (** Inverse of {!render}; also accepts hand-written config in the same
      dialect.  Unknown lines inside interface stanzas are ignored (as
      real parsers must); structural errors are reported. *)
end

module Ios : S
module Eos : S

module Junos : S
(** A JunOS-like dialect with a completely different grammar: flat
    [set interfaces ge-0/0/N ...] statements instead of indented
    stanzas — included to demonstrate that the NAPALM abstraction
    really is syntax-independent. *)

val of_name : string -> (module S) option
(** ["ios"], ["eos"] or ["junos"]. *)
