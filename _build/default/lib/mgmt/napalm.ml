type facts = {
  vendor : string;
  model : string;
  os_version : string;
  serial : string;
  hostname : string;
  uptime_s : int;
  interface_count : int;
}

type interface = {
  index : int;
  if_name : string;
  oper_up : bool;
  in_packets : int;
  out_packets : int;
}

type t = {
  driver_name : string;
  get_facts : unit -> facts;
  get_interfaces : unit -> interface list;
  get_vlans : unit -> int list;
  get_config : unit -> string;
  load_candidate : string -> (unit, string) result;
  compare_config : unit -> string list;
  commit : unit -> (unit, string) result;
  discard : unit -> unit;
  rollback : unit -> (unit, string) result;
}

let pp_facts fmt f =
  Format.fprintf fmt "%s %s (%s %s), serial %s, %d interfaces, up %ds"
    f.vendor f.model f.hostname f.os_version f.serial f.interface_count f.uptime_s
