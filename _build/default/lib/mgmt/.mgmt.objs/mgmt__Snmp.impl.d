lib/mgmt/snmp.ml: Format Mib String
