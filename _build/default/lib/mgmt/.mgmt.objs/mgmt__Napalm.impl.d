lib/mgmt/napalm.ml: Format
