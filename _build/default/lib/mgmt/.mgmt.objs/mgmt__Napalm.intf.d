lib/mgmt/napalm.mli: Format
