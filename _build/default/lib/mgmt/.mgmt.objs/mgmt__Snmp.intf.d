lib/mgmt/snmp.mli: Format Mib Oid
