lib/mgmt/dialect.ml: Buffer Device_config Ethswitch Hashtbl List Option Port_config Printf String
