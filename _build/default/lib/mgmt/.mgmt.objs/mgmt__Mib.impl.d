lib/mgmt/mib.ml: Format List Oid Option Printf
