lib/mgmt/dialect.mli: Device_config
