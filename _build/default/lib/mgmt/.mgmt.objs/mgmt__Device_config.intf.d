lib/mgmt/device_config.mli: Ethswitch
