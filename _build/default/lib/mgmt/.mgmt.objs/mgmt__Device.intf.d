lib/mgmt/device.mli: Device_config Dialect Ethswitch Napalm Snmp
