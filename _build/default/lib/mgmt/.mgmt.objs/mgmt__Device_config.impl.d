lib/mgmt/device_config.ml: Ethswitch Format Int Legacy_switch List Port_config Printf String
