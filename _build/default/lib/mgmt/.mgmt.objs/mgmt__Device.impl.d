lib/mgmt/device.ml: Device_config Dialect Engine Ethswitch Fun Hashtbl Legacy_switch List Mib Napalm Netpkt Node Oid Port_config Printf Sim_time Simnet Snmp Stats
