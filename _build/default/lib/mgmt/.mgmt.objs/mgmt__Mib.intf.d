lib/mgmt/mib.mli: Format Oid
