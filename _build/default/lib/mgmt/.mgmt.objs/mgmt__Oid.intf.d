lib/mgmt/oid.mli: Format
