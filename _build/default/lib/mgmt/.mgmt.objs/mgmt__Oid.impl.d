lib/mgmt/oid.ml: Format Int List String
