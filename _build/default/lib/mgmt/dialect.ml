open Ethswitch

module type S = sig
  val name : string
  val interface_name : int -> string
  val parse_interface_name : string -> int option
  val render : Device_config.t -> string
  val parse : string -> (Device_config.t, string) result
end

(* The rendering/parsing machinery shared by the dialects; they differ in
   interface naming and trailer. *)
module Core (Naming : sig
  val name : string
  val interface_name : int -> string
  val parse_interface_name : string -> int option
  val trailer : string option
end) : S = struct
  let name = Naming.name
  let interface_name = Naming.interface_name
  let parse_interface_name = Naming.parse_interface_name

  let render_allowed = function
    | Port_config.All -> "all"
    | Port_config.Only vids -> String.concat "," (List.map string_of_int vids)

  let render_stanza buf (s : Device_config.stanza) =
    Buffer.add_string buf (Printf.sprintf "interface %s\n" (interface_name s.Device_config.port));
    (match s.Device_config.description with
    | Some d -> Buffer.add_string buf (Printf.sprintf " description %s\n" d)
    | None -> ());
    (match s.Device_config.mode with
    | Port_config.Disabled -> Buffer.add_string buf " shutdown\n"
    | Port_config.Access vid ->
        Buffer.add_string buf " switchport mode access\n";
        Buffer.add_string buf (Printf.sprintf " switchport access vlan %d\n" vid)
    | Port_config.Trunk { native; allowed } ->
        Buffer.add_string buf " switchport mode trunk\n";
        (match native with
        | Some v ->
            Buffer.add_string buf (Printf.sprintf " switchport trunk native vlan %d\n" v)
        | None -> ());
        Buffer.add_string buf
          (Printf.sprintf " switchport trunk allowed vlan %s\n" (render_allowed allowed)));
    Buffer.add_string buf "!\n"

  let render (config : Device_config.t) =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "hostname %s\n!\n" config.Device_config.hostname);
    List.iter (render_stanza buf) config.Device_config.stanzas;
    (match Naming.trailer with
    | Some trailer -> Buffer.add_string buf (trailer ^ "\n")
    | None -> ());
    Buffer.contents buf

  (* Parser state for one interface stanza. *)
  type pending = {
    port : int;
    mutable description : string option;
    mutable shutdown : bool;
    mutable is_trunk : bool;
    mutable access_vlan : int;
    mutable native : int option;
    mutable allowed : Port_config.allowed option;
  }

  let finish pending =
    let mode =
      if pending.shutdown then Port_config.Disabled
      else if pending.is_trunk then
        Port_config.Trunk
          {
            native = pending.native;
            allowed = Option.value pending.allowed ~default:Port_config.All;
          }
      else Port_config.Access pending.access_vlan
    in
    {
      Device_config.port = pending.port;
      mode;
      description = pending.description;
    }

  let parse_allowed s =
    if String.equal s "all" then Ok Port_config.All
    else
      let parts = String.split_on_char ',' s in
      let vids = List.filter_map int_of_string_opt parts in
      if List.length vids = List.length parts then Ok (Port_config.Only vids)
      else Error (Printf.sprintf "bad vlan list %S" s)

  let parse text =
    let lines = String.split_on_char '\n' text in
    let hostname = ref None in
    let stanzas = ref [] in
    let current : pending option ref = ref None in
    let error = ref None in
    let close () =
      match !current with
      | Some pending ->
          stanzas := finish pending :: !stanzas;
          current := None
      | None -> ()
    in
    let fail msg = if Option.is_none !error then error := Some msg in
    List.iter
      (fun raw ->
        if Option.is_none !error then
          let line = String.trim raw in
          let words =
            List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
          in
          match words with
          | [] | [ "!" ] -> close ()
          | "hostname" :: rest -> hostname := Some (String.concat " " rest)
          | [ "interface"; ifname ] -> (
              close ();
              match parse_interface_name ifname with
              | Some port ->
                  current :=
                    Some
                      {
                        port;
                        description = None;
                        shutdown = false;
                        is_trunk = false;
                        access_vlan = 1;
                        native = None;
                        allowed = None;
                      }
              | None -> fail (Printf.sprintf "unknown interface %S" ifname))
          | _ -> (
              match !current with
              | None -> () (* top-level lines we do not model *)
              | Some pending -> (
                  match words with
                  | "description" :: rest ->
                      pending.description <- Some (String.concat " " rest)
                  | [ "shutdown" ] -> pending.shutdown <- true
                  | [ "switchport"; "mode"; "access" ] -> pending.is_trunk <- false
                  | [ "switchport"; "mode"; "trunk" ] -> pending.is_trunk <- true
                  | [ "switchport"; "access"; "vlan"; v ] -> (
                      match int_of_string_opt v with
                      | Some vid -> pending.access_vlan <- vid
                      | None -> fail (Printf.sprintf "bad access vlan %S" v))
                  | [ "switchport"; "trunk"; "native"; "vlan"; v ] -> (
                      match int_of_string_opt v with
                      | Some vid -> pending.native <- Some vid
                      | None -> fail (Printf.sprintf "bad native vlan %S" v))
                  | [ "switchport"; "trunk"; "allowed"; "vlan"; vlans ] -> (
                      match parse_allowed vlans with
                      | Ok allowed -> pending.allowed <- Some allowed
                      | Error msg -> fail msg)
                  | _ -> () (* tolerated unknown interface-level line *))))
      lines;
    close ();
    match !error with
    | Some msg -> Error (Printf.sprintf "%s parse error: %s" name msg)
    | None ->
        let hostname = Option.value !hostname ~default:"switch" in
        (try Ok (Device_config.make ~hostname (List.rev !stanzas))
         with Invalid_argument msg -> Error msg)
end

module Ios = Core (struct
  let name = "ios"
  let interface_name port = Printf.sprintf "GigabitEthernet0/%d" (port + 1)

  let parse_interface_name s =
    let prefix = "GigabitEthernet0/" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 1 -> Some (n - 1)
      | Some _ | None -> None
    else None

  let trailer = Some "end"
end)

module Eos = Core (struct
  let name = "eos"
  let interface_name port = Printf.sprintf "Ethernet%d" (port + 1)

  let parse_interface_name s =
    let prefix = "Ethernet" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 1 -> Some (n - 1)
      | Some _ | None -> None
    else None

  let trailer = None
end)

(* JunOS-like: flat "set ..." statements.  Structure per port:
     set interfaces ge-0/0/N description TEXT
     set interfaces ge-0/0/N disable
     set interfaces ge-0/0/N unit 0 family ethernet-switching port-mode access
     set interfaces ge-0/0/N unit 0 family ethernet-switching vlan members V
     set interfaces ge-0/0/N unit 0 family ethernet-switching port-mode trunk
     set interfaces ge-0/0/N unit 0 family ethernet-switching native-vlan-id V
   plus "set system host-name NAME". *)
module Junos : S = struct
  let name = "junos"
  let interface_name port = Printf.sprintf "ge-0/0/%d" port

  let parse_interface_name s =
    let prefix = "ge-0/0/" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 0 -> Some n
      | Some _ | None -> None
    else None

  let render_stanza buf (s : Device_config.stanza) =
    let ifname = interface_name s.Device_config.port in
    let stmt fmt = Printf.ksprintf (fun line -> Buffer.add_string buf (line ^ "\n")) fmt in
    (match s.Device_config.description with
    | Some d -> stmt "set interfaces %s description \"%s\"" ifname d
    | None -> ());
    match s.Device_config.mode with
    | Port_config.Disabled -> stmt "set interfaces %s disable" ifname
    | Port_config.Access vid ->
        stmt "set interfaces %s unit 0 family ethernet-switching port-mode access" ifname;
        stmt "set interfaces %s unit 0 family ethernet-switching vlan members %d" ifname vid
    | Port_config.Trunk { native; allowed } ->
        stmt "set interfaces %s unit 0 family ethernet-switching port-mode trunk" ifname;
        (match native with
        | Some v ->
            stmt "set interfaces %s unit 0 family ethernet-switching native-vlan-id %d"
              ifname v
        | None -> ());
        (match allowed with
        | Port_config.All ->
            stmt "set interfaces %s unit 0 family ethernet-switching vlan members all" ifname
        | Port_config.Only vids ->
            List.iter
              (fun v ->
                stmt "set interfaces %s unit 0 family ethernet-switching vlan members %d"
                  ifname v)
              vids)

  let render (config : Device_config.t) =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "set system host-name %s\n" config.Device_config.hostname);
    List.iter (render_stanza buf) config.Device_config.stanzas;
    Buffer.contents buf

  type pending = {
    mutable description : string option;
    mutable disabled : bool;
    mutable is_trunk : bool;
    mutable members : [ `All | `Vids of int list ];
    mutable native : int option;
  }

  let fresh () =
    { description = None; disabled = false; is_trunk = false; members = `Vids []; native = None }

  let finish port p =
    let mode =
      if p.disabled then Port_config.Disabled
      else if p.is_trunk then
        Port_config.Trunk
          {
            native = p.native;
            allowed =
              (match p.members with
              | `All -> Port_config.All
              | `Vids [] -> Port_config.All
              | `Vids vids -> Port_config.Only (List.rev vids));
          }
      else
        Port_config.Access
          (match p.members with `Vids (v :: _) -> v | `Vids [] | `All -> 1)
    in
    { Device_config.port; mode; description = p.description }

  let strip_quotes s =
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

  let parse text =
    let hostname = ref None in
    let ports : (int, pending) Hashtbl.t = Hashtbl.create 16 in
    let error = ref None in
    let fail msg = if Option.is_none !error then error := Some msg in
    let pending port =
      match Hashtbl.find_opt ports port with
      | Some p -> p
      | None ->
          let p = fresh () in
          Hashtbl.replace ports port p;
          p
    in
    List.iter
      (fun raw ->
        if Option.is_none !error then
          let line = String.trim raw in
          let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' line) in
          match words with
          | [] -> ()
          | "set" :: "system" :: "host-name" :: rest ->
              hostname := Some (String.concat " " rest)
          | "set" :: "interfaces" :: ifname :: rest -> (
              match parse_interface_name ifname with
              | None -> fail (Printf.sprintf "junos: unknown interface %S" ifname)
              | Some port -> (
                  let p = pending port in
                  match rest with
                  | "description" :: d -> p.description <- Some (strip_quotes (String.concat " " d))
                  | [ "disable" ] -> p.disabled <- true
                  | [ "unit"; "0"; "family"; "ethernet-switching"; "port-mode"; "access" ] ->
                      p.is_trunk <- false
                  | [ "unit"; "0"; "family"; "ethernet-switching"; "port-mode"; "trunk" ] ->
                      p.is_trunk <- true
                  | [ "unit"; "0"; "family"; "ethernet-switching"; "vlan"; "members"; "all" ] ->
                      p.members <- `All
                  | [ "unit"; "0"; "family"; "ethernet-switching"; "vlan"; "members"; v ] -> (
                      match int_of_string_opt v with
                      | Some vid -> (
                          match p.members with
                          | `All -> ()
                          | `Vids vids -> p.members <- `Vids (vid :: vids))
                      | None -> fail (Printf.sprintf "junos: bad vlan %S" v))
                  | [ "unit"; "0"; "family"; "ethernet-switching"; "native-vlan-id"; v ] -> (
                      match int_of_string_opt v with
                      | Some vid -> p.native <- Some vid
                      | None -> fail (Printf.sprintf "junos: bad native vlan %S" v))
                  | _ -> () (* tolerated unknown statement *)))
          | "set" :: _ -> () (* other subsystems we do not model *)
          | _ -> fail (Printf.sprintf "junos: expected 'set ...', got %S" line))
      (String.split_on_char '\n' text);
    match !error with
    | Some msg -> Error msg
    | None ->
        let stanzas =
          Hashtbl.fold (fun port p acc -> finish port p :: acc) ports []
        in
        (try
           Ok
             (Device_config.make
                ~hostname:(Option.value !hostname ~default:"switch")
                stanzas)
         with Invalid_argument msg -> Error msg)
end

let of_name = function
  | "ios" -> Some (module Ios : S)
  | "eos" -> Some (module Eos : S)
  | "junos" -> Some (module Junos : S)
  | _ -> None
