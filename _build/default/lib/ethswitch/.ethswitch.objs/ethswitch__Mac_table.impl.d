lib/ethswitch/mac_table.ml: Hashtbl List Netpkt Sim_time Simnet
