lib/ethswitch/port_config.ml: Format List Option String
