lib/ethswitch/legacy_switch.ml: Array Engine Float Int List Mac_addr Mac_table Netpkt Node Option Packet Port_config Printf Set Sim_time Simnet Stats Vlan
