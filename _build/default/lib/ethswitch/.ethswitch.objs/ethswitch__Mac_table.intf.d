lib/ethswitch/mac_table.mli: Netpkt Simnet
