lib/ethswitch/legacy_switch.mli: Mac_table Port_config Simnet
