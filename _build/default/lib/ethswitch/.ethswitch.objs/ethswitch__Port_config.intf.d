lib/ethswitch/port_config.mli: Format
