(** MAC learning table of a legacy L2 switch: maps (VLAN, MAC) to the
    port where the address was last seen, with aging and a capacity
    limit (oldest entry evicted when full, as low-end switches do). *)

type t

val create : ?capacity:int -> ?aging:Simnet.Sim_time.span -> unit -> t
(** Defaults: capacity 8192 entries, aging 300 s (the 802.1D default). *)

val learn :
  t -> now:Simnet.Sim_time.t -> vlan:int -> mac:Netpkt.Mac_addr.t -> port:int -> unit
(** Insert or refresh an entry.  Multicast/broadcast sources are ignored. *)

val lookup :
  t -> now:Simnet.Sim_time.t -> vlan:int -> mac:Netpkt.Mac_addr.t -> int option
(** The port for (vlan, mac), unless unknown or aged out (expired entries
    are removed on the fly). *)

val entry_count : t -> int
val capacity : t -> int

val count_port : t -> port:int -> int
(** Live entries learned on one port. *)

val flush : t -> unit
val flush_port : t -> port:int -> unit
(** Forget everything learned on [port] (used on topology change). *)

val entries : t -> (int * Netpkt.Mac_addr.t * int * Simnet.Sim_time.t) list
(** (vlan, mac, port, learned_at), unordered. *)
