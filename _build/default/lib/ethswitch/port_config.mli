(** Per-port 802.1Q configuration of a legacy switch. *)

type allowed = All | Only of int list

type mode =
  | Access of int
      (** Untagged member of exactly one VLAN (the PVID).  Tagged frames
          are accepted only if their VID equals the PVID. *)
  | Trunk of { native : int option; allowed : allowed }
      (** Carries tagged frames for [allowed] VLANs; untagged frames map
          to [native] if set, else are dropped. *)
  | Disabled

val default : mode
(** [Access 1] — factory default on essentially every switch. *)

val classify_ingress : mode -> tag_vid:int option -> int option
(** The VLAN a frame belongs to on ingress, or [None] to drop. *)

val egress_encap : mode -> vlan:int -> [ `Untagged | `Tagged of int ] option
(** How (whether) a frame in [vlan] leaves through a port, or [None] if
    the port is not a member. *)

val member : mode -> vlan:int -> bool
val pp : Format.formatter -> mode -> unit
