open Simnet

type key = int * Netpkt.Mac_addr.t

type entry = { port : int; learned_at : Sim_time.t }

type t = {
  table : (key, entry) Hashtbl.t;
  capacity : int;
  aging : Sim_time.span;
}

let create ?(capacity = 8192) ?(aging = Sim_time.s 300) () =
  if capacity <= 0 then invalid_arg "Mac_table.create: capacity <= 0";
  { table = Hashtbl.create 256; capacity; aging }

let expired t ~now entry =
  Sim_time.diff now entry.learned_at > t.aging

let evict_oldest t =
  let oldest =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when Sim_time.compare best.learned_at entry.learned_at <= 0 ->
            acc
        | Some _ | None -> Some (key, entry))
      t.table None
  in
  match oldest with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let learn t ~now ~vlan ~mac ~port =
  if Netpkt.Mac_addr.is_unicast mac then begin
    let key = (vlan, mac) in
    if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.capacity then
      evict_oldest t;
    Hashtbl.replace t.table key { port; learned_at = now }
  end

let lookup t ~now ~vlan ~mac =
  let key = (vlan, mac) in
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
      if expired t ~now entry then begin
        Hashtbl.remove t.table key;
        None
      end
      else Some entry.port

let entry_count t = Hashtbl.length t.table

let count_port t ~port =
  Hashtbl.fold (fun _ e acc -> if e.port = port then acc + 1 else acc) t.table 0
let capacity t = t.capacity
let flush t = Hashtbl.reset t.table

let flush_port t ~port =
  let doomed =
    Hashtbl.fold
      (fun key entry acc -> if entry.port = port then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let entries t =
  Hashtbl.fold
    (fun (vlan, mac) entry acc -> (vlan, mac, entry.port, entry.learned_at) :: acc)
    t.table []
