type allowed = All | Only of int list

type mode =
  | Access of int
  | Trunk of { native : int option; allowed : allowed }
  | Disabled

let default = Access 1

let allows allowed vid =
  match allowed with All -> true | Only vids -> List.mem vid vids

let classify_ingress mode ~tag_vid =
  match (mode, tag_vid) with
  | Disabled, _ -> None
  | Access pvid, None -> Some pvid
  | Access pvid, Some vid -> if vid = pvid then Some pvid else None
  | Trunk { native; _ }, None -> native
  | Trunk { allowed; _ }, Some vid -> if allows allowed vid then Some vid else None

let egress_encap mode ~vlan =
  match mode with
  | Disabled -> None
  | Access pvid -> if pvid = vlan then Some `Untagged else None
  | Trunk { native; allowed } ->
      if native = Some vlan then Some `Untagged
      else if allows allowed vlan then Some (`Tagged vlan)
      else None

let member mode ~vlan = Option.is_some (egress_encap mode ~vlan)

let pp fmt = function
  | Access pvid -> Format.fprintf fmt "access %d" pvid
  | Disabled -> Format.pp_print_string fmt "disabled"
  | Trunk { native; allowed } ->
      let allowed_str =
        match allowed with
        | All -> "all"
        | Only vids -> String.concat "," (List.map string_of_int vids)
      in
      Format.fprintf fmt "trunk native %s allowed %s"
        (match native with None -> "-" | Some v -> string_of_int v)
        allowed_str
