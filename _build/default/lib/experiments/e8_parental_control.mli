(** E8 — use case (c): per-user web filtering with live block/unblock. *)

type fetch = { who : string; target : string; when_ : string; got_response : bool }

val expected : bool list
(** The verdicts the five phases must produce. *)

val measure : unit -> fetch list
val run : unit -> fetch list
