(* E12 (extension) — in-network rate limiting with OpenFlow meters:
   another appliance (a traffic policer) absorbed into the migrated
   switch.  Host 0 is capped; host 1 is not; both offer the same load to
   host 2 and we compare goodput. *)

open Simnet

let limit_kbps = 50_000 (* 50 Mbps *)
let offered_mbps = 400.0
let measure = Sim_time.ms 100

type result = {
  limited_mbps : float;
  unlimited_mbps : float;
  cap_mbps : float;
}

let measure_run () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  ignore
    (Common.attach_with_apps deployment
       [
         Sdnctl.Rate_limiter.create
           ~limits:
             [
               {
                 Sdnctl.Rate_limiter.subject = Harmless.Deployment.host_ip 0;
                 rate_kbps = limit_kbps;
                 burst_kb = 16;
               };
             ]
           ();
         Sdnctl.Rate_limiter.table1_l2 ~num_hosts:3;
       ]);
  let rng = Rng.create 5 in
  let frame = 1024 in
  let rate_pps = offered_mbps *. 1e6 /. float_of_int (frame * 8) in
  let sink = Harmless.Deployment.host deployment 2 in
  let stop = Sim_time.add (Engine.now engine) measure in
  let bytes_from src_port =
    List.fold_left
      (fun acc (p : Netpkt.Packet.t) ->
        match p.Netpkt.Packet.l3 with
        | Netpkt.Packet.Ip { Netpkt.Ipv4.payload = Netpkt.Ipv4.Udp u; _ }
          when u.Netpkt.Udp.src_port = src_port ->
            acc + Netpkt.Packet.wire_size p
        | _ -> acc)
      0 (Host.received sink)
  in
  List.iter
    (fun s ->
      ignore
        (Traffic.udp_stream ~rng:(Rng.split rng)
           ~src:(Harmless.Deployment.host deployment s)
           ~dst_mac:(Harmless.Deployment.host_mac 2)
           ~dst_ip:(Harmless.Deployment.host_ip 2)
           ~src_port:(30000 + s) ~stop (Traffic.Cbr rate_pps)
           (Traffic.Fixed frame) ()))
    [ 0; 1 ];
  Common.run_for engine (measure + Sim_time.ms 5);
  let seconds = Sim_time.span_to_seconds measure in
  let mbps bytes = 8.0 *. float_of_int bytes /. seconds /. 1e6 in
  {
    limited_mbps = mbps (bytes_from 30000);
    unlimited_mbps = mbps (bytes_from 30001);
    cap_mbps = float_of_int limit_kbps /. 1e3;
  }

let run () =
  let r = measure_run () in
  Tables.print
    ~title:
      (Printf.sprintf
         "E12: OpenFlow-meter policing (cap %.0f Mbps, both hosts offer %.0f Mbps)"
         r.cap_mbps offered_mbps)
    ~header:[ "flow"; "delivered" ]
    [
      [ "host0 (policed)"; Printf.sprintf "%.1f Mbps" r.limited_mbps ];
      [ "host1 (unpoliced)"; Printf.sprintf "%.1f Mbps" r.unlimited_mbps ];
    ];
  Printf.printf
    "\npoliced flow held within ~5%% of the cap; unpoliced flow unaffected.\n";
  r
