(** E2 — "no major performance penalty": offered vs delivered throughput
    across frame sizes for legacy, COTS hardware and three HARMLESS
    dataplanes. *)

type row = {
  deployment : string;
  frame : int;
  offered_pps : float;
  delivered_pps : float;
  delivered_bps : float;
  loss : float;
}

val num_hosts : int

val build_legacy : unit -> Harmless.Deployment.t
(** Pre-migration baseline with warmed MAC tables. *)

val build_cots : unit -> Harmless.Deployment.t
(** Hardware-dataplane OpenFlow switch with proactive forwarding. *)

val build_harmless :
  ?extra_apps:Sdnctl.Controller.app list ->
  Softswitch.Soft_switch.dataplane_kind ->
  unit ->
  Harmless.Deployment.t

val filler_app : Sdnctl.Controller.app
(** Installs 1000 never-matching high-priority rules (the "big OF
    program" the linear dataplane must scan). *)

val rows : unit -> row list
val run : unit -> row list
