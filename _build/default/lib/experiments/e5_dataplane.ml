(* E5 — dataplane scaling (the ESwitch property, ref [9] of the paper):
   model-cycles per packet and the implied single-core packet rate as the
   flow table grows, for each dataplane, under uniform and skewed
   (zipf 1.1) flow popularity.

   Expected shape: linear degrades with the rule count; the OVS-like
   caches hold up (especially under skew, where the EMC covers the hot
   flows); the ESwitch-like specializer stays near-constant because the
   rules compile to a couple of templates. *)

open Netpkt
open Openflow
open Softswitch

let ghz = Pmd.default_config.Pmd.ghz

(* SS_2-flavoured workload: exact ip_dst rules (one per "service"), one
   wildcard ARP rule and a low-priority drop fence — a few templates, many
   rules, like a real OF program. *)
let build_pipeline num_rules =
  let pipeline = Pipeline.create ~num_tables:1 () in
  let table = Pipeline.table pipeline 0 in
  for i = 0 to num_rules - 1 do
    let ip = Ipv4_addr.of_octets 10 1 (i / 256) (i mod 256) in
    Flow_table.add table ~now_ns:0
      (Flow_entry.make ~priority:2000
         ~match_:Of_match.(any |> eth_type 0x0800 |> ip_dst (Ipv4_addr.Prefix.make ip 32))
         [ Flow_entry.Apply_actions [ Of_action.output (i mod 16) ] ])
  done;
  Flow_table.add table ~now_ns:0
    (Flow_entry.make ~priority:1900
       ~match_:Of_match.(any |> eth_type 0x0806)
       [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ]);
  Flow_table.add table ~now_ns:0
    (Flow_entry.make ~priority:1
       ~match_:Of_match.any
       [ Flow_entry.Apply_actions [ Of_action.Drop ] ]);
  pipeline

let workload ~rng ~num_rules ~skew ~count =
  let zipf = Simnet.Rng.Zipf.create ~n:num_rules ~skew in
  Array.init count (fun _ ->
      let i = Simnet.Rng.Zipf.draw zipf rng in
      let dst_ip = Ipv4_addr.of_octets 10 1 (i / 256) (i mod 256) in
      Packet.udp
        ~dst:(Mac_addr.make_local 999)
        ~src:(Mac_addr.make_local (1 + Simnet.Rng.int rng 64))
        ~ip_src:(Ipv4_addr.of_octets 10 0 0 (1 + Simnet.Rng.int rng 250))
        ~ip_dst:dst_ip
        ~src_port:(1024 + Simnet.Rng.int rng 60000)
        ~dst_port:80 "0123456789")

type row = {
  dataplane : string;
  rules : int;
  skew : float;
  avg_cycles : float;
  model_mpps : float;
}

let dataplanes pipeline =
  [
    Linear.create pipeline;
    Ovs_like.create pipeline;
    Ovs_like.create
      ~config:{ Ovs_like.default_config with Ovs_like.emc_enabled = false }
      pipeline;
    Eswitch.create pipeline;
  ]

let measure ~rules ~skew =
  let packets = workload ~rng:(Simnet.Rng.create 11) ~num_rules:rules ~skew ~count:20000 in
  List.map
    (fun (dp : Dataplane.t) ->
      let total = ref 0 in
      Array.iter
        (fun pkt ->
          let _result, cycles = dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt in
          total := !total + cycles)
        packets;
      let avg = float_of_int !total /. float_of_int (Array.length packets) in
      let per_packet =
        avg
        +. float_of_int Pmd.default_config.Pmd.per_packet_io_cycles
        +. (float_of_int Pmd.default_config.Pmd.per_batch_cycles
            /. float_of_int Pmd.default_config.Pmd.batch_size)
      in
      {
        dataplane = dp.Dataplane.name;
        rules;
        skew;
        avg_cycles = avg;
        model_mpps = ghz *. 1e3 /. per_packet;
      })
    (dataplanes (build_pipeline rules))

let rule_counts = [ 10; 100; 1000; 10000 ]
let skews = [ 0.0; 1.1 ]

let rows () =
  List.concat_map
    (fun rules -> List.concat_map (fun skew -> measure ~rules ~skew) skews)
    rule_counts

let run () =
  let rows = rows () in
  Tables.print
    ~title:
      "E5: dataplane lookup scaling (model cycles; single 2.6 GHz core)"
    ~header:[ "dataplane"; "rules"; "skew"; "avg cycles/pkt"; "model rate" ]
    (List.map
       (fun r ->
         [
           r.dataplane;
           string_of_int r.rules;
           Tables.f1 r.skew;
           Tables.f1 r.avg_cycles;
           Tables.mpps (r.model_mpps *. 1e6);
         ])
       rows);
  rows
