(* E3 — "no major latency penalty": one-way latency percentiles of
   timestamped probes under light and moderate Poisson load, legacy vs
   COTS hardware vs HARMLESS.  The HARMLESS penalty is the extra trunk
   crossings plus two software-switch services — it should be a small
   constant, not a blow-up. *)

open Simnet

let _num_hosts = 8
let measure = Sim_time.ms 50

type row = {
  deployment : string;
  frame : int;
  load : float; (* fraction of GbE line rate offered per sender *)
  p50_ns : int;
  p99_ns : int;
  mean_ns : float;
  samples : int;
}

let probe_load (deployment : Harmless.Deployment.t) ~label ~frame ~load =
  let engine = deployment.Harmless.Deployment.engine in
  let rng = Rng.create 7 in
  let rate = load *. (1e9 /. float_of_int (frame * 8)) in
  let stop = Sim_time.add (Engine.now engine) measure in
  List.iter
    (fun s ->
      let dst = s + 4 in
      ignore
        (Traffic.udp_stream ~rng:(Rng.split rng)
           ~src:(Harmless.Deployment.host deployment s)
           ~dst_mac:(Harmless.Deployment.host_mac dst)
           ~dst_ip:(Harmless.Deployment.host_ip dst)
           ~src_port:(10000 + s) ~stop (Traffic.Poisson rate)
           (Traffic.Fixed frame) ()))
    [ 0; 1; 2; 3 ];
  Common.run_for engine (measure + Sim_time.ms 5);
  let merged =
    Array.fold_left
      (fun acc h -> Stats.Histogram.merge acc (Host.latency h))
      (Stats.Histogram.create ())
      deployment.Harmless.Deployment.hosts
  in
  {
    deployment = label;
    frame;
    load;
    p50_ns = Stats.Histogram.percentile merged 50.0;
    p99_ns = Stats.Histogram.percentile merged 99.0;
    mean_ns = Stats.Histogram.mean merged;
    samples = Stats.Histogram.count merged;
  }

let variants () =
  [
    ("legacy L2 (pre-migration)", E2_throughput.build_legacy ());
    ("COTS SDN hardware", E2_throughput.build_cots ());
    ( "HARMLESS / ESwitch",
      E2_throughput.build_harmless Softswitch.Soft_switch.Eswitch () );
    ( "HARMLESS / OVS-like",
      E2_throughput.build_harmless
        (Softswitch.Soft_switch.Ovs Softswitch.Ovs_like.default_config)
        () );
  ]

let cases = [ (64, 0.1); (64, 0.5); (1518, 0.1); (1518, 0.5) ]

let rows () =
  List.concat_map
    (fun (frame, load) ->
      List.map
        (fun (label, deployment) -> probe_load deployment ~label ~frame ~load)
        (variants ()))
    cases

let run () =
  let rows = rows () in
  Tables.print
    ~title:"E3: one-way latency of timestamped probes (Poisson arrivals)"
    ~header:[ "deployment"; "frame B"; "load"; "p50"; "p99"; "mean"; "n" ]
    (List.map
       (fun r ->
         [
           r.deployment;
           string_of_int r.frame;
           Tables.pct r.load;
           Tables.us r.p50_ns;
           Tables.us r.p99_ns;
           Tables.us (int_of_float r.mean_ns);
           string_of_int r.samples;
         ])
       rows);
  rows
