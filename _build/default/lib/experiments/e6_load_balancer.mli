(** E6 — use case (a): the in-network load balancer, measured by
    per-backend request counts and end-to-end HTTP success. *)

type result = {
  per_backend : (int * int) list;
  responses_ok : int;
  balance_ratio : float;
}

val requests : int
val measure : unit -> result
val run : unit -> result
