(** E3 — "no major latency penalty": one-way latency percentiles of
    timestamped probes under Poisson load, per deployment. *)

type row = {
  deployment : string;
  frame : int;
  load : float;
  p50_ns : int;
  p99_ns : int;
  mean_ns : float;
  samples : int;
}

val rows : unit -> row list
val run : unit -> row list
