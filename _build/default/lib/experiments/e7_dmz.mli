(** E7 — use case (b): the DMZ policy matrix; delivery must match the
    allow-list exactly. *)

type result = {
  matrix : (int * int * bool * bool) list;
  violations : int;
  false_blocks : int;
}

val measure : unit -> result
val run : unit -> result
