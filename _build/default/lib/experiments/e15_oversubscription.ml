open Simnet

type row = {
  hosts : int;
  offered_gbps : float;
  delivered_gbps : float;
  loss : float;
  trunk_util : float;
}

let frame = 1518
let measure_span = Sim_time.ms 20

let measure ~hosts () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:hosts () with
    | Ok d -> d
    | Error m -> failwith m
  in
  ignore
    (Common.attach_with_apps deployment [ Common.proactive_l2 ~num_hosts:hosts ]);
  let rng = Rng.create 3 in
  let rate = 1e9 /. float_of_int (frame * 8) (* GbE line rate per host *) in
  let stop = Sim_time.add (Engine.now engine) measure_span in
  let streams =
    List.init hosts (fun i ->
        let dst = (i + 1) mod hosts in
        Traffic.udp_stream ~rng:(Rng.split rng)
          ~src:(Harmless.Deployment.host deployment i)
          ~dst_mac:(Harmless.Deployment.host_mac dst)
          ~dst_ip:(Harmless.Deployment.host_ip dst)
          ~src_port:(10000 + i) ~stop (Traffic.Cbr rate) (Traffic.Fixed frame) ())
  in
  Common.run_for engine (measure_span + Sim_time.ms 10);
  let sent = List.fold_left (fun acc s -> acc + Traffic.sent s) 0 streams in
  let delivered = Common.total_udp_received deployment in
  let seconds = Sim_time.span_to_seconds measure_span in
  let gbps count = float_of_int (count * frame * 8) /. seconds /. 1e9 in
  let trunk_util =
    match deployment.Harmless.Deployment.kind with
    | Harmless.Deployment.Harmless { trunk_link; _ } ->
        Link.utilization_a_to_b trunk_link ~now:(Engine.now engine)
    | _ -> 0.0
  in
  {
    hosts;
    offered_gbps = gbps sent;
    delivered_gbps = gbps delivered;
    loss =
      (if sent = 0 then 0.0
       else Float.max 0.0 (1.0 -. (float_of_int delivered /. float_of_int sent)));
    trunk_util;
  }

let host_counts = [ 4; 8; 10; 12; 16 ]

let rows () = List.map (fun hosts -> measure ~hosts ()) host_counts

let run () =
  let rows = rows () in
  Tables.print
    ~title:
      "E15: trunk oversubscription (hosts at GbE line rate, one 10G trunk)"
    ~header:[ "hosts"; "offered"; "delivered"; "loss"; "trunk util" ]
    (List.map
       (fun r ->
         [
           string_of_int r.hosts;
           Tables.gbps (r.offered_gbps *. 1e9);
           Tables.gbps (r.delivered_gbps *. 1e9);
           Tables.pct r.loss;
           Tables.pct r.trunk_util;
         ])
       rows);
  Printf.printf
    "\nbelow ~10 offered Gbps the fabric is invisible; past it the trunk is\n\
     the bottleneck — the reason the cost model pairs one trunk (and one\n\
     server NIC port) with each 48-port switch rather than oversubscribing.\n";
  rows
