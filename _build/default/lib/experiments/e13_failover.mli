(** E13 (extension) — trunk failover: outage duration vs watchdog period
    when the primary trunk dies mid-run. *)

type row = {
  watchdog_ms : int;
  gap_ms : float;
  lost : int;
  failed_over : bool;
}

val rows : unit -> row list
val run : unit -> row list
