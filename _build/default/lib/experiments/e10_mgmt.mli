(** E10 — the Manager workflow across NOS dialects: provision, verify
    over SNMP, roll back. *)

type row = {
  vendor : string;
  ports : int;
  managed : int;
  steps : int;
  diff_lines : int;
  snmp_requests : int;
  rollback_ok : bool;
}

val rows : unit -> row list
val run : unit -> row list
