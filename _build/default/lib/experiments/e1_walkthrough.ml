(* E1 — Fig. 1 behavioural reproduction: the exact packet walk
   Host1 -> tag -> trunk -> SS_1 -> patch -> SS_2 (policy) -> patch ->
   SS_1 -> hairpin -> trunk -> untag -> Host2, asserted from a capture.

   We send two pings so the second one travels the installed fast path
   (no controller involvement), then check the walk of its request. *)

open Simnet
open Netpkt

type check = { step : string; expected : string; observed : string; ok : bool }

let run_checks () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let legacy, ss1, ss2 =
    match deployment.Harmless.Deployment.kind with
    | Harmless.Deployment.Harmless { legacy; prov; _ } ->
        (legacy, prov.Harmless.Manager.ss1, prov.Harmless.Manager.ss2)
    | Harmless.Deployment.Legacy_only _ | Harmless.Deployment.Plain_openflow _
  | Harmless.Deployment.Scaled _ ->
        assert false
  in
  ignore
    (Common.attach_with_apps deployment [ Sdnctl.L2_learning.create () ]);
  let h0 = Harmless.Deployment.host deployment 0
  and h1 = Harmless.Deployment.host deployment 1 in
  (* First ping: reactive (floods, installs flows). *)
  Host.ping h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~seq:1;
  Common.run_for engine (Sim_time.ms 20);
  (* Second ping: the installed fast path; capture only this one. *)
  let capture = Capture.create () in
  Capture.attach capture (Ethswitch.Legacy_switch.node legacy);
  Capture.attach capture (Softswitch.Soft_switch.node ss1);
  Capture.attach capture (Softswitch.Soft_switch.node ss2);
  Host.ping h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~seq:2;
  Common.run_for engine (Sim_time.ms 20);
  let is_request e =
    match e.Capture.packet.Packet.l3 with
    | Packet.Ip { Ipv4.payload = Ipv4.Icmp (Icmp.Echo_request { seq = 2; _ }); _ } ->
        true
    | _ -> false
  in
  let entry ~node ~dir ~port =
    List.find_opt
      (fun e ->
        String.equal e.Capture.node node && e.Capture.dir = dir
        && e.Capture.port = port)
      (Capture.filter capture is_request)
  in
  let tag_of = function
    | Some e -> (
        match Packet.outer_vid e.Capture.packet with
        | Some v -> Printf.sprintf "vlan %d" v
        | None -> "untagged")
    | None -> "missing"
  in
  let mk step node dir port expected_tag =
    let e = entry ~node ~dir ~port in
    {
      step;
      expected = expected_tag;
      observed = tag_of e;
      ok = (match e with Some _ -> String.equal (tag_of e) expected_tag | None -> false);
    }
  in
  let trunk_port = 4 in
  [
    mk "legacy rx from host0 (access port 0)" "legacy0" Node.Rx 0 "untagged";
    mk "legacy tx on trunk, tagged with host0's vlan" "legacy0" Node.Tx trunk_port
      "vlan 101";
    mk "SS_1 rx on trunk" "legacy0-ss1" Node.Rx 0 "vlan 101";
    mk "SS_1 tx on patch port 1 (tag popped)" "legacy0-ss1" Node.Tx 1 "untagged";
    mk "SS_2 rx on logical port 0" "legacy0-ss2" Node.Rx 0 "untagged";
    mk "SS_2 tx on logical port 1 (OF decision)" "legacy0-ss2" Node.Tx 1 "untagged";
    mk "SS_1 rx back on patch port 2" "legacy0-ss1" Node.Rx 2 "untagged";
    mk "SS_1 hairpin to trunk, tagged with host1's vlan" "legacy0-ss1" Node.Tx 0
      "vlan 102";
    mk "legacy rx hairpinned frame on trunk" "legacy0" Node.Rx trunk_port "vlan 102";
    mk "legacy tx to host1, untagged" "legacy0" Node.Tx 1 "untagged";
  ]

let run () =
  let checks = run_checks () in
  Tables.print ~title:"E1: Fig. 1 walk-through (2nd ping, installed fast path)"
    ~header:[ "step"; "expected"; "observed"; "ok" ]
    (List.map
       (fun c -> [ c.step; c.expected; c.observed; (if c.ok then "yes" else "NO") ])
       checks);
  let passed = List.for_all (fun c -> c.ok) checks in
  Printf.printf "\nE1 verdict: %s\n"
    (if passed then "walk-through matches Fig. 1" else "MISMATCH");
  passed
