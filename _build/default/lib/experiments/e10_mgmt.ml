(* E10 — the Manager's automation workflow across NOS dialects and device
   sizes: discovery, config generation, commit, SNMP verification, and
   rollback, with the vendor-neutrality of the NAPALM layer on display
   (the same code path provisions both dialects). *)

open Simnet
open Ethswitch

type row = {
  vendor : string;
  ports : int;
  managed : int;
  steps : int;
  diff_lines : int;
  snmp_requests : int;
  rollback_ok : bool;
}

let provision_one ~vendor ~ports =
  let engine = Engine.create () in
  let legacy =
    Legacy_switch.create engine
      ~name:(Printf.sprintf "sw-%d" ports)
      ~ports ()
  in
  let device = Mgmt.Device.create ~switch:legacy ~vendor () in
  let managed = ports - 1 in
  let before = Mgmt.Device.running_config_text device in
  match
    Harmless.Manager.provision engine ~device ~trunk_port:(ports - 1)
      ~access_ports:(List.init managed Fun.id) ()
  with
  | Error msg -> failwith msg
  | Ok prov ->
      let snmp_requests = Mgmt.Snmp.requests (Mgmt.Device.snmp device) in
      (* Deprovision must restore the original configuration text. *)
      let rollback_ok =
        match Harmless.Manager.deprovision device with
        | Ok () -> String.equal (Mgmt.Device.running_config_text device) before
        | Error _ -> false
      in
      {
        vendor =
          (match vendor with
          | Mgmt.Device.Cisco_like -> "ios-like"
          | Mgmt.Device.Arista_like -> "eos-like"
          | Mgmt.Device.Juniper_like -> "junos-like");
        ports;
        managed;
        steps = List.length prov.Harmless.Manager.report.Harmless.Manager.steps;
        diff_lines =
          List.length prov.Harmless.Manager.report.Harmless.Manager.config_diff;
        snmp_requests;
        rollback_ok;
      }

let cases =
  [
    (Mgmt.Device.Cisco_like, 9);
    (Mgmt.Device.Cisco_like, 25);
    (Mgmt.Device.Cisco_like, 49);
    (Mgmt.Device.Arista_like, 9);
    (Mgmt.Device.Arista_like, 25);
    (Mgmt.Device.Arista_like, 49);
    (Mgmt.Device.Juniper_like, 9);
    (Mgmt.Device.Juniper_like, 49);
  ]

let rows () = List.map (fun (vendor, ports) -> provision_one ~vendor ~ports) cases

let run () =
  let rows = rows () in
  Tables.print ~title:"E10: Manager workflow across NOS dialects"
    ~header:
      [ "dialect"; "ports"; "managed"; "steps"; "config changes"; "snmp ops"; "rollback" ]
    (List.map
       (fun r ->
         [
           r.vendor;
           string_of_int r.ports;
           string_of_int r.managed;
           string_of_int r.steps;
           string_of_int r.diff_lines;
           string_of_int r.snmp_requests;
           (if r.rollback_ok then "restored" else "FAILED");
         ])
       rows);
  rows
