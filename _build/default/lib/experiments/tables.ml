let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat " | "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let to_csv ~header rows =
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map csv_field row)) (header :: rows))
  ^ "\n"

let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title

let print ~title ~header rows =
  Printf.printf "\n## %s\n\n%s%!" title (render ~header rows);
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (slug title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_csv ~header rows))

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let mpps pps = Printf.sprintf "%.2f Mpps" (pps /. 1e6)
let gbps bps = Printf.sprintf "%.2f Gbps" (bps /. 1e9)
let us ns = Printf.sprintf "%.2f us" (float_of_int ns /. 1e3)
