(* E14 (extension) — application-level proof: a reliable TCP transfer
   through the HARMLESS fabric, with increasingly lossy access links.
   The claim behind every other experiment is that applications do not
   notice the migration; here an actual transport protocol (handshake,
   windows, retransmission) runs over it and delivers byte-exact data. *)

open Simnet

let payload_size = 200_000
let payload = String.init payload_size (fun i -> Char.chr ((i * 31) land 0xff))

type row = {
  loss_pct : float;
  delivered : bool;
  duration_ms : float;
  goodput_mbps : float;
  retransmissions : int;
}

let measure ~loss () =
  let engine = Engine.create () in
  let host_link = Link.config ~loss ~impair_seed:41 () in
  let d =
    match Harmless.Deployment.build_harmless engine ~num_hosts:2 ~host_link () with
    | Ok d -> d
    | Error m -> failwith m
  in
  ignore
    (Common.attach_with_apps d [ Common.proactive_l2 ~num_hosts:2 ]);
  let started = Engine.now engine in
  let server = Tcp_session.listen (Harmless.Deployment.host d 1) ~port:80 in
  let client =
    Tcp_session.connect
      (Harmless.Deployment.host d 0)
      ~dst_mac:(Harmless.Deployment.host_mac 1)
      ~dst_ip:(Harmless.Deployment.host_ip 1)
      ~dst_port:80 ()
  in
  Tcp_session.send client payload;
  Tcp_session.close client;
  Engine.run engine ~max_events:20_000_000;
  let seconds =
    Sim_time.span_to_seconds (Sim_time.diff (Engine.now engine) started)
  in
  {
    loss_pct = loss *. 100.0;
    delivered = String.equal payload (Tcp_session.received server);
    duration_ms = seconds *. 1e3;
    goodput_mbps =
      (if seconds > 0.0 then float_of_int (payload_size * 8) /. seconds /. 1e6
       else 0.0);
    retransmissions = Tcp_session.retransmissions client;
  }

let losses = [ 0.0; 0.01; 0.05; 0.10 ]

let rows () = List.map (fun loss -> measure ~loss ()) losses

let run () =
  let rows = rows () in
  Tables.print
    ~title:
      (Printf.sprintf
         "E14: %d KB TCP transfer through HARMLESS over lossy access links"
         (payload_size / 1000))
    ~header:[ "link loss"; "delivered"; "duration"; "goodput"; "rtx" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.0f%%" r.loss_pct;
           (if r.delivered then "byte-exact" else "CORRUPT");
           Printf.sprintf "%.1f ms" r.duration_ms;
           Printf.sprintf "%.1f Mbps" r.goodput_mbps;
           string_of_int r.retransmissions;
         ])
       rows);
  Printf.printf
    "\nreliability comes from the endpoints (fixed-window TCP, 20 ms RTO);\n\
     the fabric just forwards — goodput degrades with loss, correctness never.\n";
  rows
