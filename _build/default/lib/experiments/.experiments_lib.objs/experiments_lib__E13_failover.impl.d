lib/experiments/e13_failover.ml: Array Common Engine Ethswitch Harmless Host Legacy_switch Link List Mgmt Printf Rng Sdnctl Sim_time Simnet Softswitch Stdlib Tables Traffic
