lib/experiments/e3_latency.ml: Array Common E2_throughput Engine Harmless Host List Rng Sim_time Simnet Softswitch Stats Tables Traffic
