lib/experiments/common.ml: Array Engine Flow_entry Harmless Host List Netpkt Of_action Of_match Of_message Openflow Sdnctl Sim_time Simnet
