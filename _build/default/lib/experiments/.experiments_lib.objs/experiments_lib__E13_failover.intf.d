lib/experiments/e13_failover.mli:
