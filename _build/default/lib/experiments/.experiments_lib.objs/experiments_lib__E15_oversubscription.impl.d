lib/experiments/e15_oversubscription.ml: Common Engine Float Harmless Link List Printf Rng Sim_time Simnet Tables Traffic
