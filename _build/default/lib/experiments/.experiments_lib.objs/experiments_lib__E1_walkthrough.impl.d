lib/experiments/e1_walkthrough.ml: Capture Common Engine Ethswitch Harmless Host Icmp Ipv4 List Netpkt Node Packet Printf Sdnctl Sim_time Simnet Softswitch String Tables
