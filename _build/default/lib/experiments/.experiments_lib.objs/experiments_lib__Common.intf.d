lib/experiments/common.mli: Harmless Sdnctl Simnet
