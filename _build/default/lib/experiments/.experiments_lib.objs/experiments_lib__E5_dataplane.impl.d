lib/experiments/e5_dataplane.ml: Array Dataplane Eswitch Flow_entry Flow_table Ipv4_addr Linear List Mac_addr Netpkt Of_action Of_match Openflow Ovs_like Packet Pipeline Pmd Simnet Softswitch Tables
