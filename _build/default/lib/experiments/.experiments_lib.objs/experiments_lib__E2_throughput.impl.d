lib/experiments/e2_throughput.ml: Common Engine Float Flow_entry Harmless List Netpkt Of_action Of_match Of_message Openflow Rng Sdnctl Sim_time Simnet Softswitch Tables Traffic
