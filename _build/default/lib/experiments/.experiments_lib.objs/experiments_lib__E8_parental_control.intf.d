lib/experiments/e8_parental_control.mli:
