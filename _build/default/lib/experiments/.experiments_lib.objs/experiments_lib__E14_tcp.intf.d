lib/experiments/e14_tcp.mli:
