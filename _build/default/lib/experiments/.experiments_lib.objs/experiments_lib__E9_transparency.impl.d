lib/experiments/e9_transparency.ml: Common Engine Harmless Host List Netpkt Packet Printf Sdnctl Sim_time Simnet Tables
