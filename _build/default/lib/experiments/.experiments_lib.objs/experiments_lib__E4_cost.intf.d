lib/experiments/e4_cost.mli: Costmodel
