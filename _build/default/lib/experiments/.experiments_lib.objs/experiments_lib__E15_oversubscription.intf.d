lib/experiments/e15_oversubscription.mli:
