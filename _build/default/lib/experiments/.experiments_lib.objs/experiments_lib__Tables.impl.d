lib/experiments/tables.ml: Char Filename Fun List Option Printf Stdlib String Unix
