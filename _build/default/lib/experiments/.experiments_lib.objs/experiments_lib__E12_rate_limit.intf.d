lib/experiments/e12_rate_limit.mli:
