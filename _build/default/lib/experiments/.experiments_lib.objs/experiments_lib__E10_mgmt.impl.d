lib/experiments/e10_mgmt.ml: Engine Ethswitch Fun Harmless Legacy_switch List Mgmt Printf Simnet String Tables
