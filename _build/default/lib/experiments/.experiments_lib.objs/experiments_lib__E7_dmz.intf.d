lib/experiments/e7_dmz.mli:
