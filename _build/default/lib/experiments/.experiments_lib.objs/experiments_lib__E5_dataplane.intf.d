lib/experiments/e5_dataplane.mli: Netpkt Openflow Simnet
