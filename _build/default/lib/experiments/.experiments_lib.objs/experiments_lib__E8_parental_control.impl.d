lib/experiments/e8_parental_control.ml: Common Engine Harmless Host List Printf Sdnctl Sim_time Simnet Tables
