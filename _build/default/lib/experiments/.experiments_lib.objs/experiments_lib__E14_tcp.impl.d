lib/experiments/e14_tcp.ml: Char Common Engine Harmless Link List Printf Sim_time Simnet String Tables Tcp_session
