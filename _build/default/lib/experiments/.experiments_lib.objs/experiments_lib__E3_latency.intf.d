lib/experiments/e3_latency.mli:
