lib/experiments/e6_load_balancer.ml: Common Engine Harmless Host Ipv4 Ipv4_addr List Mac_addr Netpkt Packet Printf Rng Sdnctl Sim_time Simnet Stdlib Tables Tcp
