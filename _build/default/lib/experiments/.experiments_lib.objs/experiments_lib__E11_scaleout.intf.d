lib/experiments/e11_scaleout.mli:
