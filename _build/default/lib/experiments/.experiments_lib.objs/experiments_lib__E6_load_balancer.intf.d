lib/experiments/e6_load_balancer.mli:
