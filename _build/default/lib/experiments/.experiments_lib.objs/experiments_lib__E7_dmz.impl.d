lib/experiments/e7_dmz.ml: Common Engine Fun Harmless Host Ipv4 List Netpkt Packet Printf Sdnctl Sim_time Simnet Tables Udp
