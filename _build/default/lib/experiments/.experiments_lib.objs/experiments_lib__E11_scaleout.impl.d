lib/experiments/e11_scaleout.ml: Array Common Engine Harmless Host List Printf Rng Sim_time Simnet Stats Tables Traffic
