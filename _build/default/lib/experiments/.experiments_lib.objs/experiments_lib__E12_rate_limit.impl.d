lib/experiments/e12_rate_limit.ml: Common Engine Harmless Host List Netpkt Printf Rng Sdnctl Sim_time Simnet Tables Traffic
