lib/experiments/e9_transparency.mli: Harmless
