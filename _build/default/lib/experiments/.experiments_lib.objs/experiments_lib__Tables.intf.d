lib/experiments/tables.mli:
