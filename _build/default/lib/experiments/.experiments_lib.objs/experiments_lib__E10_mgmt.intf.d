lib/experiments/e10_mgmt.mli:
