lib/experiments/e4_cost.ml: Costmodel Format List Printf Tables
