lib/experiments/e1_walkthrough.mli:
