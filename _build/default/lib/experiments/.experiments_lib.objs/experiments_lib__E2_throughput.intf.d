lib/experiments/e2_throughput.mli: Harmless Sdnctl Softswitch
