(** E11 (extension) — several legacy switches behind one server acting as
    a single logical OpenFlow switch. *)

type result = {
  total_ports : int;
  intra_ok : int;
  inter_ok : int;
  intra_pairs : int;
  inter_pairs : int;
  intra_p50_ns : int;
  inter_p50_ns : int;
}

val measure : unit -> result
val run : unit -> result
