open Simnet
open Openflow

let proactive_l2 ~num_hosts =
  let switch_up ctrl dpid =
    for i = 0 to num_hosts - 1 do
      Sdnctl.Controller.install ctrl dpid
        (Of_message.add_flow ~priority:1000
           ~match_:Of_match.(any |> eth_dst (Harmless.Deployment.host_mac i))
           [ Flow_entry.Apply_actions [ Of_action.output i ] ])
    done;
    Sdnctl.Controller.install ctrl dpid
      (Of_message.add_flow ~priority:900
         ~match_:Of_match.(any |> eth_type 0x0806)
         [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ])
  in
  { (Sdnctl.Controller.no_op_app "proactive-l2") with Sdnctl.Controller.switch_up }

let warm_legacy deployment =
  let engine = deployment.Harmless.Deployment.engine in
  Array.iteri
    (fun i h ->
      Host.send h
        (Netpkt.Packet.arp_request ~src_mac:(Host.mac h) ~src_ip:(Host.ip h)
           ~target_ip:(Harmless.Deployment.host_ip ((i + 1) mod
                                                    Array.length deployment.Harmless.Deployment.hosts))))
    deployment.Harmless.Deployment.hosts;
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 2))

let run_for engine span =
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) span)

let attach_with_apps deployment apps =
  let engine = deployment.Harmless.Deployment.engine in
  let ctrl = Sdnctl.Controller.create engine () in
  List.iter (Sdnctl.Controller.add_app ctrl) apps;
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  run_for engine (Sim_time.ms 5);
  ctrl

let total_udp_received deployment =
  Array.fold_left
    (fun acc h -> acc + Host.udp_received h)
    0 deployment.Harmless.Deployment.hosts

let wire_size_of n =
  if n < 64 then invalid_arg "frame size below the Ethernet minimum";
  n
