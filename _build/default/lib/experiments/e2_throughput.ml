(* E2 — "no major performance penalty": offered vs delivered throughput
   across frame sizes, for the pre-migration legacy network, a COTS
   OpenFlow hardware switch, and HARMLESS with three software dataplanes.

   4 senders each offer GbE line rate to 4 receivers for a measured
   window; the HARMLESS trunk is 10G, so the fabric is never the
   bottleneck — any loss is the software switch's. *)

open Simnet
open Openflow

let num_hosts = 8
let senders = [ 0; 1; 2; 3 ]
let measure = Sim_time.ms 10

type row = {
  deployment : string;
  frame : int;
  offered_pps : float;
  delivered_pps : float;
  delivered_bps : float;
  loss : float;
}

(* 1000 high-priority exact rules that never match: the linear dataplane
   must scan them per packet — the "big OF program" case. *)
let filler_rules ctrl dpid =
  for i = 0 to 999 do
    Sdnctl.Controller.install ctrl dpid
      (Of_message.add_flow ~priority:1500
         ~match_:
           Of_match.(
             any
             |> eth_type 0x0800
             |> ip_dst
                  (Netpkt.Ipv4_addr.Prefix.make
                     (Netpkt.Ipv4_addr.of_octets 172 16 (i / 256) (i mod 256))
                     32))
         [ Flow_entry.Apply_actions [ Of_action.Drop ] ])
  done

let filler_app =
  {
    (Sdnctl.Controller.no_op_app "filler") with
    Sdnctl.Controller.switch_up = filler_rules;
  }

let line_rate_pps wire = 1e9 /. float_of_int (wire * 8)

let measure_deployment ~label ~frame (deployment : Harmless.Deployment.t) =
  let engine = deployment.Harmless.Deployment.engine in
  let rng = Rng.create 42 in
  let rate = line_rate_pps frame in
  let before = Common.total_udp_received deployment in
  let stop = Sim_time.add (Engine.now engine) measure in
  let streams =
    List.map
      (fun s ->
        let dst = s + 4 in
        Traffic.udp_stream ~rng:(Rng.split rng)
          ~src:(Harmless.Deployment.host deployment s)
          ~dst_mac:(Harmless.Deployment.host_mac dst)
          ~dst_ip:(Harmless.Deployment.host_ip dst)
          ~src_port:(10000 + s) ~stop (Traffic.Cbr rate)
          (Traffic.Fixed frame) ())
      senders
  in
  (* Run past the stop so in-flight packets drain. *)
  Common.run_for engine (measure + Sim_time.ms 5);
  let sent = List.fold_left (fun acc s -> acc + Traffic.sent s) 0 streams in
  let delivered = Common.total_udp_received deployment - before in
  let seconds = Sim_time.span_to_seconds measure in
  {
    deployment = label;
    frame;
    offered_pps = float_of_int sent /. seconds;
    delivered_pps = float_of_int delivered /. seconds;
    delivered_bps = float_of_int (delivered * frame * 8) /. seconds;
    loss =
      (if sent = 0 then 0.0
       else Float.max 0.0 (1.0 -. (float_of_int delivered /. float_of_int sent)));
  }

let build_legacy () =
  let engine = Engine.create () in
  let d = Harmless.Deployment.build_legacy_only engine ~num_hosts () in
  Common.warm_legacy d;
  d

let build_cots () =
  let engine = Engine.create () in
  let d =
    Harmless.Deployment.build_plain_openflow engine ~num_hosts
      ~dataplane:Softswitch.Soft_switch.Hardware ~max_flow_entries:2000 ()
  in
  ignore (Common.attach_with_apps d [ Common.proactive_l2 ~num_hosts ]);
  d

let build_harmless ?(extra_apps = []) dataplane () =
  let engine = Engine.create () in
  match Harmless.Deployment.build_harmless engine ~num_hosts ~dataplane () with
  | Ok d ->
      ignore
        (Common.attach_with_apps d (extra_apps @ [ Common.proactive_l2 ~num_hosts ]));
      d
  | Error msg -> failwith msg

let variants =
  [
    ("legacy L2 (pre-migration)", fun () -> build_legacy ());
    ("COTS SDN hardware", fun () -> build_cots ());
    ( "HARMLESS / ESwitch",
      fun () -> build_harmless Softswitch.Soft_switch.Eswitch () );
    ( "HARMLESS / OVS-like",
      fun () ->
        build_harmless (Softswitch.Soft_switch.Ovs Softswitch.Ovs_like.default_config) () );
    ( "HARMLESS / linear +1k rules",
      fun () ->
        build_harmless ~extra_apps:[ filler_app ] Softswitch.Soft_switch.Linear () );
  ]

let frame_sizes = [ 64; 128; 256; 512; 1024; 1518 ]

let rows () =
  List.concat_map
    (fun (label, build) ->
      List.map
        (fun frame -> measure_deployment ~label ~frame (build ()))
        frame_sizes)
    variants

let run () =
  let rows = rows () in
  Tables.print
    ~title:
      "E2: throughput, 4x GbE line-rate senders (10G trunk), per dataplane"
    ~header:
      [ "deployment"; "frame B"; "offered"; "delivered"; "goodput"; "loss" ]
    (List.map
       (fun r ->
         [
           r.deployment;
           string_of_int r.frame;
           Tables.mpps r.offered_pps;
           Tables.mpps r.delivered_pps;
           Tables.gbps r.delivered_bps;
           Tables.pct r.loss;
         ])
       rows);
  rows
