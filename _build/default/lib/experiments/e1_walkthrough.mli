(** E1 — behavioural reproduction of Fig. 1: the exact packet walk
    through tag → trunk → SS_1 → SS_2 → hairpin → untag, asserted from a
    capture of the second (installed-fast-path) ping. *)

type check = { step : string; expected : string; observed : string; ok : bool }

val run_checks : unit -> check list
(** Build the deployment, run the pings, return one check per Fig. 1 hop. *)

val run : unit -> bool
(** Print the table; [true] iff every checkpoint matched. *)
