(** E15 (extension) — the architecture's inherent bottleneck: every
    HARMLESS packet crosses the trunk twice, so aggregate host throughput
    is capped by the trunk, not by port count.  This sweeps the host
    count at GbE line rate each and shows exactly where the 10 G trunk
    saturates — the engineering fact behind the cost model's
    "one trunk per 48 access ports" sizing. *)

type row = {
  hosts : int;
  offered_gbps : float;
  delivered_gbps : float;
  loss : float;
  trunk_util : float;  (** downstream-direction utilization, 0..1 *)
}

val rows : unit -> row list
val run : unit -> row list
