(** E5 — dataplane scaling (the ESwitch property): model cycles/packet
    and implied single-core rate as the flow table grows, per dataplane
    and traffic skew. *)

type row = {
  dataplane : string;
  rules : int;
  skew : float;
  avg_cycles : float;
  model_mpps : float;
}

val build_pipeline : int -> Openflow.Pipeline.t
(** An SS_2-flavoured rule set: [n] exact ip_dst rules + ARP wildcard +
    drop fence.  Shared with the wall-clock benches. *)

val workload :
  rng:Simnet.Rng.t -> num_rules:int -> skew:float -> count:int ->
  Netpkt.Packet.t array

val rows : unit -> row list
val run : unit -> row list
