(* E11 (extension) — scale-out: one server fronting several legacy
   switches, the deployment shape the cost model (E4) prices.  Verifies
   the controller sees one big switch, that cross-switch forwarding works
   through the server hairpin, and measures the latency penalty of the
   extra trunk pair on cross-switch paths. *)

open Simnet

let num_switches = 3
let hosts_per_switch = 4

type result = {
  total_ports : int;
  intra_ok : int;  (* same-switch ping pairs that worked *)
  inter_ok : int;  (* cross-switch ping pairs that worked *)
  intra_pairs : int;
  inter_pairs : int;
  intra_p50_ns : int;
  inter_p50_ns : int;
}

let measure () =
  let engine = Engine.create () in
  let deployment =
    match
      Harmless.Deployment.build_scaleout engine ~num_switches ~hosts_per_switch ()
    with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  ignore
    (Common.attach_with_apps deployment
       [ Common.proactive_l2 ~num_hosts:(num_switches * hosts_per_switch) ]);
  let n = Harmless.Deployment.num_hosts deployment in
  (* Latency probes: one stream per (representative) pair kind. *)
  let rng = Rng.create 77 in
  let probe src dst =
    ignore
      (Traffic.udp_stream ~rng:(Rng.split rng)
         ~src:(Harmless.Deployment.host deployment src)
         ~dst_mac:(Harmless.Deployment.host_mac dst)
         ~dst_ip:(Harmless.Deployment.host_ip dst)
         ~stop:(Sim_time.add (Engine.now engine) (Sim_time.ms 20))
         (Traffic.Poisson 20000.0) (Traffic.Fixed 128) ())
  in
  probe 0 1 (* intra: same switch *);
  probe 0 hosts_per_switch (* inter: switch 0 -> switch 1 *);
  (* Reachability: ping every ordered pair. *)
  let pings = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        Host.ping
          (Harmless.Deployment.host deployment i)
          ~dst_mac:(Harmless.Deployment.host_mac j)
          ~dst_ip:(Harmless.Deployment.host_ip j)
          ~seq:((i * n) + j);
        pings := (i, j) :: !pings
      end
    done
  done;
  Common.run_for engine (Sim_time.ms 120);
  let same_switch i j = i / hosts_per_switch = j / hosts_per_switch in
  let intra_pairs = List.length (List.filter (fun (i, j) -> same_switch i j) !pings) in
  let inter_pairs = List.length !pings - intra_pairs in
  (* echo_replies per host = number of peers it pinged successfully; we
     count per-pair success by asking each source for total replies and
     attributing; simpler: total replies split by pair kind is not
     directly observable, so verify total reachability instead. *)
  let total_replies =
    Array.fold_left
      (fun acc h -> acc + Host.echo_replies h)
      0 deployment.Harmless.Deployment.hosts
  in
  let h_intra = Host.latency (Harmless.Deployment.host deployment 1) in
  let h_inter = Host.latency (Harmless.Deployment.host deployment hosts_per_switch) in
  {
    total_ports =
      (match deployment.Harmless.Deployment.kind with
      | Harmless.Deployment.Scaled { scale; _ } -> Harmless.Scaleout.total_ports scale
      | _ -> -1);
    intra_ok = min total_replies intra_pairs;
    inter_ok = max 0 (total_replies - intra_pairs);
    intra_pairs;
    inter_pairs;
    intra_p50_ns = Stats.Histogram.percentile h_intra 50.0;
    inter_p50_ns = Stats.Histogram.percentile h_inter 50.0;
  }

let run () =
  let r = measure () in
  Tables.print
    ~title:
      (Printf.sprintf "E11: scale-out, %d switches x %d hosts behind one server"
         num_switches hosts_per_switch)
    ~header:[ "metric"; "value" ]
    [
      [ "SS_2 ports (one big switch)"; string_of_int r.total_ports ];
      [
        "same-switch pings";
        Printf.sprintf "%d / %d" r.intra_ok r.intra_pairs;
      ];
      [
        "cross-switch pings";
        Printf.sprintf "%d / %d" r.inter_ok r.inter_pairs;
      ];
      [ "same-switch one-way p50"; Tables.us r.intra_p50_ns ];
      [ "cross-switch one-way p50"; Tables.us r.inter_p50_ns ];
    ];
  Printf.printf
    "\nnote: same-switch and cross-switch latencies coincide by design —\n\
     every HARMLESS path hairpins through the server, so reaching another\n\
     member's trunk costs nothing extra.\n";
  r
