(* E7 — use case (b), DMZ access policies: six "VMs" behind HARMLESS
   ports, an allow-list of pairs, everything else fenced off.  We probe
   every ordered pair with UDP and print the delivery matrix next to the
   policy's ground truth — they must agree exactly (zero violations,
   zero false blocks). *)

open Simnet
open Netpkt

let num_hosts = 6

let allowed_pairs =
  [ (0, 1); (2, 3); (0, 4) ] (* e.g. web<->app, app<->db, web<->cache *)

type result = {
  matrix : (int * int * bool * bool) list;
      (* src, dst, delivered, allowed-by-policy *)
  violations : int;  (* delivered but not allowed *)
  false_blocks : int;  (* allowed but not delivered *)
}

let measure () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let policy =
    {
      Sdnctl.Dmz.vms =
        List.init num_hosts (fun i ->
            {
              Sdnctl.Dmz.vm_ip = Harmless.Deployment.host_ip i;
              vm_mac = Harmless.Deployment.host_mac i;
              vm_port = i;
            });
      allowed =
        List.map
          (fun (a, b) ->
            (Harmless.Deployment.host_ip a, Harmless.Deployment.host_ip b))
          allowed_pairs;
    }
  in
  ignore
    (Common.attach_with_apps deployment [ Sdnctl.Dmz.create policy () ]);
  (* Probe every ordered pair with a distinctive UDP port. *)
  let probe_port src dst = 20000 + (src * 100) + dst in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            let h = Harmless.Deployment.host deployment src in
            Host.send h
              (Packet.udp
                 ~dst:(Harmless.Deployment.host_mac dst)
                 ~src:(Host.mac h) ~ip_src:(Host.ip h)
                 ~ip_dst:(Harmless.Deployment.host_ip dst)
                 ~src_port:(probe_port src dst)
                 ~dst_port:(probe_port src dst)
                 "dmz-probe"))
        (List.init num_hosts Fun.id))
    (List.init num_hosts Fun.id);
  Common.run_for engine (Sim_time.ms 50);
  let delivered src dst =
    List.exists
      (fun (p : Packet.t) ->
        match p.Packet.l3 with
        | Packet.Ip { Ipv4.payload = Ipv4.Udp dgram; _ } ->
            dgram.Udp.dst_port = probe_port src dst
        | _ -> false)
      (Host.received (Harmless.Deployment.host deployment dst))
  in
  let matrix = ref [] and violations = ref 0 and false_blocks = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let got = delivered src dst in
            let ok =
              Sdnctl.Dmz.allows policy
                (Harmless.Deployment.host_ip src)
                (Harmless.Deployment.host_ip dst)
            in
            if got && not ok then incr violations;
            if ok && not got then incr false_blocks;
            matrix := (src, dst, got, ok) :: !matrix
          end)
        (List.init num_hosts Fun.id))
    (List.init num_hosts Fun.id);
  {
    matrix = List.rev !matrix;
    violations = !violations;
    false_blocks = !false_blocks;
  }

let run () =
  let r = measure () in
  Tables.print ~title:"E7: DMZ policy enforcement matrix (UDP probes)"
    ~header:[ "src"; "dst"; "policy"; "delivered"; "verdict" ]
    (List.map
       (fun (src, dst, got, ok) ->
         [
           Printf.sprintf "vm%d" src;
           Printf.sprintf "vm%d" dst;
           (if ok then "allow" else "deny");
           (if got then "yes" else "no");
           (if got = ok then "ok" else "WRONG");
         ])
       r.matrix);
  Printf.printf "\nviolations: %d, false blocks: %d\n" r.violations r.false_blocks;
  r
