(** E4 — "no substantial price tag": $/OpenFlow-port sweeps over the
    migration strategies, plus the headline savings figure. *)

val port_counts : int list
val rows : unit -> Costmodel.Cost.row list
val run : unit -> Costmodel.Cost.row list
