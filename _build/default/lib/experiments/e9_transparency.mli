(** E9 — data-plane transparency: identical controller programs and
    workloads on plain OpenFlow vs HARMLESS deliver identical frames. *)

val rows : unit -> (string * Harmless.Transparency.verdict) list
val run : unit -> (string * Harmless.Transparency.verdict) list
