(** E14 (extension) — a reliable TCP transfer through the fabric over
    increasingly lossy access links: goodput degrades, correctness never. *)

type row = {
  loss_pct : float;
  delivered : bool;
  duration_ms : float;
  goodput_mbps : float;
  retransmissions : int;
}

val rows : unit -> row list
val run : unit -> row list
