(** E12 (extension) — OpenFlow-meter traffic policing absorbed into the
    migrated switch. *)

type result = {
  limited_mbps : float;
  unlimited_mbps : float;
  cap_mbps : float;
}

val measure_run : unit -> result
val run : unit -> result
