(* E13 (extension) — trunk failover: the trunk is HARMLESS's single point
   of failure; with a standby trunk and a watchdog, how long is the
   outage?  We run a steady probe stream, kill the primary trunk
   mid-run, and report the observed service gap for several watchdog
   periods.  (Resilience is the theme of the COST RECODIS action the
   paper acknowledges.) *)

open Simnet
open Ethswitch

type row = {
  watchdog_ms : int;
  gap_ms : float;     (* longest inter-arrival gap at the receiver *)
  lost : int;         (* probes lost during the outage *)
  failed_over : bool;
}

let probe_rate = 2000.0 (* per second -> 0.5 ms spacing *)
let fail_at = Sim_time.us 50_700
let run_until = Sim_time.ms 150

let measure ~watchdog_ms () =
  let engine = Engine.create () in
  let legacy = Legacy_switch.create engine ~name:"resilient" ~ports:4 () in
  let device = Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Cisco_like () in
  let fo =
    match
      Harmless.Failover.provision engine ~device ~primary_trunk:2 ~backup_trunk:3
        ~access_ports:[ 0; 1 ] ()
    with
    | Ok f -> f
    | Error m -> failwith m
  in
  let hosts =
    Array.init 2 (fun i ->
        let h =
          Host.create engine
            ~name:(Printf.sprintf "h%d" i)
            ~mac:(Harmless.Deployment.host_mac i)
            ~ip:(Harmless.Deployment.host_ip i) ()
        in
        ignore (Link.connect (Host.node h, 0) (Legacy_switch.node legacy, i));
        h)
  in
  let primary =
    Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
      (Legacy_switch.node legacy, 2)
      (Softswitch.Soft_switch.node (Harmless.Failover.ss1 fo), 0)
  in
  ignore
    (Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
       (Legacy_switch.node legacy, 3)
       (Softswitch.Soft_switch.node (Harmless.Failover.ss1 fo), 1));
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Common.proactive_l2 ~num_hosts:2);
  ignore (Sdnctl.Controller.attach_switch ctrl (Harmless.Failover.ss2 fo));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
  Harmless.Failover.start_watchdog fo ~period:(Sim_time.ms watchdog_ms);
  (* Record arrival times at host 1. *)
  let arrivals = ref [] in
  Host.on_receive hosts.(1) (fun _ ->
      arrivals := Sim_time.to_ns (Engine.now engine) :: !arrivals);
  let stream =
    Traffic.udp_stream ~rng:(Rng.create 9) ~src:hosts.(0)
      ~dst_mac:(Host.mac hosts.(1))
      ~dst_ip:(Host.ip hosts.(1))
      ~stop:(Sim_time.add (Engine.now engine) run_until)
      (Traffic.Cbr probe_rate) (Traffic.Fixed 128) ()
  in
  Engine.schedule_after engine fail_at (fun () -> Link.disconnect primary);
  Common.run_for engine (run_until + Sim_time.ms 10);
  let times = List.rev !arrivals in
  let rec max_gap best = function
    | a :: (b :: _ as rest) -> max_gap (Stdlib.max best (b - a)) rest
    | [ _ ] | [] -> best
  in
  {
    watchdog_ms;
    gap_ms = float_of_int (max_gap 0 times) /. 1e6;
    lost = Traffic.sent stream - List.length times;
    failed_over = Harmless.Failover.active fo = `Backup;
  }

let periods = [ 1; 5; 10; 25 ]

let rows () = List.map (fun ms -> measure ~watchdog_ms:ms ()) periods

let run () =
  let rows = rows () in
  Tables.print
    ~title:
      "E13: trunk failover (primary killed at t=55.7ms, 2kpps probe stream)"
    ~header:[ "watchdog period"; "service gap"; "probes lost"; "failed over" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%d ms" r.watchdog_ms;
           Printf.sprintf "%.1f ms" r.gap_ms;
           string_of_int r.lost;
           (if r.failed_over then "yes" else "NO");
         ])
       rows);
  Printf.printf
    "\nthe outage tracks the watchdog period: detection dominates, the\n\
     reconfiguration itself (NAPALM commit + SS_1 rule swap) is instant\n\
     in simulated time.\n";
  rows
