(* E9 — data-plane transparency: identical controller programs and
   workloads on a plain OpenFlow switch and on the HARMLESS composite
   must deliver byte-identical frame sets to every host. *)

open Simnet
open Netpkt

let udp_burst deployment =
  let engine = deployment.Harmless.Deployment.engine in
  let n = Harmless.Deployment.num_hosts deployment in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        let h = Harmless.Deployment.host deployment i in
        Engine.schedule_after engine (Sim_time.us ((i * 37) + (j * 11))) (fun () ->
            Host.send h
              (Packet.udp
                 ~dst:(Harmless.Deployment.host_mac j)
                 ~src:(Host.mac h) ~ip_src:(Host.ip h)
                 ~ip_dst:(Harmless.Deployment.host_ip j)
                 ~src_port:(1000 + i) ~dst_port:(2000 + j)
                 (Printf.sprintf "payload-%d-%d" i j)))
    done
  done

let pings deployment =
  let n = Harmless.Deployment.num_hosts deployment in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Host.ping
      (Harmless.Deployment.host deployment i)
      ~dst_mac:(Harmless.Deployment.host_mac j)
      ~dst_ip:(Harmless.Deployment.host_ip j)
      ~seq:i
  done

let scenarios =
  [
    ( "reactive L2 + all-pairs UDP",
      {
        Harmless.Transparency.num_hosts = 4;
        apps = (fun () -> [ Sdnctl.L2_learning.create () ]);
        traffic = udp_burst;
        warmup = Sim_time.ms 5;
        duration = Sim_time.ms 60;
      } );
    ( "proactive L2 + ping ring",
      {
        Harmless.Transparency.num_hosts = 5;
        apps = (fun () -> [ Common.proactive_l2 ~num_hosts:5 ]);
        traffic = pings;
        warmup = Sim_time.ms 5;
        duration = Sim_time.ms 60;
      } );
    ( "DMZ policy + all-pairs UDP",
      {
        Harmless.Transparency.num_hosts = 4;
        apps =
          (fun () ->
            [
              Sdnctl.Dmz.create
                {
                  Sdnctl.Dmz.vms =
                    List.init 4 (fun i ->
                        {
                          Sdnctl.Dmz.vm_ip = Harmless.Deployment.host_ip i;
                          vm_mac = Harmless.Deployment.host_mac i;
                          vm_port = i;
                        });
                  allowed =
                    [
                      (Harmless.Deployment.host_ip 0, Harmless.Deployment.host_ip 1);
                      (Harmless.Deployment.host_ip 2, Harmless.Deployment.host_ip 3);
                    ];
                }
                ();
            ]);
        traffic = udp_burst;
        warmup = Sim_time.ms 5;
        duration = Sim_time.ms 60;
      } );
  ]

let rows () =
  List.map
    (fun (name, scenario) ->
      match Harmless.Transparency.run scenario with
      | Ok v -> (name, v)
      | Error msg -> failwith msg)
    scenarios

let run () =
  let rows = rows () in
  Tables.print
    ~title:"E9: data-plane transparency (plain OF vs HARMLESS, same program)"
    ~header:[ "scenario"; "plain frames"; "harmless frames"; "equivalent" ]
    (List.map
       (fun (name, (v : Harmless.Transparency.verdict)) ->
         [
           name;
           string_of_int v.Harmless.Transparency.plain_delivered;
           string_of_int v.Harmless.Transparency.harmless_delivered;
           (if v.Harmless.Transparency.equivalent then "yes" else "NO");
         ])
       rows);
  List.iter
    (fun (name, (v : Harmless.Transparency.verdict)) ->
      List.iter
        (fun m -> Printf.printf "  [%s] %s\n" name m)
        v.Harmless.Transparency.mismatches)
    rows;
  rows
