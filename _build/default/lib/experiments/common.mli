(** Shared plumbing for the experiments: proactive forwarding apps,
    warm-up helpers and run-control. *)

val proactive_l2 : num_hosts:int -> Sdnctl.Controller.app
(** Installs one exact [eth_dst → output] rule per host on switch-up
    (destination MAC/port per the {!Harmless.Deployment} conventions) and
    an ARP-flood rule — static forwarding with no reactive path, so
    throughput experiments measure the dataplane, not the controller. *)

val warm_legacy : Harmless.Deployment.t -> unit
(** Make every host broadcast one ARP so legacy MAC tables are populated
    before measurement. *)

val run_for : Simnet.Engine.t -> Simnet.Sim_time.span -> unit
(** Advance the simulation by a span from now. *)

val attach_with_apps :
  Harmless.Deployment.t -> Sdnctl.Controller.app list -> Sdnctl.Controller.t
(** Create a controller, register the apps, attach the deployment's
    OpenFlow switch, and run 5 simulated ms so the handshake and
    proactive installs settle. *)

val total_udp_received : Harmless.Deployment.t -> int
val wire_size_of : int -> int
(** Identity guard: asserts the requested frame size is achievable
    (>= 64) and returns it. *)
