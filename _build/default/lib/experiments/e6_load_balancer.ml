(* E6 — use case (a), the in-network Load Balancer: a client behind one
   HARMLESS port fires HTTP requests at a virtual IP; the select group
   spreads flows over backends by source-port hash.  We report the
   per-backend request counts, the balance ratio, and whether every
   request got an HTTP 200 back through the un-rewrite path. *)

open Simnet
open Netpkt

let num_hosts = 6
let backends = [ 0; 1; 2; 3 ]
let client = 5
let vip_ip = Ipv4_addr.of_octets 10 0 0 100
let vip_mac = Mac_addr.make_local 100
let requests = 400

type result = {
  per_backend : (int * int) list; (* host index, requests served *)
  responses_ok : int;
  balance_ratio : float; (* max/min over backends; 1.0 = perfect *)
}

let measure () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let lb_app =
    Sdnctl.Load_balancer.create ~vip_ip ~vip_mac ~ingress_port:client
      ~backends:
        (List.map
           (fun b ->
             {
               Sdnctl.Load_balancer.backend_mac = Harmless.Deployment.host_mac b;
               backend_ip = Harmless.Deployment.host_ip b;
               backend_port = b;
             })
           backends)
      ()
  in
  ignore (Common.attach_with_apps deployment [ lb_app; Sdnctl.L2_learning.create () ]);
  List.iter
    (fun b ->
      Host.serve_http (Harmless.Deployment.host deployment b) ~pages:[ "/" ])
    backends;
  let c = Harmless.Deployment.host deployment client in
  let rng = Rng.create 99 in
  for i = 0 to requests - 1 do
    let src_port = 1024 + Rng.int rng 60000 in
    Engine.schedule_after engine (Sim_time.us (i * 50)) (fun () ->
        Host.http_get c ~server_mac:vip_mac ~server_ip:vip_ip
          ~host:"www.example.com" ~path:"/" ~src_port)
  done;
  Common.run_for engine (Sim_time.ms 100);
  let per_backend =
    List.map
      (fun b ->
        let h = Harmless.Deployment.host deployment b in
        let served =
          List.length
            (List.filter
               (fun (p : Packet.t) ->
                 match p.Packet.l3 with
                 | Packet.Ip { Ipv4.payload = Ipv4.Tcp seg; _ } ->
                     seg.Tcp.dst_port = 80
                 | _ -> false)
               (Host.received h))
        in
        (b, served))
      backends
  in
  let counts = List.map snd per_backend in
  let mx = List.fold_left Stdlib.max 0 counts
  and mn = List.fold_left Stdlib.min max_int counts in
  {
    per_backend;
    responses_ok =
      List.length
        (List.filter (fun (status, _) -> status = 200) (Host.http_responses c));
    balance_ratio = (if mn = 0 then infinity else float_of_int mx /. float_of_int mn);
  }

let run () =
  let r = measure () in
  Tables.print ~title:"E6: Load Balancer use case (400 flows over 4 backends)"
    ~header:[ "backend"; "requests served" ]
    (List.map
       (fun (b, n) -> [ Printf.sprintf "backend %d" b; string_of_int n ])
       r.per_backend);
  Printf.printf "\nHTTP 200 responses back at the client: %d / %d\n"
    r.responses_ok requests;
  Printf.printf "Balance (max/min): %.2f\n" r.balance_ratio;
  r
