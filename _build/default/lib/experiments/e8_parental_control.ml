(* E8 — use case (c), Parental Control: per-user web-page deny lists,
   including blocking a page on-the-fly mid-run (the demo's punchline).
   Two servers host "goodsite" and "badsite"; user0 starts blocked from
   badsite, user1 gets blocked live after their first successful fetch. *)

open Simnet

let num_hosts = 5
let user0 = 0
let user1 = 1
let good_server = 2
let bad_server = 3

let good_host = "www.goodsite.example"
let bad_host = "www.badsite.example"

type fetch = { who : string; target : string; when_ : string; got_response : bool }

let fetch_and_wait engine deployment ~user ~server ~host ~port =
  let u = Harmless.Deployment.host deployment user in
  let before = List.length (Host.http_responses u) in
  Host.http_get u
    ~server_mac:(Harmless.Deployment.host_mac server)
    ~server_ip:(Harmless.Deployment.host_ip server)
    ~host ~path:"/" ~src_port:port;
  Common.run_for engine (Sim_time.ms 30);
  List.length (Host.http_responses u) > before

let measure () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let sites =
    [
      (good_host, Harmless.Deployment.host_ip good_server);
      (bad_host, Harmless.Deployment.host_ip bad_server);
    ]
  in
  let pc =
    Sdnctl.Parental_control.create ~sites
      ~blocked:[ (Harmless.Deployment.host_ip user0, bad_host) ]
      ()
  in
  let ctrl =
    Common.attach_with_apps deployment
      [ Sdnctl.Parental_control.app pc; Sdnctl.L2_learning.create () ]
  in
  Host.serve_http (Harmless.Deployment.host deployment good_server) ~pages:[ "/" ];
  Host.serve_http (Harmless.Deployment.host deployment bad_server) ~pages:[ "/" ];
  let results = ref [] in
  let record who target when_ got =
    results := { who; target; when_; got_response = got } :: !results
  in
  (* Phase 1: initial policy. *)
  record "user0" good_host "initial policy"
    (fetch_and_wait engine deployment ~user:user0 ~server:good_server
       ~host:good_host ~port:30001);
  record "user0" bad_host "initial policy"
    (fetch_and_wait engine deployment ~user:user0 ~server:bad_server
       ~host:bad_host ~port:30002);
  record "user1" bad_host "initial policy"
    (fetch_and_wait engine deployment ~user:user1 ~server:bad_server
       ~host:bad_host ~port:30003);
  (* Phase 2: block user1 from badsite on-the-fly. *)
  Sdnctl.Parental_control.block pc ctrl
    ~user:(Harmless.Deployment.host_ip user1)
    ~host:bad_host;
  Common.run_for engine (Sim_time.ms 5);
  record "user1" bad_host "after live block"
    (fetch_and_wait engine deployment ~user:user1 ~server:bad_server
       ~host:bad_host ~port:30004);
  (* Phase 3: unblock user0 on-the-fly. *)
  Sdnctl.Parental_control.unblock pc ctrl
    ~user:(Harmless.Deployment.host_ip user0)
    ~host:bad_host;
  Common.run_for engine (Sim_time.ms 5);
  record "user0" bad_host "after live unblock"
    (fetch_and_wait engine deployment ~user:user0 ~server:bad_server
       ~host:bad_host ~port:30005);
  List.rev !results

let expected =
  [ true; false; true; false; true ]
  (* good allowed; bad blocked; user1 ok; user1 blocked; user0 unblocked *)

let run () =
  let results = measure () in
  Tables.print ~title:"E8: Parental Control (live block/unblock)"
    ~header:[ "user"; "site"; "phase"; "response"; "expected"; "verdict" ]
    (List.map2
       (fun r want ->
         [
           r.who;
           r.target;
           r.when_;
           (if r.got_response then "200 OK" else "blocked");
           (if want then "200 OK" else "blocked");
           (if r.got_response = want then "ok" else "WRONG");
         ])
       results expected);
  let pass = List.for_all2 (fun r want -> r.got_response = want) results expected in
  Printf.printf "\nE8 verdict: %s\n" (if pass then "all policies enforced" else "FAILED");
  results
