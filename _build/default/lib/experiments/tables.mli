(** Plain-text table rendering for the experiment harness — every
    experiment prints its paper-shaped rows through this. *)

val render : header:string list -> string list list -> string
(** Aligned columns, a separator under the header. *)

val print : title:string -> header:string list -> string list list -> unit
(** [render] to stdout under a titled banner; also mirrors the rows to the
    CSV directory when {!set_csv_dir} is active. *)

val to_csv : header:string list -> string list list -> string
(** RFC-4180-style CSV (quotes doubled, fields with commas quoted). *)

val set_csv_dir : string option -> unit
(** When set, every {!print} also writes [<slug-of-title>.csv] into the
    directory (created if missing) — the plottable form of each table. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
val pct : float -> string
(** [0.1234] → ["12.3%"]. *)

val mpps : float -> string
(** Packets/s → ["14.88 Mpps"]. *)

val gbps : float -> string
(** Bits/s → ["9.41 Gbps"]. *)

val us : int -> string
(** Nanoseconds → microseconds with 2 decimals. *)
