open Netpkt
open Openflow

type limit = {
  subject : Ipv4_addr.t;
  rate_kbps : int;
  burst_kb : int;
}

let create ~limits ?(priority = 2000) () =
  let switch_up ctrl dpid =
    List.iteri
      (fun i limit ->
        let meter_id = i + 1 in
        Controller.send ctrl dpid
          (Of_message.Meter_mod
             (Of_message.Add_meter
                {
                  id = meter_id;
                  band =
                    {
                      Meter_table.rate_kbps = limit.rate_kbps;
                      burst_kb = limit.burst_kb;
                    };
                }));
        Controller.install ctrl dpid
          (Of_message.add_flow ~priority
             ~match_:
               Of_match.(
                 any
                 |> eth_type 0x0800
                 |> ip_src (Ipv4_addr.Prefix.make limit.subject 32))
             [ Flow_entry.Meter meter_id; Flow_entry.Goto_table 1 ]))
      limits;
    (* Everything else skips the meters. *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:1 ~match_:Of_match.any
         [ Flow_entry.Goto_table 1 ])
  in
  { (Controller.no_op_app "rate-limiter") with Controller.switch_up }

let table1_l2 ~num_hosts =
  let switch_up ctrl dpid =
    for i = 0 to num_hosts - 1 do
      Controller.install ctrl dpid
        (Of_message.add_flow ~table_id:1 ~priority:1000
           ~match_:Of_match.(any |> eth_dst (Mac_addr.make_local (i + 1)))
           [ Flow_entry.Apply_actions [ Of_action.output i ] ])
    done;
    Controller.install ctrl dpid
      (Of_message.add_flow ~table_id:1 ~priority:900
         ~match_:Of_match.(any |> eth_type 0x0806)
         [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ])
  in
  { (Controller.no_op_app "table1-l2") with Controller.switch_up }
