open Netpkt
open Openflow

type backend = {
  backend_mac : Mac_addr.t;
  backend_ip : Ipv4_addr.t;
  backend_port : int;
}

let create ~vip_ip ~vip_mac ~ingress_port ~backends ?(group_id = 1)
    ?(priority = 2000) () =
  if backends = [] then invalid_arg "Load_balancer.create: no backends";
  let switch_up ctrl dpid =
    let buckets =
      List.map
        (fun b ->
          {
            Group_table.weight = 1;
            actions =
              [
                Of_action.Set_eth_dst b.backend_mac;
                Of_action.Set_ip_dst b.backend_ip;
                Of_action.output b.backend_port;
              ];
          })
        backends
    in
    Controller.send ctrl dpid
      (Of_message.Group_mod
         (Of_message.Add_group { id = group_id; gtype = Group_table.Select; buckets }));
    (* VIP-bound traffic -> the select group. *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority
         ~match_:
           Of_match.(
             any
             |> eth_type 0x0800
             |> ip_dst (Ipv4_addr.Prefix.make vip_ip 32))
         [ Flow_entry.Apply_actions [ Of_action.Group group_id ] ]);
    (* Return traffic: un-rewrite and send to the ingress side. *)
    List.iter
      (fun b ->
        Controller.install ctrl dpid
          (Of_message.add_flow ~priority
             ~match_:
               Of_match.(
                 any
                 |> eth_type 0x0800
                 |> ip_src (Ipv4_addr.Prefix.make b.backend_ip 32)
                 |> in_port b.backend_port)
             [
               Flow_entry.Apply_actions
                 [
                   Of_action.Set_eth_src vip_mac;
                   Of_action.Set_ip_src vip_ip;
                   Of_action.output ingress_port;
                 ];
             ]))
      backends
  in
  { (Controller.no_op_app "load-balancer") with Controller.switch_up }
