open Netpkt

type entry = {
  mac : Mac_addr.t;
  ip : Ipv4_addr.t option;
  port : int;
  dpid : int64;
}

type t = {
  mutable entries : entry list; (* most recent first *)
  mutable moves : int;
}

let create () = { entries = []; moves = 0 }

let hosts t = t.entries

let find_by_mac t mac =
  List.find_opt (fun e -> Mac_addr.equal e.mac mac) t.entries

let find_by_ip t ip =
  List.find_opt
    (fun e -> match e.ip with Some i -> Ipv4_addr.equal i ip | None -> false)
    t.entries

let moves_detected t = t.moves

let note t ~dpid ~port ~mac ~ip =
  if Mac_addr.is_unicast mac then begin
    (match find_by_mac t mac with
    | Some old when old.port <> port || not (Int64.equal old.dpid dpid) ->
        t.moves <- t.moves + 1
    | Some _ | None -> ());
    let ip =
      match ip with
      | Some _ -> ip
      | None -> Option.bind (find_by_mac t mac) (fun e -> e.ip)
    in
    t.entries <-
      { mac; ip; port; dpid }
      :: List.filter (fun e -> not (Mac_addr.equal e.mac mac)) t.entries
  end

let app t =
  let packet_in _ctrl dpid ~in_port _reason (pkt : Packet.t) =
    let ip =
      match pkt.Packet.l3 with
      | Packet.Ip hdr -> Some hdr.Ipv4.src
      | Packet.Arp arp -> Some arp.Arp.spa
      | Packet.Raw _ -> None
    in
    note t ~dpid ~port:in_port ~mac:pkt.Packet.src ~ip;
    false (* purely passive: let the forwarding apps handle the packet *)
  in
  let port_status _ctrl dpid ~port ~up =
    if not up then
      t.entries <-
        List.filter
          (fun e -> not (Int64.equal e.dpid dpid && e.port = port))
          t.entries
  in
  { (Controller.no_op_app "host-tracker") with Controller.packet_in; port_status }
