(** The classic reactive L2-learning controller application: learn source
    MAC → port from packet-ins, install an exact destination-MAC flow once
    the destination is known, flood otherwise.  Serves as the base
    forwarding layer under the use-case apps. *)

val create : ?priority:int -> ?idle_timeout_s:int -> unit -> Controller.app
(** Defaults: priority 1000, 300 s idle timeout on installed flows.
    Reacts to port-down events by flushing the addresses learned behind
    the port and withdrawing the flows that output to it. *)
