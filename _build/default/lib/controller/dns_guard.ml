open Netpkt
open Openflow

type t = {
  blocked : (Ipv4_addr.t * string) list;
  priority : int;
  mutable bindings : (string * Ipv4_addr.t) list; (* newest first *)
  mutable installed : (Ipv4_addr.t * Ipv4_addr.t) list; (* (user, addr) *)
}

let create ~blocked ?(priority = 2500) () =
  { blocked; priority; bindings = []; installed = [] }

let bindings t = List.rev t.bindings
let blocks_installed t = List.length t.installed

let block_rule t ctrl dpid ~user ~addr =
  let already =
    List.exists
      (fun (u, a) -> Ipv4_addr.equal u user && Ipv4_addr.equal a addr)
      t.installed
  in
  if not already then begin
    t.installed <- (user, addr) :: t.installed;
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:(t.priority + 100)
         ~match_:
           Of_match.(
             any
             |> eth_type 0x0800
             |> ip_src (Ipv4_addr.Prefix.make user 32)
             |> ip_dst (Ipv4_addr.Prefix.make addr 32))
         [ Flow_entry.Apply_actions [ Of_action.Drop ] ])
  end

let app t =
  let switch_up ctrl dpid =
    (* Copy DNS responses to the controller; the original continues
       through the forwarding table. *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:t.priority
         ~match_:
           Of_match.(any |> eth_type 0x0800 |> ip_proto 17 |> l4_src Dns_lite.server_port)
         [
           Flow_entry.Apply_actions [ Of_action.Output (Of_action.Controller 0) ];
           Flow_entry.Goto_table 1;
         ]);
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:1 ~match_:Of_match.any
         [ Flow_entry.Goto_table 1 ])
  in
  let packet_in ctrl dpid ~in_port:_ _reason (pkt : Packet.t) =
    match pkt.Packet.l3 with
    | Packet.Ip { Ipv4.payload = Ipv4.Udp dgram; _ }
      when dgram.Udp.src_port = Dns_lite.server_port -> (
        match
          try Some (Dns_lite.decode dgram.Udp.payload)
          with Wire.Truncated _ | Wire.Malformed _ -> None
        with
        | Some msg when msg.Dns_lite.response ->
            List.iter
              (fun (a : Dns_lite.answer) ->
                t.bindings <- (a.Dns_lite.name, a.Dns_lite.addr) :: t.bindings;
                (* The name is now resolvable: fence off every user who is
                   blocked from it, whoever asked. *)
                List.iter
                  (fun (user, host) ->
                    if
                      String.lowercase_ascii host
                      = String.lowercase_ascii a.Dns_lite.name
                    then block_rule t ctrl dpid ~user ~addr:a.Dns_lite.addr)
                  t.blocked)
              msg.Dns_lite.answers;
            true
        | Some _ | None -> false)
    | Packet.Ip _ | Packet.Arp _ | Packet.Raw _ -> false
  in
  { (Controller.no_op_app "dns-guard") with Controller.switch_up; packet_in }
