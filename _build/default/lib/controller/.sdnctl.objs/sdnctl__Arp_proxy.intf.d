lib/controller/arp_proxy.mli: Controller Host_tracker
