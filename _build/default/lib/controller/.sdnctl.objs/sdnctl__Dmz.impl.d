lib/controller/dmz.ml: Controller Flow_entry Ipv4_addr List Mac_addr Netpkt Of_action Of_match Of_message Openflow Printf
