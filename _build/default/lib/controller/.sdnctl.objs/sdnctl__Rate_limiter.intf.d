lib/controller/rate_limiter.mli: Controller Netpkt
