lib/controller/channel.mli: Openflow Simnet Softswitch
