lib/controller/l2_learning.ml: Controller Flow_entry Hashtbl Int64 List Mac_addr Netpkt Of_action Of_match Of_message Openflow Packet
