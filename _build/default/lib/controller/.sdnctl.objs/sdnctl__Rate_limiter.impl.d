lib/controller/rate_limiter.ml: Controller Flow_entry Ipv4_addr List Mac_addr Meter_table Netpkt Of_action Of_match Of_message Openflow
