lib/controller/controller.mli: Netpkt Openflow Simnet Softswitch
