lib/controller/dns_guard.ml: Controller Dns_lite Flow_entry Ipv4 Ipv4_addr List Netpkt Of_action Of_match Of_message Openflow Packet String Udp Wire
