lib/controller/arp_proxy.ml: Arp Controller Host_tracker Int64 Netpkt Openflow Packet
