lib/controller/l2_learning.mli: Controller
