lib/controller/load_balancer.mli: Controller Netpkt
