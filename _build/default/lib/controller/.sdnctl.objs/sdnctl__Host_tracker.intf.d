lib/controller/host_tracker.mli: Controller Netpkt
