lib/controller/parental_control.ml: Controller Flow_entry Http_lite Ipv4 Ipv4_addr List Netpkt Of_action Of_match Of_message Openflow Option Packet String Tcp
