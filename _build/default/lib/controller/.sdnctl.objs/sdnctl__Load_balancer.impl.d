lib/controller/load_balancer.ml: Controller Flow_entry Group_table Ipv4_addr List Mac_addr Netpkt Of_action Of_match Of_message Openflow
