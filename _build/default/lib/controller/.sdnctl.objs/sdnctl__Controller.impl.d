lib/controller/controller.ml: Channel Hashtbl Int64 List Netpkt Of_message Openflow Simnet Softswitch
