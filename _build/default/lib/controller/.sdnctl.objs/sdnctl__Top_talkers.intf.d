lib/controller/top_talkers.mli: Controller Netpkt
