lib/controller/dns_guard.mli: Controller Netpkt
