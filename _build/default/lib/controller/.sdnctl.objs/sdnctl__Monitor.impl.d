lib/controller/monitor.ml: Controller Flow_entry Hashtbl Ipv4_addr List Netpkt Of_match Of_message Openflow Option Simnet
