lib/controller/channel.ml: Engine Sim_time Simnet Softswitch
