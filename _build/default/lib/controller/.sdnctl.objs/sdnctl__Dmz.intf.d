lib/controller/dmz.mli: Controller Netpkt
