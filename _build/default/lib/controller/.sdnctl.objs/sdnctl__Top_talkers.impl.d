lib/controller/top_talkers.ml: Controller Hashtbl Int Ipv4 Ipv4_addr List Netpkt Openflow Option Packet
