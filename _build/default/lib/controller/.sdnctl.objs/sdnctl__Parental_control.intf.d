lib/controller/parental_control.mli: Controller Netpkt
