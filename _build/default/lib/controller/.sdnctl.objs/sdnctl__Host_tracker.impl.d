lib/controller/host_tracker.ml: Arp Controller Int64 Ipv4 Ipv4_addr List Mac_addr Netpkt Option Packet
