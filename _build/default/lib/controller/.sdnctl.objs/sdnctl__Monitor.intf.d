lib/controller/monitor.mli: Controller Netpkt Simnet
