open Netpkt
open Openflow

type vm = { vm_ip : Ipv4_addr.t; vm_mac : Mac_addr.t; vm_port : int }

type policy = {
  vms : vm list;
  allowed : (Ipv4_addr.t * Ipv4_addr.t) list;
}

let allows policy a b =
  List.exists
    (fun (x, y) ->
      (Ipv4_addr.equal x a && Ipv4_addr.equal y b)
      || (Ipv4_addr.equal x b && Ipv4_addr.equal y a))
    policy.allowed

let vm_for policy ip =
  match List.find_opt (fun vm -> Ipv4_addr.equal vm.vm_ip ip) policy.vms with
  | Some vm -> vm
  | None ->
      invalid_arg
        (Printf.sprintf "Dmz: allowed pair names unknown VM %s"
           (Ipv4_addr.to_string ip))

let create policy ?(priority = 2000) () =
  (* Validate eagerly so misconfigurations fail at construction. *)
  List.iter
    (fun (a, b) ->
      ignore (vm_for policy a);
      ignore (vm_for policy b))
    policy.allowed;
  let switch_up ctrl dpid =
    let pair_rule src dst =
      Controller.install ctrl dpid
        (Of_message.add_flow ~priority
           ~match_:
             Of_match.(
               any
               |> eth_type 0x0800
               |> ip_src (Ipv4_addr.Prefix.make src.vm_ip 32)
               |> ip_dst (Ipv4_addr.Prefix.make dst.vm_ip 32))
           [ Flow_entry.Apply_actions [ Of_action.output dst.vm_port ] ])
    in
    List.iter
      (fun (a, b) ->
        let va = vm_for policy a and vb = vm_for policy b in
        pair_rule va vb;
        pair_rule vb va)
      policy.allowed;
    (* ARP must flow for resolution. *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:(priority - 200)
         ~match_:Of_match.(any |> eth_type 0x0806)
         [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ]);
    (* Default-deny fence for IP. *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~priority:(priority - 400)
         ~match_:Of_match.(any |> eth_type 0x0800)
         [ Flow_entry.Apply_actions [ Of_action.Drop ] ])
  in
  { (Controller.no_op_app "dmz") with Controller.switch_up }
