(** A bandwidth-policing application — one more "standalone hardware
    appliance" (a traffic policer) the paper's demo argues HARMLESS can
    absorb into the network.

    Each policy entry caps one source host's IP traffic with an OpenFlow
    meter; limited traffic continues through the rest of the pipeline via
    [Goto_table 1], so this app composes with a forwarding app installed
    in table 1 (see {!table1_l2}). *)

type limit = {
  subject : Netpkt.Ipv4_addr.t;  (** source host to police *)
  rate_kbps : int;
  burst_kb : int;
}

val create : limits:limit list -> ?priority:int -> unit -> Controller.app
(** Installs one meter and one table-0 flow per limit on switch-up, plus
    a table-0 default that forwards everything (unmetered) to table 1.
    Meter ids are assigned [1, 2, ...] in list order.  Default priority
    2000. *)

val table1_l2 : num_hosts:int -> Controller.app
(** A proactive destination-MAC forwarding app for {e table 1}, matching
    the {!Harmless.Deployment} host conventions — the forwarding layer
    under the policer. *)
