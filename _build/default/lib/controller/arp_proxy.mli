(** ARP proxying: the controller answers ARP requests itself from a
    {!Host_tracker} inventory instead of letting them flood — the classic
    SDN trick that removes broadcast storms from large L2 domains.

    Requests for unknown addresses are left alone (another app may flood
    them); once the tracker knows the target, subsequent requests are
    answered directly with a packet-out to the asking port. *)

val create : Host_tracker.t -> Controller.app
(** Register {e before} the flooding/forwarding app so known requests are
    consumed first.  The tracker's own app must also be registered (it
    feeds the inventory). *)
