open Netpkt

type t = {
  counts : (Ipv4_addr.t, int) Hashtbl.t;
  mutable total : int;
}

let create () = { counts = Hashtbl.create 32; total = 0 }

let samples t = t.total

let ranking t =
  Hashtbl.fold (fun ip n acc -> (ip, n) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let estimated_share t ip =
  if t.total = 0 then 0.0
  else
    float_of_int (Option.value (Hashtbl.find_opt t.counts ip) ~default:0)
    /. float_of_int t.total

let app t =
  let packet_in _ctrl _dpid ~in_port:_ reason (pkt : Packet.t) =
    match (reason, pkt.Packet.l3) with
    | Openflow.Of_message.Action_to_controller, Packet.Ip hdr ->
        t.total <- t.total + 1;
        Hashtbl.replace t.counts hdr.Ipv4.src
          (1 + Option.value (Hashtbl.find_opt t.counts hdr.Ipv4.src) ~default:0);
        (* samples are copies: never consume, forwarding already happened *)
        false
    | (Openflow.Of_message.Action_to_controller | Openflow.Of_message.No_match), _ ->
        false
  in
  { (Controller.no_op_app "top-talkers") with Controller.packet_in }
