open Simnet

type t = {
  engine : Engine.t;
  latency : Sim_time.span;
  switch : Softswitch.Soft_switch.t;
  mutable to_switch_count : int;
  mutable to_controller_count : int;
}

let connect engine ?(latency = Sim_time.us 200) ~switch ~to_controller () =
  let t =
    { engine; latency; switch; to_switch_count = 0; to_controller_count = 0 }
  in
  Softswitch.Soft_switch.set_controller switch (fun msg ->
      t.to_controller_count <- t.to_controller_count + 1;
      Engine.schedule_after engine latency (fun () -> to_controller msg));
  t

let to_switch t msg =
  t.to_switch_count <- t.to_switch_count + 1;
  Engine.schedule_after t.engine t.latency (fun () ->
      Softswitch.Soft_switch.handle_message t.switch msg)

let switch t = t.switch
let sent_to_switch t = t.to_switch_count
let sent_to_controller t = t.to_controller_count
