(** The control channel between a switch agent and the controller: both
    directions are delivered asynchronously after a configurable latency,
    modelling the management-network TCP connection. *)

type t

val connect :
  Simnet.Engine.t ->
  ?latency:Simnet.Sim_time.span ->
  switch:Softswitch.Soft_switch.t ->
  to_controller:(Openflow.Of_message.t -> unit) ->
  unit ->
  t
(** Wire the switch's controller callback to [to_controller] (after
    [latency], default 200 us) and return a handle for the reverse
    direction. *)

val to_switch : t -> Openflow.Of_message.t -> unit
(** Deliver a controller→switch message after the channel latency. *)

val switch : t -> Softswitch.Soft_switch.t
val sent_to_switch : t -> int
val sent_to_controller : t -> int
