(** DNS-aware blocking: Parental Control without a static site→address
    table.  The controller steers a copy of every DNS response to itself
    (the dataplane still delivers the original), learns name→address
    bindings from the answers, and the moment a {e blocked} name resolves
    it pins a drop rule for (user, resolved address) — before the user's
    browser has even opened the connection.

    Composes like {!Rate_limiter}: accounting in table 0, forwarding
    expected in table 1 (use {!Rate_limiter.table1_l2} or similar). *)

type t

val create :
  blocked:(Netpkt.Ipv4_addr.t * string) list ->
  ?priority:int ->
  unit ->
  t
(** [blocked] pairs a user address with a forbidden hostname.  Default
    priority 2500 for the snoop rule; drops go in at [priority + 100]. *)

val app : t -> Controller.app

val bindings : t -> (string * Netpkt.Ipv4_addr.t) list
(** Every name→address binding snooped so far, oldest first. *)

val blocks_installed : t -> int
(** Drop rules pinned as a result of snooped resolutions. *)
