(** Top-talkers from sampled packets: pair with
    {!Softswitch.Soft_switch.set_sampling} and the app turns the sampled
    packet-ins into a per-source traffic ranking — the sFlow-collector
    replacement among the in-network use cases. *)

type t

val create : unit -> t
val app : t -> Controller.app

val samples : t -> int
(** Total sampled packets absorbed. *)

val ranking : t -> (Netpkt.Ipv4_addr.t * int) list
(** Source addresses by sample count, descending. *)

val estimated_share : t -> Netpkt.Ipv4_addr.t -> float
(** Fraction of sampled traffic attributed to one source, in [0, 1]. *)
