(** Passive host inventory: learn which MAC/IP lives behind which switch
    port by watching packet-ins (it composes under a reactive L2 app,
    whose packet-ins it observes without consuming).  Port-down events
    evict the hosts behind the port.

    This is the controller-side "where is everything" database other
    apps and operators consult — the SDN replacement for walking MAC
    tables switch by switch. *)

type entry = {
  mac : Netpkt.Mac_addr.t;
  ip : Netpkt.Ipv4_addr.t option;  (** latest source IP seen, if any *)
  port : int;
  dpid : int64;
}

type t

val create : unit -> t
val app : t -> Controller.app

val hosts : t -> entry list
(** Current inventory, most recently seen first. *)

val find_by_ip : t -> Netpkt.Ipv4_addr.t -> entry option
val find_by_mac : t -> Netpkt.Mac_addr.t -> entry option
val moves_detected : t -> int
(** Times a known MAC showed up on a different port (VM migration,
    cable moves — or spoofing). *)
