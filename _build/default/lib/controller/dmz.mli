(** Use case (b) of the paper: DMZ-style VM-level access policies in a
    multi-tenant cloud.  The controller knows where each VM sits (IP,
    MAC, switch port) and an allow-list of VM pairs; everything is
    installed proactively:

    - each allowed (a, b) pair gets forward rules in both directions;
    - ARP floods (hosts must resolve each other);
    - all remaining IP traffic is dropped at a priority between the pair
      rules and any L2 base app, so policy wins over learning. *)

type vm = {
  vm_ip : Netpkt.Ipv4_addr.t;
  vm_mac : Netpkt.Mac_addr.t;
  vm_port : int;
}

type policy = {
  vms : vm list;
  allowed : (Netpkt.Ipv4_addr.t * Netpkt.Ipv4_addr.t) list;
      (** unordered pairs; traffic is allowed both ways *)
}

val create : policy -> ?priority:int -> unit -> Controller.app
(** Pair rules at [priority] (default 2000), ARP flood at [priority - 200],
    the IP drop fence at [priority - 400].
    @raise Invalid_argument if an allowed pair names an unknown VM. *)

val allows : policy -> Netpkt.Ipv4_addr.t -> Netpkt.Ipv4_addr.t -> bool
(** Whether the policy permits traffic between two addresses (symmetric;
    used by tests as the ground truth). *)
