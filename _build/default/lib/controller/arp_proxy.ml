open Netpkt

let create tracker =
  let packet_in ctrl dpid ~in_port _reason (pkt : Packet.t) =
    match pkt.Packet.l3 with
    | Packet.Arp ({ Arp.op = Arp.Request; _ } as request) -> (
        match Host_tracker.find_by_ip tracker request.Arp.tpa with
        | Some entry when Int64.equal entry.Host_tracker.dpid dpid ->
            (* Forge the reply the target would have sent and hand it
               straight back out of the asking port. *)
            let reply = Arp.reply_to request ~sha:entry.Host_tracker.mac in
            let frame =
              Packet.make ~dst:request.Arp.sha ~src:entry.Host_tracker.mac
                (Packet.Arp reply)
            in
            Controller.packet_out ctrl dpid
              ~actions:[ Openflow.Of_action.output in_port ]
              frame;
            true (* consumed: the request never floods *)
        | Some _ | None -> false)
    | Packet.Arp _ | Packet.Ip _ | Packet.Raw _ -> false
  in
  { (Controller.no_op_app "arp-proxy") with Controller.packet_in }
