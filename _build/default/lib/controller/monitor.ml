open Netpkt
open Openflow

type t = {
  pairs : (Ipv4_addr.t * Ipv4_addr.t) list;
  table : int;
  forward_table : int;
  priority : int;
  mutable dpids : int64 list;
  counters : (Ipv4_addr.t * Ipv4_addr.t, int * int) Hashtbl.t;
  mutable polls : int;
}

let create ~pairs ?(table = 0) ?(forward_table = 1) ?(priority = 3000) () =
  {
    pairs;
    table;
    forward_table;
    priority;
    dpids = [];
    counters = Hashtbl.create 16;
    polls = 0;
  }

let pair_match (src, dst) =
  Of_match.(
    any
    |> eth_type 0x0800
    |> ip_src (Ipv4_addr.Prefix.make src 32)
    |> ip_dst (Ipv4_addr.Prefix.make dst 32))

let app t =
  let switch_up ctrl dpid =
    t.dpids <- dpid :: t.dpids;
    List.iter
      (fun pair ->
        Controller.install ctrl dpid
          (Of_message.add_flow ~table_id:t.table ~priority:t.priority
             ~match_:(pair_match pair)
             [ Flow_entry.Goto_table t.forward_table ]))
      t.pairs;
    (* everything untracked also continues to the forwarding table *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~table_id:t.table ~priority:1 ~match_:Of_match.any
         [ Flow_entry.Goto_table t.forward_table ])
  in
  { (Controller.no_op_app "monitor") with Controller.switch_up }

let absorb t stats =
  List.iter
    (fun pair ->
      let m = pair_match pair in
      match
        List.find_opt
          (fun (s : Of_message.flow_stat) ->
            s.Of_message.stat_table_id = t.table
            && Of_match.equal s.Of_message.stat_match m)
          stats
      with
      | Some s ->
          Hashtbl.replace t.counters pair
            (s.Of_message.stat_packets, s.Of_message.stat_bytes)
      | None -> ())
    t.pairs;
  t.polls <- t.polls + 1

let poll t ctrl =
  List.iter
    (fun dpid -> Controller.flow_stats ctrl dpid ~on_reply:(fun stats -> absorb t stats))
    t.dpids

let start_polling t ctrl engine ~period ~rounds =
  for i = 1 to rounds do
    Simnet.Engine.schedule_after engine (i * period) (fun () -> poll t ctrl)
  done

let matrix t =
  List.map
    (fun pair ->
      (pair, Option.value (Hashtbl.find_opt t.counters pair) ~default:(0, 0)))
    t.pairs

let polls_completed t = t.polls
