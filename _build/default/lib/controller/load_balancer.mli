(** Use case (a) of the paper: an in-network load balancer.  Ingress web
    traffic addressed to a virtual IP is spread over backends by flow
    hash (an OpenFlow [Select] group, so a flow's packets stick to one
    backend — the "matching of the source IP address" behaviour of the
    demo), with destination MAC/IP rewritten per backend; return traffic
    is rewritten back to the VIP and sent to the ingress port. *)

type backend = {
  backend_mac : Netpkt.Mac_addr.t;
  backend_ip : Netpkt.Ipv4_addr.t;
  backend_port : int;  (** switch port the backend is reached through *)
}

val create :
  vip_ip:Netpkt.Ipv4_addr.t ->
  vip_mac:Netpkt.Mac_addr.t ->
  ingress_port:int ->
  backends:backend list ->
  ?group_id:int ->
  ?priority:int ->
  unit ->
  Controller.app
(** Installs everything proactively on switch-up.  Defaults: group 1,
    priority 2000 (above the L2 base app). *)
