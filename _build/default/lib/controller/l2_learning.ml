open Netpkt
open Openflow

let create ?(priority = 1000) ?(idle_timeout_s = 300) () =
  (* (dpid, mac) -> port *)
  let table : (int64 * Mac_addr.t, int) Hashtbl.t = Hashtbl.create 256 in
  let packet_in ctrl dpid ~in_port _reason (pkt : Packet.t) =
    Hashtbl.replace table (dpid, pkt.Packet.src) in_port;
    (if Mac_addr.is_unicast pkt.Packet.dst then
       match Hashtbl.find_opt table (dpid, pkt.Packet.dst) with
       | Some out_port ->
           Controller.install ctrl dpid
             (Of_message.add_flow ~priority ~idle_timeout_s
                ~match_:Of_match.(any |> eth_dst pkt.Packet.dst)
                [ Flow_entry.Apply_actions [ Of_action.output out_port ] ]);
           Controller.packet_out ctrl dpid ~in_port
             ~actions:[ Of_action.output out_port ] pkt
       | None ->
           Controller.packet_out ctrl dpid ~in_port
             ~actions:[ Of_action.Output Of_action.Flood ] pkt
     else
       Controller.packet_out ctrl dpid ~in_port
         ~actions:[ Of_action.Output Of_action.Flood ] pkt);
    true
  in
  let port_status ctrl dpid ~port ~up =
    if not up then begin
      (* Forget everything learned behind the dead port and withdraw the
         flows that output to it; affected destinations re-flood. *)
      let doomed =
        Hashtbl.fold
          (fun (d, mac) p acc ->
            if Int64.equal d dpid && p = port then (d, mac) :: acc else acc)
          table []
      in
      List.iter (Hashtbl.remove table) doomed;
      Controller.install ctrl dpid
        (Of_message.delete_flow ~out_port:port Of_match.any)
    end
  in
  { (Controller.no_op_app "l2-learning") with Controller.packet_in; port_status }
