(** A DPDK-style poll-mode-driver CPU model.

    Packets are served run-to-completion by a pool of cores modelled as a
    single server of aggregate speed [ghz * cores].  Each packet costs its
    dataplane cycles plus fixed per-packet I/O cycles plus a share of the
    per-batch overhead ([per_batch_cycles / batch_size] — deeper batches
    amortize better, the ablation bench sweeps this).  A bounded RX ring
    tail-drops when the backlog exceeds [rx_ring] packets. *)

type config = {
  ghz : float;
  cores : int;
  batch_size : int;
  per_batch_cycles : int;
  per_packet_io_cycles : int;
  rx_ring : int;
}

val default_config : config
(** 2.6 GHz, 1 core, batch 32, 600-cycle batch overhead, 50-cycle I/O,
    4096-slot ring. *)

val ns_of_cycles : config -> int -> int
(** Wall-clock nanoseconds for [cycles] on this configuration. *)

val packet_service_cycles : config -> dataplane_cycles:int -> int
(** Total cycles a packet consumes including I/O and batch share. *)

type t

val create : Simnet.Engine.t -> ?config:config -> unit -> t

val submit : t -> cycles:int -> (unit -> unit) -> bool
(** Enqueue a packet whose dataplane work costs [cycles]; the continuation
    runs when service completes.  Returns [false] (and drops) if the RX
    ring is full. *)

val outstanding : t -> int
val processed : t -> int
val dropped : t -> int
val busy_ns : t -> int
(** Total nanoseconds the server has been busy. *)

val config : t -> config
