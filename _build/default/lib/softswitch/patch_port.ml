open Simnet

type t = {
  node_a : Node.t;
  port_a : int;
  node_b : Node.t;
  port_b : int;
  mutable up : bool;
  mutable ab : int;
  mutable ba : int;
}

let connect (node_a, port_a) (node_b, port_b) =
  let engine = Node.engine node_a in
  if not (Node.engine node_b == engine) then
    invalid_arg "Patch_port.connect: nodes on different engines";
  let t = { node_a; port_a; node_b; port_b; up = true; ab = 0; ba = 0 } in
  (* Same-instant scheduling (rather than a direct call) keeps the event
     order deterministic and the stack bounded under switch loops. *)
  Node.attach node_a ~port:port_a (fun pkt ->
      if t.up then begin
        t.ab <- t.ab + 1;
        Engine.schedule_after engine 0 (fun () -> Node.deliver node_b ~port:port_b pkt)
      end);
  Node.attach node_b ~port:port_b (fun pkt ->
      if t.up then begin
        t.ba <- t.ba + 1;
        Engine.schedule_after engine 0 (fun () -> Node.deliver node_a ~port:port_a pkt)
      end);
  t

let disconnect t =
  t.up <- false;
  Node.detach t.node_a ~port:t.port_a;
  Node.detach t.node_b ~port:t.port_b

let packets_a_to_b t = t.ab
let packets_b_to_a t = t.ba
