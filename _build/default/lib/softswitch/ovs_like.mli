(** An OVS-style caching dataplane: an exact-match microflow cache (EMC)
    in front of a masked megaflow cache in front of the slow path.

    - {b EMC}: hash of the full header tuple → cached classification.
      Fastest, but every distinct microflow (e.g. every source port)
      occupies an entry.
    - {b Megaflow}: the header fields are first projected onto the union
      of fields actually tested by the installed rules (a conservative
      model of OVS's dynamically-computed megaflow masks), so traffic
      that differs only in untested fields shares an entry.
    - {b Slow path}: a full linear table walk, after which both caches
      are populated.

    Caches are invalidated wholesale whenever the pipeline changes —
    conservative but correct, and it makes the cost of control-plane
    churn visible in experiments. *)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  megaflow_capacity : int;
}

val default_config : config
(** EMC on, 8192 EMC entries, 65536 megaflows. *)

val create : ?config:config -> Openflow.Pipeline.t -> Dataplane.t
(** Stats exposed: ["emc_hits"], ["megaflow_hits"], ["upcalls"],
    ["invalidations"], ["packets"]. *)
