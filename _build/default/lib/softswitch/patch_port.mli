(** Patch ports: zero-copy internal wires between two software switches on
    the same server (how SS_1 hands packets to SS_2 in HARMLESS).  Delivery
    is a same-instant engine event — no bandwidth, queueing or propagation
    cost, matching the shared-memory port pairs of OVS/ESwitch. *)

type t

val connect : Simnet.Node.t * int -> Simnet.Node.t * int -> t
(** @raise Invalid_argument if a port is attached or engines differ. *)

val disconnect : t -> unit

val packets_a_to_b : t -> int
val packets_b_to_a : t -> int
