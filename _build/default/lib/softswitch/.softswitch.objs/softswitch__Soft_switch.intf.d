lib/softswitch/soft_switch.mli: Netpkt Openflow Ovs_like Pmd Simnet
