lib/softswitch/linear.mli: Dataplane Openflow
