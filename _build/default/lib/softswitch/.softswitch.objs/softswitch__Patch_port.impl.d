lib/softswitch/patch_port.ml: Engine Node Simnet
