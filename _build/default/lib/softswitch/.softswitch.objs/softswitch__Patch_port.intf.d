lib/softswitch/patch_port.mli: Simnet
