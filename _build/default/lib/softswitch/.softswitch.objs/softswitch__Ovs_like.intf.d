lib/softswitch/ovs_like.mli: Dataplane Openflow
