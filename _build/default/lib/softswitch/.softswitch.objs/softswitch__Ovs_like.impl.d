lib/softswitch/ovs_like.ml: Dataplane Flow_entry Flow_table Hashtbl Ipv4_addr List Mac_addr Netpkt Of_match Openflow Option Packet Pipeline Stdlib
