lib/softswitch/dataplane.ml: List Netpkt Openflow
