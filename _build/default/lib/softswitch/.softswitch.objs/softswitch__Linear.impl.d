lib/softswitch/linear.ml: Dataplane Flow_table Openflow Pipeline
