lib/softswitch/eswitch.mli: Dataplane Openflow
