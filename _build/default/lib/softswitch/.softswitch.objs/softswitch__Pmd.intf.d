lib/softswitch/pmd.mli: Simnet
