lib/softswitch/dataplane.mli: Netpkt Openflow
