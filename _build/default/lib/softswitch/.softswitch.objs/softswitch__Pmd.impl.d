lib/softswitch/pmd.ml: Engine Sim_time Simnet Stdlib
