(** An ESwitch-like dataplane (Molnár et al., SIGCOMM 2016 — the software
    switch the HARMLESS demo ran): the flow table is {e compiled} into a
    small set of specialized matchers ("templates").

    Entries whose match tests a set of fields exactly are grouped per
    field-set into a hash table keyed by those field values; the few
    entries with prefixes, masks or presence-tests fall into a residual
    list.  A lookup probes each template (one hash probe each) plus the
    residual, then keeps the highest-priority candidate.  Since real
    OpenFlow programs use a handful of rule shapes, the per-packet cost is
    near-constant in the number of rules — the property experiment E5
    reproduces.

    The compilation is redone whenever the pipeline version changes;
    stats expose ["recompiles"], ["templates"], ["packets"]. *)

val create : Openflow.Pipeline.t -> Dataplane.t
