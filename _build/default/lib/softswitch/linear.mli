(** The naive dataplane: every packet walks the flow tables linearly in
    priority order.  This is the baseline the caching and specializing
    dataplanes are measured against (experiment E5). *)

val create : Openflow.Pipeline.t -> Dataplane.t
