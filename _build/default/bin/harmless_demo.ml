(* The narrated end-to-end demo: what the authors showed at SIGCOMM'17.

   A dumb legacy switch with four hosts is migrated to OpenFlow by the
   HARMLESS Manager; an L2-learning controller takes over; host 0 pings
   host 1 and we print the packet walk of Fig. 1 from a capture. *)

open Simnet

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  let engine = Engine.create () in
  section "1. Provisioning (HARMLESS Manager)";
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith ("provisioning failed: " ^ msg)
  in
  (match deployment.Harmless.Deployment.kind with
  | Harmless.Deployment.Harmless { prov; _ } ->
      List.iter (Printf.printf "  %s\n") prov.Harmless.Manager.report.Harmless.Manager.steps
  | Harmless.Deployment.Legacy_only _ | Harmless.Deployment.Plain_openflow _
  | Harmless.Deployment.Scaled _ -> ());

  section "2. Controller attach (L2 learning app)";
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  let dpid =
    Sdnctl.Controller.attach_switch ctrl (Harmless.Deployment.controller_switch deployment)
  in
  Printf.printf "  controller connected to datapath %Ld\n" dpid;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  section "3. Fig. 1 walk-through: host0 -> host1";
  let capture = Capture.create () in
  (match deployment.Harmless.Deployment.kind with
  | Harmless.Deployment.Harmless { legacy; prov; _ } ->
      Capture.attach capture (Ethswitch.Legacy_switch.node legacy);
      Capture.attach capture (Softswitch.Soft_switch.node prov.Harmless.Manager.ss1);
      Capture.attach capture (Softswitch.Soft_switch.node prov.Harmless.Manager.ss2)
  | Harmless.Deployment.Legacy_only _ | Harmless.Deployment.Plain_openflow _
  | Harmless.Deployment.Scaled _ -> ());
  let h0 = Harmless.Deployment.host deployment 0 and h1 = Harmless.Deployment.host deployment 1 in
  Host.ping h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~seq:1;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 50));
  Format.printf "%a" Capture.dump capture;
  Printf.printf "  echo replies received by host0: %d\n" (Host.echo_replies h0);

  section "4. Cost check (why bother: $/OpenFlow-port)";
  let rows = Costmodel.Cost.sweep ~port_counts:[ 24; 48; 96 ] in
  Format.printf "%a" Costmodel.Cost.pp_table rows;

  section "5. Verdict";
  if Host.echo_replies h0 = 1 then
    print_endline "  HARMLESS forwarded the ping through tag-and-hairpin: OK"
  else begin
    print_endline "  ping did not complete: FAILED";
    exit 1
  end
