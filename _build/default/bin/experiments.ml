(* Experiment driver: `experiments all` regenerates every table in
   EXPERIMENTS.md; `experiments e2` runs one of them. *)

let experiments =
  [
    ("e1", "Fig. 1 packet walk-through", fun () -> ignore (Experiments_lib.E1_walkthrough.run ()));
    ("e2", "throughput vs frame size", fun () -> ignore (Experiments_lib.E2_throughput.run ()));
    ("e3", "one-way latency percentiles", fun () -> ignore (Experiments_lib.E3_latency.run ()));
    ("e4", "CAPEX per OpenFlow port", fun () -> ignore (Experiments_lib.E4_cost.run ()));
    ("e5", "dataplane lookup scaling", fun () -> ignore (Experiments_lib.E5_dataplane.run ()));
    ("e6", "Load Balancer use case", fun () -> ignore (Experiments_lib.E6_load_balancer.run ()));
    ("e7", "DMZ use case", fun () -> ignore (Experiments_lib.E7_dmz.run ()));
    ("e8", "Parental Control use case", fun () -> ignore (Experiments_lib.E8_parental_control.run ()));
    ("e9", "data-plane transparency", fun () -> ignore (Experiments_lib.E9_transparency.run ()));
    ("e10", "Manager workflow", fun () -> ignore (Experiments_lib.E10_mgmt.run ()));
    ("e11", "scale-out (multi-switch)", fun () -> ignore (Experiments_lib.E11_scaleout.run ()));
    ("e12", "meter-based rate limiting", fun () -> ignore (Experiments_lib.E12_rate_limit.run ()));
    ("e13", "trunk failover recovery", fun () -> ignore (Experiments_lib.E13_failover.run ()));
    ("e14", "TCP transfer over lossy links", fun () -> ignore (Experiments_lib.E14_tcp.run ()));
    ("e15", "trunk oversubscription", fun () -> ignore (Experiments_lib.E15_oversubscription.run ()));
  ]

open Cmdliner

let run_ids csv ids =
  Experiments_lib.Tables.set_csv_dir csv;
  let selected =
    match ids with
    | [] | [ "all" ] -> experiments
    | ids ->
        List.map
          (fun id ->
            match List.find_opt (fun (name, _, _) -> name = id) experiments with
            | Some e -> e
            | None -> failwith (Printf.sprintf "unknown experiment %S" id))
          ids
  in
  List.iter
    (fun (id, description, f) ->
      Printf.printf "\n================================================================\n";
      Printf.printf "%s - %s\n" id description;
      Printf.printf "================================================================\n";
      f ())
    selected

let ids =
  let doc = "Experiments to run (e1..e15, or 'all')." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let csv =
  let doc = "Also write each table as CSV into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "regenerate the HARMLESS reproduction tables" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run_ids $ csv $ ids)

let () = exit (Cmd.eval cmd)
