open Simnet
open Openflow
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mac i = Mac_addr.make_local i

let port_status_tests =
  [
    tc "agent emits port-status on link attach and detach" (fun () ->
        let engine = Engine.create () in
        let sw = Softswitch.Soft_switch.create engine ~name:"s" ~ports:2 () in
        let events = ref [] in
        Softswitch.Soft_switch.set_controller sw (function
          | Of_message.Port_status { port_no; up } -> events := (port_no, up) :: !events
          | _ -> ());
        let stub = Node.create engine ~name:"stub" ~ports:1 in
        let link = Link.connect (stub, 0) (Softswitch.Soft_switch.node sw, 1) in
        Link.disconnect link;
        check Alcotest.(list (pair int bool)) "up then down"
          [ (1, true); (1, false) ]
          (List.rev !events));
    tc "codec round-trips port-status" (fun () ->
        List.iter
          (fun up ->
            let m = Of_message.Port_status { port_no = 7; up } in
            let m', _ = Of_codec.decode (Of_codec.encode m) in
            check Alcotest.bool "same" true (m = m'))
          [ true; false ]);
    tc "l2 app flushes state on port-down and traffic re-floods" (fun () ->
        (* Plain OF switch: h0 on port 0, h1 on port 1, spare stub on 2. *)
        let engine = Engine.create () in
        let sw = Softswitch.Soft_switch.create engine ~name:"s" ~ports:3 () in
        let received = Array.make 3 0 in
        let stubs =
          Array.init 3 (fun i ->
              let n = Node.create engine ~name:(Printf.sprintf "h%d" i) ~ports:1 in
              Node.set_handler n (fun _ ~in_port:_ _ ->
                  received.(i) <- received.(i) + 1);
              (n, Link.connect (n, 0) (Softswitch.Soft_switch.node sw, i)))
        in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
        ignore (Sdnctl.Controller.attach_switch ctrl sw);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        let udp i j =
          Packet.udp ~dst:(mac (j + 1)) ~src:(mac (i + 1))
            ~ip_src:(Ipv4_addr.of_octets 10 0 0 (i + 1))
            ~ip_dst:(Ipv4_addr.of_octets 10 0 0 (j + 1))
            ~src_port:1 ~dst_port:2 "x"
        in
        let send i pkt = Node.transmit (fst stubs.(i)) ~port:0 pkt in
        (* learn both directions so 0->1 is a hardware flow *)
        send 0 (udp 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        send 1 (udp 1 0);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 40));
        send 0 (udp 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 60));
        check Alcotest.bool "flow installed" true
          (Flow_table.size (Pipeline.table (Softswitch.Soft_switch.pipeline sw) 0) >= 1);
        let before_flows =
          Flow_table.size (Pipeline.table (Softswitch.Soft_switch.pipeline sw) 0)
        in
        (* kill h1's link: flows outputting to port 1 must be withdrawn *)
        Link.disconnect (snd stubs.(1));
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 80));
        let after_flows =
          Flow_table.size (Pipeline.table (Softswitch.Soft_switch.pipeline sw) 0)
        in
        check Alcotest.bool "flows withdrawn" true (after_flows < before_flows);
        (* new traffic to the dead mac floods (reaches stub 2) instead of
           being blackholed by a stale flow *)
        let spare_before = received.(2) in
        send 0 (udp 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 100));
        check Alcotest.bool "re-floods" true (received.(2) > spare_before));
  ]

let suite = [ ("port_status", port_status_tests) ]
