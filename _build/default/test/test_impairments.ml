open Simnet
open Ethswitch
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mac i = Mac_addr.make_local i

let link_tests =
  [
    tc "lossy link drops roughly the configured fraction" (fun () ->
        let engine = Engine.create () in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        let got = ref 0 in
        Node.set_handler b (fun _ ~in_port:_ _ -> incr got);
        let cfg = Link.config ~loss:0.2 ~impair_seed:3 () in
        let link = Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0) in
        let pkt =
          Packet.udp ~dst:(mac 2) ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "x"
        in
        for _ = 1 to 2000 do
          Node.transmit a ~port:0 pkt
        done;
        Engine.run engine;
        let stats = Link.stats_a_to_b link in
        check Alcotest.int "conservation" 2000 (!got + stats.Link.drops_loss);
        check Alcotest.bool "~20% lost" true
          (stats.Link.drops_loss > 300 && stats.Link.drops_loss < 500));
    tc "jitter spreads arrivals but keeps them past base propagation" (fun () ->
        let engine = Engine.create () in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        let arrivals = ref [] in
        Node.set_handler b (fun _ ~in_port:_ _ ->
            arrivals := Sim_time.to_ns (Engine.now engine) :: !arrivals);
        let cfg =
          Link.config ~propagation:(Sim_time.us 10) ~jitter:(Sim_time.us 20)
            ~impair_seed:5 ()
        in
        ignore (Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0));
        let pkt =
          Packet.udp ~dst:(mac 2) ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "x"
        in
        (* send one packet every 100us so serialization never queues *)
        for i = 0 to 49 do
          Engine.schedule_after engine (i * Sim_time.us 100) (fun () ->
              Node.transmit a ~port:0 pkt)
        done;
        Engine.run engine;
        let delays =
          List.mapi (fun _ t -> t) (List.rev !arrivals)
          |> List.mapi (fun i t -> t - (i * Sim_time.us 100))
        in
        List.iter
          (fun d ->
            check Alcotest.bool "at least base" true (d >= Sim_time.us 10);
            check Alcotest.bool "at most base+jitter+ser" true
              (d <= Sim_time.us 31))
          delays;
        let distinct = List.sort_uniq Int.compare delays in
        check Alcotest.bool "jitter actually varies" true (List.length distinct > 5));
    tc "deterministic given the seed" (fun () ->
        let run () =
          let engine = Engine.create () in
          let a = Node.create engine ~name:"a" ~ports:1 in
          let b = Node.create engine ~name:"b" ~ports:1 in
          let got = ref 0 in
          Node.set_handler b (fun _ ~in_port:_ _ -> incr got);
          let cfg = Link.config ~loss:0.5 ~impair_seed:11 () in
          ignore (Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0));
          let pkt =
            Packet.udp ~dst:(mac 2) ~src:(mac 1)
              ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
              ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "x"
          in
          for _ = 1 to 100 do Node.transmit a ~port:0 pkt done;
          Engine.run engine;
          !got
        in
        check Alcotest.int "same outcome" (run ()) (run ()));
  ]

let storm_tests =
  [
    tc "broadcast storm capped; unicast unaffected" (fun () ->
        let engine = Engine.create () in
        let sw = Legacy_switch.create engine ~name:"sw" ~ports:2 ~processing_delay:0 () in
        let received = ref 0 in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        Node.set_handler b (fun _ ~in_port:_ _ -> incr received);
        ignore (Link.connect (a, 0) (Legacy_switch.node sw, 0));
        ignore (Link.connect (b, 0) (Legacy_switch.node sw, 1));
        Legacy_switch.set_storm_control sw ~port:0 ~pps:(Some 100);
        check Alcotest.(option int) "configured" (Some 100)
          (Legacy_switch.storm_control sw ~port:0);
        (* 1000 broadcasts in 0.1s: only the 10-packet burst allowance
           (100 pps * 100 ms) plus refill (~10) may pass *)
        let bcast =
          Packet.udp ~dst:Mac_addr.broadcast ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.255") ~src_port:1 ~dst_port:2 "b"
        in
        for i = 0 to 999 do
          Engine.schedule_after engine (i * Sim_time.us 100) (fun () ->
              Node.transmit a ~port:0 bcast)
        done;
        Engine.run engine;
        check Alcotest.bool "capped" true (!received <= 25);
        check Alcotest.bool "storm drops counted" true
          (Stats.Counter.get (Legacy_switch.counters sw) "drop_storm" >= 975);
        (* unicast (to a learned mac) is not storm-limited *)
        let before = !received in
        Node.transmit b ~port:0
          (Packet.udp ~dst:(mac 9) ~src:(mac 2)
             ~ip_src:(Ipv4_addr.of_string "10.0.0.2")
             ~ip_dst:(Ipv4_addr.of_string "10.0.0.9") ~src_port:1 ~dst_port:2 "u");
        Engine.run engine;
        (* b's frame floods (unknown dst) to port 0 — that flood is from
           port 1 which has no cap *)
        ignore before;
        let ucast =
          Packet.udp ~dst:(mac 2) ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "u"
        in
        let before = !received in
        for _ = 1 to 50 do Node.transmit a ~port:0 ucast done;
        Engine.run engine;
        check Alcotest.int "all unicast delivered" (before + 50) !received);
    tc "cap removal restores flooding" (fun () ->
        let engine = Engine.create () in
        let sw = Legacy_switch.create engine ~name:"sw" ~ports:2 ~processing_delay:0 () in
        let received = ref 0 in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        Node.set_handler b (fun _ ~in_port:_ _ -> incr received);
        ignore (Link.connect (a, 0) (Legacy_switch.node sw, 0));
        ignore (Link.connect (b, 0) (Legacy_switch.node sw, 1));
        Legacy_switch.set_storm_control sw ~port:0 ~pps:(Some 10);
        Legacy_switch.set_storm_control sw ~port:0 ~pps:None;
        let bcast =
          Packet.udp ~dst:Mac_addr.broadcast ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.255") ~src_port:1 ~dst_port:2 "b"
        in
        for _ = 1 to 100 do Node.transmit a ~port:0 bcast done;
        Engine.run engine;
        check Alcotest.int "uncapped" 100 !received);
  ]



(* ---- SPAN / mirror port ---- *)

let mirror_tests =
  [
    tc "mirror port receives a copy of forwarded traffic" (fun () ->
        let engine = Engine.create () in
        let sw = Legacy_switch.create engine ~name:"sw" ~ports:3 ~processing_delay:0 () in
        let span_frames = ref [] in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        let span = Node.create engine ~name:"span" ~ports:1 in
        Node.set_handler span (fun _ ~in_port:_ pkt -> span_frames := pkt :: !span_frames);
        ignore (Link.connect (a, 0) (Legacy_switch.node sw, 0));
        ignore (Link.connect (b, 0) (Legacy_switch.node sw, 1));
        ignore (Link.connect (span, 0) (Legacy_switch.node sw, 2));
        Legacy_switch.set_port_mode sw ~port:2 Port_config.Disabled;
        Legacy_switch.set_mirror sw ~dst:(Some 2);
        check Alcotest.(option int) "configured" (Some 2) (Legacy_switch.mirror sw);
        (* learn both, then a unicast a->b *)
        let pkt src dst =
          Packet.udp ~dst ~src ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "m"
        in
        Node.transmit a ~port:0 (pkt (Mac_addr.make_local 1) (Mac_addr.make_local 2));
        Node.transmit b ~port:0 (pkt (Mac_addr.make_local 2) (Mac_addr.make_local 1));
        Engine.run engine;
        (* every egressed frame (floods to b only since port 2 is disabled,
           plus the unicast back) was mirrored *)
        check Alcotest.bool "span saw traffic" true (List.length !span_frames >= 2);
        List.iter
          (fun (p : Packet.t) ->
            check Alcotest.(option int) "untagged copies" None (Packet.outer_vid p))
          !span_frames;
        (* disabling stops copies *)
        let before = List.length !span_frames in
        Legacy_switch.set_mirror sw ~dst:None;
        Node.transmit a ~port:0 (pkt (Mac_addr.make_local 1) (Mac_addr.make_local 2));
        Engine.run engine;
        check Alcotest.int "no more copies" before (List.length !span_frames));
  ]

let suite =
  [
    ("impairments.link", link_tests);
    ("impairments.storm", storm_tests);
    ("impairments.mirror", mirror_tests);
  ]
