open Simnet
open Openflow
open Softswitch
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mac i = Mac_addr.make_local i
let ip = Ipv4_addr.of_string
let prefix = Ipv4_addr.Prefix.of_string

let udp_pkt ?(dst = mac 2) ?(ip_dst = ip "10.0.0.2") ?(sport = 1000) () =
  Packet.udp ~dst ~src:(mac 1) ~ip_src:(ip "10.0.0.1") ~ip_dst ~src_port:sport
    ~dst_port:80 "payload..."

let entry ?(priority = 1000) match_ actions =
  Flow_entry.make ~priority ~match_ [ Flow_entry.Apply_actions actions ]

(* A representative mixed rule set: exact MAC forwarding, IP prefixes, an
   ARP wildcard, a drop fence. *)
let populate pipeline =
  let t = Pipeline.table pipeline 0 in
  for i = 1 to 32 do
    Flow_table.add t ~now_ns:0
      (entry ~priority:2000
         Of_match.(any |> eth_dst (mac (100 + i)))
         [ Of_action.output (i mod 8) ])
  done;
  Flow_table.add t ~now_ns:0
    (entry ~priority:1800
       Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.9.0.0/16"))
       [ Of_action.output 7 ]);
  Flow_table.add t ~now_ns:0
    (entry ~priority:1500 Of_match.(any |> eth_type 0x0806)
       [ Of_action.Output Of_action.Flood ]);
  Flow_table.add t ~now_ns:0
    (entry ~priority:1 Of_match.any [ Of_action.Drop ])

let workload () =
  let rng = Rng.create 21 in
  Array.init 500 (fun i ->
      if i mod 7 = 0 then
        Packet.arp_request ~src_mac:(mac 1) ~src_ip:(ip "10.0.0.1")
          ~target_ip:(ip "10.0.0.2")
      else if i mod 3 = 0 then
        udp_pkt ~ip_dst:(ip (Printf.sprintf "10.9.%d.1" (Rng.int rng 255))) ()
      else udp_pkt ~dst:(mac (100 + Rng.int rng 40)) ~sport:(Rng.int rng 60000) ())

let outputs_of result =
  List.map
    (function
      | Pipeline.Port (n, p) -> ("port" ^ string_of_int n, Packet.encode p)
      | Pipeline.In_port p -> ("in", Packet.encode p)
      | Pipeline.Flood p -> ("flood", Packet.encode p)
      | Pipeline.All_ports p -> ("all", Packet.encode p)
      | Pipeline.Controller (_, p) -> ("ctl", Packet.encode p))
    result.Pipeline.outputs

(* ---- Dataplane equivalence: the heart of the library ---- *)

let equivalence_tests =
  [
    tc "linear, ovs, ovs-noemc and eswitch agree on every packet" (fun () ->
        let mk () =
          let p = Pipeline.create ~num_tables:1 () in
          populate p;
          p
        in
        (* separate pipelines so counters do not interfere *)
        let dps =
          [
            Linear.create (mk ());
            Ovs_like.create (mk ());
            Ovs_like.create
              ~config:{ Ovs_like.default_config with Ovs_like.emc_enabled = false }
              (mk ());
            Eswitch.create (mk ());
          ]
        in
        let packets = workload () in
        Array.iteri
          (fun idx pkt ->
            let results =
              List.map
                (fun (dp : Dataplane.t) ->
                  outputs_of (fst (dp.Dataplane.process ~now_ns:0 ~in_port:(idx mod 4) pkt)))
                dps
            in
            match results with
            | reference :: rest ->
                List.iteri
                  (fun j r ->
                    if r <> reference then
                      Alcotest.failf "packet %d: dataplane %d disagrees" idx j)
                  rest
            | [] -> ())
          packets);
    tc "eswitch compiles few templates for many rules" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        populate p;
        let dp = Eswitch.create p in
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 (udp_pkt ()));
        let templates = List.assoc "templates" (dp.Dataplane.stats ()) in
        (* 32 exact-mac rules -> 1 template; prefix + wildcard rules are residual *)
        check Alcotest.bool "few" true (templates <= 3));
    tc "eswitch recompiles on table change" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        populate p;
        let dp = Eswitch.create p in
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 (udp_pkt ()));
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry ~priority:3000 Of_match.(any |> eth_dst (mac 200)) [ Of_action.output 1 ]);
        (* The new rule must be visible immediately. *)
        let r, _ = dp.Dataplane.process ~now_ns:0 ~in_port:0 (udp_pkt ~dst:(mac 200) ()) in
        (match r.Pipeline.outputs with
        | [ Pipeline.Port (1, _) ] -> ()
        | _ -> Alcotest.fail "new rule not picked up");
        check Alcotest.bool "recompiled" true
          (List.assoc "recompiles" (dp.Dataplane.stats ()) >= 2));
  ]

(* ---- Caches ---- *)

let cache_tests =
  [
    tc "emc hits on repeated microflows" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        populate p;
        let dp = Ovs_like.create p in
        let pkt = udp_pkt ~dst:(mac 101) () in
        for _ = 1 to 10 do
          ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt)
        done;
        let stats = dp.Dataplane.stats () in
        check Alcotest.int "one upcall" 1 (List.assoc "upcalls" stats);
        check Alcotest.int "nine emc hits" 9 (List.assoc "emc_hits" stats));
    tc "megaflow absorbs varying untested fields" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        (* single rule keyed on ip_dst only; src ports untested *)
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.0.0.2/32"))
             [ Of_action.output 1 ]);
        let dp =
          Ovs_like.create
            ~config:{ Ovs_like.default_config with Ovs_like.emc_enabled = false }
            p
        in
        for sport = 1 to 50 do
          ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 (udp_pkt ~sport ()))
        done;
        let stats = dp.Dataplane.stats () in
        check Alcotest.int "one upcall" 1 (List.assoc "upcalls" stats);
        check Alcotest.int "49 megaflow hits" 49 (List.assoc "megaflow_hits" stats));
    tc "cache invalidated by flow-mod" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry Of_match.any [ Of_action.output 1 ]);
        let dp = Ovs_like.create p in
        let pkt = udp_pkt () in
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt);
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt);
        (* change the rule: cached result must not survive *)
        ignore
          (Flow_table.modify (Pipeline.table p 0) ~strict:true Of_match.any
             ~priority:1000
             [ Flow_entry.Apply_actions [ Of_action.output 9 ] ]);
        let r, _ = dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt in
        (match r.Pipeline.outputs with
        | [ Pipeline.Port (9, _) ] -> ()
        | _ -> Alcotest.fail "stale cache served");
        check Alcotest.bool "invalidation counted" true
          (List.assoc "invalidations" (dp.Dataplane.stats ()) >= 1));
    tc "table miss is never cached" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        let dp = Ovs_like.create p in
        let pkt = udp_pkt () in
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt);
        ignore (dp.Dataplane.process ~now_ns:0 ~in_port:0 pkt);
        let stats = dp.Dataplane.stats () in
        check Alcotest.int "both upcalled" 2 (List.assoc "upcalls" stats));
  ]

(* ---- PMD ---- *)

let pmd_tests =
  [
    tc "service time matches the cycle model" (fun () ->
        let engine = Engine.create () in
        let cfg = { Pmd.default_config with Pmd.ghz = 1.0 } in
        let pmd = Pmd.create engine ~config:cfg () in
        let done_at = ref (-1) in
        ignore
          (Pmd.submit pmd ~cycles:1000 (fun () ->
               done_at := Sim_time.to_ns (Engine.now engine)));
        Engine.run engine;
        let expected =
          Pmd.ns_of_cycles cfg (Pmd.packet_service_cycles cfg ~dataplane_cycles:1000)
        in
        check Alcotest.int "completion" expected !done_at);
    tc "back-to-back packets queue" (fun () ->
        let engine = Engine.create () in
        let cfg = { Pmd.default_config with Pmd.ghz = 1.0 } in
        let pmd = Pmd.create engine ~config:cfg () in
        let completions = ref [] in
        for _ = 1 to 3 do
          ignore
            (Pmd.submit pmd ~cycles:1000 (fun () ->
                 completions := Sim_time.to_ns (Engine.now engine) :: !completions))
        done;
        Engine.run engine;
        let service =
          Pmd.ns_of_cycles cfg (Pmd.packet_service_cycles cfg ~dataplane_cycles:1000)
        in
        check Alcotest.(list int) "spaced"
          [ service; 2 * service; 3 * service ]
          (List.rev !completions));
    tc "rx ring overflows drop" (fun () ->
        let engine = Engine.create () in
        let cfg = { Pmd.default_config with Pmd.rx_ring = 4 } in
        let pmd = Pmd.create engine ~config:cfg () in
        let accepted = ref 0 in
        for _ = 1 to 10 do
          if Pmd.submit pmd ~cycles:100 (fun () -> ()) then incr accepted
        done;
        check Alcotest.int "4 accepted" 4 !accepted;
        check Alcotest.int "6 dropped" 6 (Pmd.dropped pmd);
        Engine.run engine;
        check Alcotest.int "processed" 4 (Pmd.processed pmd));
    tc "larger batches amortize overhead" (fun () ->
        let small = { Pmd.default_config with Pmd.batch_size = 1 } in
        let big = { Pmd.default_config with Pmd.batch_size = 64 } in
        check Alcotest.bool "cheaper" true
          (Pmd.packet_service_cycles big ~dataplane_cycles:100
           < Pmd.packet_service_cycles small ~dataplane_cycles:100));
    tc "more cores serve faster" (fun () ->
        let one = { Pmd.default_config with Pmd.cores = 1 } in
        let four = { Pmd.default_config with Pmd.cores = 4 } in
        check Alcotest.bool "faster" true
          (Pmd.ns_of_cycles four 10_000 < Pmd.ns_of_cycles one 10_000));
  ]

(* ---- Patch ports and the switch agent ---- *)

let agent_tests =
  [
    tc "patch port delivers same-instant" (fun () ->
        let engine = Engine.create () in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        let patch = Patch_port.connect (a, 0) (b, 0) in
        let got = ref 0 in
        Node.set_handler b (fun _ ~in_port:_ _ -> incr got);
        Node.transmit a ~port:0 (udp_pkt ());
        Engine.run engine;
        check Alcotest.int "delivered" 1 !got;
        check Alcotest.int "counted" 1 (Patch_port.packets_a_to_b patch);
        check Alcotest.int "no clock advance" 0 (Sim_time.to_ns (Engine.now engine)));
    tc "flow_mod add/delete via agent" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:2 () in
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~match_:Of_match.any
                [ Flow_entry.Apply_actions [ Of_action.output 1 ] ]));
        check Alcotest.int "installed" 1
          (Flow_table.size (Pipeline.table (Soft_switch.pipeline sw) 0));
        Soft_switch.handle_message sw
          (Of_message.Flow_mod (Of_message.delete_flow Of_match.any));
        check Alcotest.int "deleted" 0
          (Flow_table.size (Pipeline.table (Soft_switch.pipeline sw) 0)));
    tc "bad table id and table-full surface as errors" (fun () ->
        let engine = Engine.create () in
        let sw =
          Soft_switch.create engine ~name:"s" ~ports:2 ~max_flow_entries:1 ()
        in
        let errors = ref [] in
        Soft_switch.set_controller sw (function
          | Of_message.Error e -> errors := e :: !errors
          | _ -> ());
        Soft_switch.handle_message sw
          (Of_message.Flow_mod (Of_message.add_flow ~table_id:99 ~match_:Of_match.any []));
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~priority:1 ~match_:Of_match.any []));
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~priority:2 ~match_:Of_match.any []));
        check Alcotest.int "two errors" 2 (List.length !errors));
    tc "table miss sends packet-in; drop mode stays silent" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:2 () in
        let stub = Node.create engine ~name:"stub" ~ports:1 in
        ignore (Link.connect (stub, 0) (Soft_switch.node sw, 0));
        let pkt_ins = ref 0 in
        Soft_switch.set_controller sw (function
          | Of_message.Packet_in _ -> incr pkt_ins
          | _ -> ());
        Node.transmit stub ~port:0 (udp_pkt ());
        Engine.run engine;
        check Alcotest.int "packet-in" 1 !pkt_ins;
        (* drop mode *)
        let sw2 =
          Soft_switch.create engine ~name:"s2" ~ports:2 ~miss:Soft_switch.Drop_on_miss ()
        in
        let stub2 = Node.create engine ~name:"stub2" ~ports:1 in
        ignore (Link.connect (stub2, 0) (Soft_switch.node sw2, 0));
        let pkt_ins2 = ref 0 in
        Soft_switch.set_controller sw2 (function
          | Of_message.Packet_in _ -> incr pkt_ins2
          | _ -> ());
        Node.transmit stub2 ~port:0 (udp_pkt ());
        Engine.run engine;
        check Alcotest.int "silent" 0 !pkt_ins2;
        check Alcotest.int "counted" 1
          (Stats.Counter.get (Node.counters (Soft_switch.node sw2)) "drop_table_miss"));
    tc "packet_out executes actions" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:2 () in
        let stub = Node.create engine ~name:"stub" ~ports:1 in
        ignore (Link.connect (stub, 0) (Soft_switch.node sw, 1));
        let got = ref [] in
        Node.set_handler stub (fun _ ~in_port:_ pkt -> got := pkt :: !got);
        Soft_switch.handle_message sw
          (Of_message.Packet_out
             {
               in_port = None;
               actions = [ Of_action.Set_eth_dst (mac 7); Of_action.output 1 ];
               packet = udp_pkt ();
             });
        Engine.run engine;
        match !got with
        | [ pkt ] -> check Alcotest.bool "rewritten" true (Mac_addr.equal pkt.Packet.dst (mac 7))
        | _ -> Alcotest.fail "expected one packet");
    tc "features and stats replies" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:3 () in
        let replies = ref [] in
        Soft_switch.set_controller sw (fun m -> replies := m :: !replies);
        Soft_switch.handle_message sw Of_message.Features_request;
        Soft_switch.handle_message sw
          (Of_message.Flow_mod (Of_message.add_flow ~match_:Of_match.any []));
        Soft_switch.handle_message sw (Of_message.Flow_stats_request { table_id = None });
        Soft_switch.handle_message sw Of_message.Port_stats_request;
        Soft_switch.handle_message sw (Of_message.Barrier_request 5);
        Soft_switch.handle_message sw (Of_message.Echo_request "x");
        let has pred = List.exists pred !replies in
        check Alcotest.bool "features" true
          (has (function Of_message.Features_reply { num_ports = 3; _ } -> true | _ -> false));
        check Alcotest.bool "flow stats" true
          (has (function Of_message.Flow_stats_reply [ _ ] -> true | _ -> false));
        check Alcotest.bool "port stats" true
          (has (function Of_message.Port_stats_reply l -> List.length l = 3 | _ -> false));
        check Alcotest.bool "barrier" true
          (has (function Of_message.Barrier_reply 5 -> true | _ -> false));
        check Alcotest.bool "echo" true
          (has (function Of_message.Echo_reply "x" -> true | _ -> false)));
    tc "hairpin requires In_port output" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:2 () in
        let stub = Node.create engine ~name:"stub" ~ports:1 in
        ignore (Link.connect (stub, 0) (Soft_switch.node sw, 0));
        let got = ref 0 in
        Node.set_handler stub (fun _ ~in_port:_ _ -> incr got);
        (* Output to the ingress port via Physical is suppressed... *)
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~match_:Of_match.any
                [ Flow_entry.Apply_actions [ Of_action.output 0 ] ]));
        Node.transmit stub ~port:0 (udp_pkt ());
        Engine.run engine;
        check Alcotest.int "suppressed" 0 !got;
        (* ...but In_port hairpins. *)
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~priority:2000 ~match_:Of_match.any
                [ Flow_entry.Apply_actions [ Of_action.Output Of_action.In_port ] ]));
        Node.transmit stub ~port:0 (udp_pkt ());
        Engine.run engine;
        check Alcotest.int "hairpinned" 1 !got);
    tc "flow expiry runs via expire_flows" (fun () ->
        let engine = Engine.create () in
        let sw = Soft_switch.create engine ~name:"s" ~ports:1 () in
        Soft_switch.handle_message sw
          (Of_message.Flow_mod
             (Of_message.add_flow ~hard_timeout_s:1 ~match_:Of_match.any []));
        check Alcotest.int "present" 1
          (Flow_table.size (Pipeline.table (Soft_switch.pipeline sw) 0));
        Engine.schedule_after engine (Sim_time.s 2) (fun () -> ());
        Engine.run engine;
        Soft_switch.expire_flows sw;
        check Alcotest.int "expired" 0
          (Flow_table.size (Pipeline.table (Soft_switch.pipeline sw) 0)));
  ]



(* ---- equivalence over fully random tables (reuses the codec's
   match/instruction generators) ---- *)

let random_table_gen =
  let open QCheck2.Gen in
  pair
    (list_size (int_range 1 25)
       (triple Test_codec.match_gen (int_range 1 3000)
          (list_size (int_bound 3) Test_codec.action_gen)))
    (list_size (int_range 1 40) Gen.packet_gen)

let random_equivalence_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"all dataplanes agree on random tables and packets" ~count:60
         ~print:(fun (rules, packets) ->
           Printf.sprintf "%d rules, %d packets" (List.length rules)
             (List.length packets))
         random_table_gen
         (fun (rules, packets) ->
           let mk () =
             let p = Pipeline.create ~num_tables:1 () in
             List.iter
               (fun (m, priority, actions) ->
                 Flow_table.add (Pipeline.table p 0) ~now_ns:0
                   (Flow_entry.make ~priority ~match_:m
                      [ Flow_entry.Apply_actions actions ]))
               rules;
             p
           in
           let dps =
             [
               Linear.create (mk ());
               Ovs_like.create (mk ());
               Eswitch.create (mk ());
             ]
           in
           List.for_all
             (fun (idx, pkt) ->
               let results =
                 List.map
                   (fun (dp : Dataplane.t) ->
                     outputs_of
                       (fst (dp.Dataplane.process ~now_ns:0 ~in_port:(idx mod 5) pkt)))
                   dps
               in
               match results with
               | reference :: rest -> List.for_all (fun r -> r = reference) rest
               | [] -> true)
             (List.mapi (fun i pkt -> (i, pkt)) packets)));
  ]

let suite =
  [
    ("softswitch.equivalence", equivalence_tests);
    ("softswitch.random_equivalence", random_equivalence_tests);
    ("softswitch.caches", cache_tests);
    ("softswitch.pmd", pmd_tests);
    ("softswitch.agent", agent_tests);
  ]
