open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let wire_tests =
  [
    tc "writer produces big-endian bytes" (fun () ->
        let w = Wire.W.create () in
        Wire.W.u8 w 0xab;
        Wire.W.u16 w 0x1234;
        Wire.W.u32 w 0xdeadbeefl;
        Wire.W.bytes w "xy";
        check Alcotest.string "layout" "\xab\x12\x34\xde\xad\xbe\xefxy"
          (Wire.W.contents w);
        check Alcotest.int "length" 9 (Wire.W.length w));
    tc "values are masked to their width" (fun () ->
        let w = Wire.W.create () in
        Wire.W.u8 w 0x1ff;
        Wire.W.u16 w 0x12345;
        check Alcotest.string "masked" "\xff\x23\x45" (Wire.W.contents w));
    tc "reader tracks position and remaining" (fun () ->
        let r = Wire.R.create "\x01\x02\x03\x04\x05" in
        check Alcotest.int "u8" 1 (Wire.R.u8 ~ctx:"t" r);
        check Alcotest.int "u16" 0x0203 (Wire.R.u16 ~ctx:"t" r);
        check Alcotest.int "pos" 3 (Wire.R.pos r);
        check Alcotest.int "remaining" 2 (Wire.R.remaining r);
        check Alcotest.string "rest" "\x04\x05" (Wire.R.rest r);
        check Alcotest.int "drained" 0 (Wire.R.remaining r));
    tc "reads beyond the end raise Truncated with context" (fun () ->
        let r = Wire.R.create "\x01" in
        check Alcotest.bool "u16 truncated" true
          (try ignore (Wire.R.u16 ~ctx:"demo" r); false
           with Wire.Truncated "demo" -> true);
        (* the failed read must not consume anything *)
        check Alcotest.int "pos unchanged" 0 (Wire.R.pos r);
        check Alcotest.int "u8 still works" 1 (Wire.R.u8 ~ctx:"demo" r));
    tc "skip honours bounds" (fun () ->
        let r = Wire.R.create "\x01\x02\x03" in
        Wire.R.skip ~ctx:"t" r 2;
        check Alcotest.bool "over-skip" true
          (try Wire.R.skip ~ctx:"t" r 2; false with Wire.Truncated _ -> true));
    tc "offset reader starts mid-string" (fun () ->
        let r = Wire.R.create ~pos:2 "\x01\x02\x03\x04" in
        check Alcotest.int "u16 from offset" 0x0304 (Wire.R.u16 ~ctx:"t" r));
    prop "u32 round-trips"
      (QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_bound 0x3fffffff))
      ~print:Int32.to_string
      (fun v ->
        let w = Wire.W.create () in
        Wire.W.u32 w v;
        Int32.equal v (Wire.R.u32 ~ctx:"t" (Wire.R.create (Wire.W.contents w))));
    prop "byte strings round-trip through bytes/rest" Gen.payload_gen
      ~print:String.escaped
      (fun s ->
        let w = Wire.W.create () in
        Wire.W.u16 w (String.length s);
        Wire.W.bytes w s;
        let r = Wire.R.create (Wire.W.contents w) in
        let n = Wire.R.u16 ~ctx:"t" r in
        String.equal s (Wire.R.bytes ~ctx:"t" r n));
  ]

let suite = [ ("netpkt.wire", wire_tests) ]
