open Openflow
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let mac i = Mac_addr.make_local i
let ip = Ipv4_addr.of_string
let prefix = Ipv4_addr.Prefix.of_string

let udp_pkt ?vlans ?(dst = mac 2) ?(src = mac 1) ?(ip_src = ip "10.0.0.1")
    ?(ip_dst = ip "10.0.0.2") ?(sport = 1000) ?(dport = 80) () =
  Packet.udp ?vlans ~dst ~src ~ip_src ~ip_dst ~src_port:sport ~dst_port:dport
    "payload..."

let matches m ~in_port pkt = Of_match.matches_packet m ~in_port pkt

(* ---- Matching ---- *)

let match_tests =
  [
    tc "wildcard matches everything" (fun () ->
        check Alcotest.bool "udp" true (matches Of_match.any ~in_port:3 (udp_pkt ()));
        check Alcotest.bool "arp" true
          (matches Of_match.any ~in_port:0
             (Packet.arp_request ~src_mac:(mac 1) ~src_ip:(ip "10.0.0.1")
                ~target_ip:(ip "10.0.0.2"))));
    tc "in_port" (fun () ->
        let m = Of_match.(any |> in_port 3) in
        check Alcotest.bool "hit" true (matches m ~in_port:3 (udp_pkt ()));
        check Alcotest.bool "miss" false (matches m ~in_port:4 (udp_pkt ())));
    tc "eth_dst exact and masked" (fun () ->
        let m = Of_match.(any |> eth_dst (mac 2)) in
        check Alcotest.bool "hit" true (matches m ~in_port:0 (udp_pkt ()));
        check Alcotest.bool "miss" false
          (matches m ~in_port:0 (udp_pkt ~dst:(mac 3) ()));
        (* mask on the OUI bytes only *)
        let oui_mask = Mac_addr.of_string "ff:ff:ff:00:00:00" in
        let m = Of_match.(any |> eth_dst ~mask:oui_mask (mac 2)) in
        check Alcotest.bool "same oui" true
          (matches m ~in_port:0 (udp_pkt ~dst:(mac 9999) ())));
    tc "vlan absent/present/vid" (fun () ->
        let tagged = udp_pkt ~vlans:[ Vlan.make 101 ] () in
        let untagged = udp_pkt () in
        check Alcotest.bool "absent hits untagged" true
          (matches Of_match.(any |> vlan_absent) ~in_port:0 untagged);
        check Alcotest.bool "absent misses tagged" false
          (matches Of_match.(any |> vlan_absent) ~in_port:0 tagged);
        check Alcotest.bool "present hits tagged" true
          (matches Of_match.(any |> vlan_present) ~in_port:0 tagged);
        check Alcotest.bool "present misses untagged" false
          (matches Of_match.(any |> vlan_present) ~in_port:0 untagged);
        check Alcotest.bool "vid hits" true
          (matches Of_match.(any |> vid 101) ~in_port:0 tagged);
        check Alcotest.bool "vid misses" false
          (matches Of_match.(any |> vid 102) ~in_port:0 tagged));
    tc "ip prefix match" (fun () ->
        let m = Of_match.(any |> ip_dst (prefix "10.0.0.0/24")) in
        check Alcotest.bool "hit" true (matches m ~in_port:0 (udp_pkt ()));
        check Alcotest.bool "miss" false
          (matches m ~in_port:0 (udp_pkt ~ip_dst:(ip "10.0.1.2") ())));
    tc "ip field test fails on non-ip (prerequisite)" (fun () ->
        let m = Of_match.(any |> ip_src (prefix "10.0.0.1/32")) in
        let arp =
          Packet.arp_request ~src_mac:(mac 1) ~src_ip:(ip "10.0.0.1")
            ~target_ip:(ip "10.0.0.2")
        in
        check Alcotest.bool "arp misses" false (matches m ~in_port:0 arp));
    tc "l4 ports" (fun () ->
        let m = Of_match.(any |> ip_proto 17 |> l4_dst 80) in
        check Alcotest.bool "hit" true (matches m ~in_port:0 (udp_pkt ()));
        check Alcotest.bool "miss" false
          (matches m ~in_port:0 (udp_pkt ~dport:443 ())));
    tc "wildcard_count" (fun () ->
        check Alcotest.int "any" 12 (Of_match.wildcard_count Of_match.any);
        check Alcotest.int "one" 11
          (Of_match.wildcard_count Of_match.(any |> in_port 1)));
    prop "subsumes is sound"
      (QCheck2.Gen.triple Gen.packet_gen
         (QCheck2.Gen.oneofl
            [
              Of_match.any;
              Of_match.(any |> eth_type 0x0800);
              Of_match.(any |> vlan_present);
              Of_match.(any |> ip_dst (prefix "10.0.0.0/8"));
              Of_match.(any |> ip_dst (prefix "10.1.0.0/16"));
              Of_match.(any |> in_port 1);
            ])
         (QCheck2.Gen.oneofl
            [
              Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.1.2.0/24"));
              Of_match.(any |> vid 101);
              Of_match.(any |> in_port 1 |> eth_type 0x0806);
              Of_match.any;
            ]))
      ~print:(fun (pkt, _, _) -> Gen.packet_print pkt)
      (fun (pkt, a, b) ->
        (* if a subsumes b, every packet matching b matches a (any port) *)
        (not (Of_match.subsumes a b))
        || (not (matches b ~in_port:1 pkt))
        || matches a ~in_port:1 pkt);
  ]

(* ---- Actions ---- *)

let action_tests =
  [
    tc "push/set/pop vlan" (fun () ->
        let pkt = udp_pkt () in
        let tagged = Of_action.apply_rewrite Of_action.Push_vlan pkt in
        check Alcotest.(option int) "pushed vid 0" (Some 0) (Packet.outer_vid tagged);
        let set = Of_action.apply_rewrite (Of_action.Set_vlan_vid 42) tagged in
        check Alcotest.(option int) "set" (Some 42) (Packet.outer_vid set);
        let popped = Of_action.apply_rewrite Of_action.Pop_vlan set in
        check Alcotest.bool "back" true (Packet.equal popped pkt));
    tc "set_vlan on untagged is a no-op" (fun () ->
        let pkt = udp_pkt () in
        check Alcotest.bool "unchanged" true
          (Packet.equal pkt (Of_action.apply_rewrite (Of_action.Set_vlan_vid 9) pkt)));
    tc "eth and ip rewrites" (fun () ->
        let pkt = udp_pkt () in
        let pkt = Of_action.apply_rewrite (Of_action.Set_eth_dst (mac 42)) pkt in
        let pkt = Of_action.apply_rewrite (Of_action.Set_ip_dst (ip "1.2.3.4")) pkt in
        check Alcotest.bool "mac" true (Mac_addr.equal pkt.Packet.dst (mac 42));
        match pkt.Packet.l3 with
        | Packet.Ip hdr ->
            check Alcotest.string "ip" "1.2.3.4" (Ipv4_addr.to_string hdr.Ipv4.dst)
        | _ -> Alcotest.fail "not ip");
    tc "l4 rewrite on udp and tcp" (fun () ->
        let u = Of_action.apply_rewrite (Of_action.Set_l4_dst 8080) (udp_pkt ()) in
        (match (Packet.Fields.of_packet u).Packet.Fields.l4_dst with
        | Some 8080 -> ()
        | _ -> Alcotest.fail "udp port not rewritten");
        let t =
          Packet.tcp ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1")
            ~ip_dst:(ip "10.0.0.2") ~src_port:5 ~dst_port:6 "x"
        in
        let t = Of_action.apply_rewrite (Of_action.Set_l4_src 9999) t in
        match (Packet.Fields.of_packet t).Packet.Fields.l4_src with
        | Some 9999 -> ()
        | _ -> Alcotest.fail "tcp port not rewritten");
    tc "l4 rewrite on arp is a no-op" (fun () ->
        let arp =
          Packet.arp_request ~src_mac:(mac 1) ~src_ip:(ip "10.0.0.1")
            ~target_ip:(ip "10.0.0.2")
        in
        check Alcotest.bool "unchanged" true
          (Packet.equal arp (Of_action.apply_rewrite (Of_action.Set_l4_src 1) arp)));
    tc "rewritten packets still encode (checksums recomputed)" (fun () ->
        let pkt = Of_action.apply_rewrite (Of_action.Set_ip_dst (ip "8.8.8.8")) (udp_pkt ()) in
        let decoded = Packet.decode (Packet.encode pkt) in
        check Alcotest.bool "valid" true (Packet.equal pkt decoded));
  ]

(* ---- Flow tables ---- *)

let entry ?(priority = 1000) match_ actions =
  Flow_entry.make ~priority ~match_ [ Flow_entry.Apply_actions actions ]

let flow_table_tests =
  [
    tc "priority order wins" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0
          (entry ~priority:10 Of_match.any [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0
          (entry ~priority:20 Of_match.(any |> eth_type 0x0800) [ Of_action.output 2 ]);
        let f = Packet.Fields.of_packet (udp_pkt ()) in
        match Flow_table.lookup t ~in_port:0 f with
        | Some e -> check Alcotest.int "prio" 20 e.Flow_entry.priority
        | None -> Alcotest.fail "no match");
    tc "equal priority: first added wins" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0800) [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> ip_proto 17) [ Of_action.output 2 ]);
        let f = Packet.Fields.of_packet (udp_pkt ()) in
        match Flow_table.lookup t ~in_port:0 f with
        | Some e ->
            check Alcotest.bool "first" true
              (Flow_entry.actions e = [ Of_action.output 1 ])
        | None -> Alcotest.fail "no match");
    tc "identical match+priority replaces" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0 (entry Of_match.any [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0 (entry Of_match.any [ Of_action.output 2 ]);
        check Alcotest.int "one entry" 1 (Flow_table.size t);
        match Flow_table.entries t with
        | [ e ] ->
            check Alcotest.bool "new actions" true
              (Flow_entry.actions e = [ Of_action.output 2 ])
        | _ -> Alcotest.fail "expected one entry");
    tc "strict delete" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0 (entry ~priority:10 Of_match.any [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0 (entry ~priority:20 Of_match.any [ Of_action.output 2 ]);
        let removed = Flow_table.delete t ~strict:true Of_match.any ~priority:10 in
        check Alcotest.int "one removed" 1 removed;
        check Alcotest.int "one left" 1 (Flow_table.size t));
    tc "non-strict delete removes subsumed" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.0.1.0/24"))
             [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.0.2.0/24"))
             [ Of_action.output 2 ]);
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0806) [ Of_action.output 3 ]);
        let removed =
          Flow_table.delete t ~strict:false
            Of_match.(any |> eth_type 0x0800 |> ip_dst (prefix "10.0.0.0/16"))
            ~priority:0
        in
        check Alcotest.int "two removed" 2 removed;
        check Alcotest.int "arp stays" 1 (Flow_table.size t));
    tc "delete filtered by out_port" (fun () ->
        let t = Flow_table.create () in
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0800) [ Of_action.output 1 ]);
        Flow_table.add t ~now_ns:0
          (entry Of_match.(any |> eth_type 0x0806) [ Of_action.output 2 ]);
        let removed = Flow_table.delete t ~strict:false ~out_port:2 Of_match.any ~priority:0 in
        check Alcotest.int "only the port-2 rule" 1 removed);
    tc "modify preserves counters" (fun () ->
        let t = Flow_table.create () in
        let e = entry Of_match.any [ Of_action.output 1 ] in
        Flow_table.add t ~now_ns:0 e;
        Flow_table.hit t ~now_ns:5 ~bytes:100 e;
        let changed =
          Flow_table.modify t ~strict:true Of_match.any ~priority:1000
            [ Flow_entry.Apply_actions [ Of_action.output 9 ] ]
        in
        check Alcotest.int "changed" 1 changed;
        match Flow_table.entries t with
        | [ e' ] ->
            check Alcotest.int "packets kept" 1 e'.Flow_entry.packets;
            check Alcotest.bool "actions new" true
              (Flow_entry.actions e' = [ Of_action.output 9 ])
        | _ -> Alcotest.fail "expected one");
    tc "idle and hard timeouts" (fun () ->
        let t = Flow_table.create () in
        let second = 1_000_000_000 in
        Flow_table.add t ~now_ns:0
          (Flow_entry.make ~idle_timeout_s:2 ~match_:Of_match.any
             [ Flow_entry.Apply_actions [] ]);
        Flow_table.add t ~now_ns:0
          (Flow_entry.make ~priority:2 ~hard_timeout_s:10 ~match_:Of_match.any
             [ Flow_entry.Apply_actions [] ]);
        (* touch the idle one at t=1s so it survives to 2.9s *)
        (match Flow_table.entries t with
        | entries ->
            List.iter
              (fun e ->
                if e.Flow_entry.idle_timeout_s <> None then
                  Flow_table.hit t ~now_ns:second ~bytes:1 e)
              entries);
        check Alcotest.int "nothing at 2.9s" 0
          (List.length (Flow_table.expire t ~now_ns:(29 * second / 10)));
        check Alcotest.int "idle expires at 3.1s" 1
          (List.length (Flow_table.expire t ~now_ns:(31 * second / 10)));
        check Alcotest.int "hard expires at 11s" 1
          (List.length (Flow_table.expire t ~now_ns:(11 * second))));
    tc "capacity raises Table_full" (fun () ->
        let t = Flow_table.create ~max_entries:2 () in
        Flow_table.add t ~now_ns:0 (entry ~priority:1 Of_match.any []);
        Flow_table.add t ~now_ns:0 (entry ~priority:2 Of_match.any []);
        check Alcotest.bool "full" true
          (try
             Flow_table.add t ~now_ns:0 (entry ~priority:3 Of_match.any []);
             false
           with Flow_table.Table_full -> true));
    tc "version bumps on mutation only" (fun () ->
        let t = Flow_table.create () in
        let v0 = Flow_table.version t in
        Flow_table.add t ~now_ns:0 (entry Of_match.any []);
        let v1 = Flow_table.version t in
        check Alcotest.bool "bumped" true (v1 > v0);
        ignore (Flow_table.lookup t ~in_port:0 (Packet.Fields.of_packet (udp_pkt ())));
        check Alcotest.int "lookup no bump" v1 (Flow_table.version t));
  ]

(* ---- Groups ---- *)

let group_tests =
  [
    tc "select is deterministic per flow hash" (fun () ->
        let g = Group_table.create () in
        Group_table.add g ~id:1 Group_table.Select
          [
            { Group_table.weight = 1; actions = [ Of_action.output 1 ] };
            { Group_table.weight = 1; actions = [ Of_action.output 2 ] };
          ];
        let b1 = Group_table.select_buckets g ~id:1 ~flow_hash:12345 in
        let b2 = Group_table.select_buckets g ~id:1 ~flow_hash:12345 in
        check Alcotest.bool "same" true (b1 = b2);
        check Alcotest.int "single" 1 (List.length b1));
    tc "select respects weights" (fun () ->
        let g = Group_table.create () in
        Group_table.add g ~id:1 Group_table.Select
          [
            { Group_table.weight = 3; actions = [ Of_action.output 1 ] };
            { Group_table.weight = 1; actions = [ Of_action.output 2 ] };
          ];
        let to_1 = ref 0 in
        for h = 0 to 999 do
          match Group_table.select_buckets g ~id:1 ~flow_hash:h with
          | [ b ] -> if b.Group_table.actions = [ Of_action.output 1 ] then incr to_1
          | _ -> ()
        done;
        check Alcotest.bool "~75%" true (!to_1 > 700 && !to_1 < 800));
    tc "all returns every bucket" (fun () ->
        let g = Group_table.create () in
        Group_table.add g ~id:2 Group_table.All
          [
            { Group_table.weight = 0; actions = [ Of_action.output 1 ] };
            { Group_table.weight = 0; actions = [ Of_action.output 2 ] };
          ];
        check Alcotest.int "two" 2
          (List.length (Group_table.select_buckets g ~id:2 ~flow_hash:0)));
    tc "indirect requires one bucket" (fun () ->
        let g = Group_table.create () in
        check Alcotest.bool "rejected" true
          (try
             Group_table.add g ~id:3 Group_table.Indirect [];
             false
           with Invalid_argument _ -> true));
    tc "duplicate id rejected, modify works" (fun () ->
        let g = Group_table.create () in
        Group_table.add g ~id:1 Group_table.All [];
        check Alcotest.bool "dup" true
          (try Group_table.add g ~id:1 Group_table.All []; false
           with Invalid_argument _ -> true);
        Group_table.modify g ~id:1 Group_table.All
          [ { Group_table.weight = 0; actions = [] } ];
        check Alcotest.int "one bucket" 1
          (List.length (Group_table.select_buckets g ~id:1 ~flow_hash:0));
        check Alcotest.bool "modify absent" true
          (try Group_table.modify g ~id:9 Group_table.All []; false
           with Not_found -> true));
  ]

(* ---- Pipeline ---- *)

let pipeline_tests =
  [
    tc "apply actions emit with current packet state" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry Of_match.any
             [
               Of_action.output 1;
               Of_action.Set_eth_dst (mac 42);
               Of_action.output 2;
             ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        match r.Pipeline.outputs with
        | [ Pipeline.Port (1, first); Pipeline.Port (2, second) ] ->
            check Alcotest.bool "first unrewritten" true
              (Mac_addr.equal first.Packet.dst (mac 2));
            check Alcotest.bool "second rewritten" true
              (Mac_addr.equal second.Packet.dst (mac 42))
        | _ -> Alcotest.fail "wrong outputs");
    tc "goto_table chains and write_actions defer" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Write_actions [ Of_action.output 7 ];
               Flow_entry.Goto_table 1;
             ]);
        Flow_table.add (Pipeline.table p 1) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Apply_actions [ Of_action.Set_eth_dst (mac 5) ] ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.bool "no miss" false r.Pipeline.table_miss;
        check Alcotest.int "both matched" 2 (List.length r.Pipeline.matched);
        match r.Pipeline.outputs with
        | [ Pipeline.Port (7, pkt) ] ->
            check Alcotest.bool "rewrite applied before deferred output" true
              (Mac_addr.equal pkt.Packet.dst (mac 5))
        | _ -> Alcotest.fail "wrong outputs");
    tc "clear_actions cancels the action set" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Write_actions [ Of_action.output 7 ];
               Flow_entry.Goto_table 1;
             ]);
        Flow_table.add (Pipeline.table p 1) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any [ Flow_entry.Clear_actions ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.int "dropped" 0 (List.length r.Pipeline.outputs));
    tc "write_actions with a group as the final action" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Group_table.add (Pipeline.groups p) ~id:4 Group_table.Indirect
          [ { Group_table.weight = 1; actions = [ Of_action.output 6 ] } ];
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Write_actions [ Of_action.Group 4 ] ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        (match r.Pipeline.outputs with
        | [ Pipeline.Port (6, _) ] -> ()
        | _ -> Alcotest.fail "group in action set not executed"));
    tc "same-kind rewrites in the action set replace, last wins" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Write_actions
                 [ Of_action.Set_eth_dst (mac 50); Of_action.output 1 ];
               Flow_entry.Goto_table 1;
             ]);
        Flow_table.add (Pipeline.table p 1) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Write_actions [ Of_action.Set_eth_dst (mac 60) ] ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        (match r.Pipeline.outputs with
        | [ Pipeline.Port (1, pkt) ] ->
            check Alcotest.bool "later write wins" true
              (Mac_addr.equal pkt.Packet.dst (mac 60))
        | _ -> Alcotest.fail "wrong outputs"));
    tc "drop in write_actions clears the pending set" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Write_actions [ Of_action.output 1 ];
               Flow_entry.Goto_table 1;
             ]);
        Flow_table.add (Pipeline.table p 1) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Write_actions [ Of_action.Drop ] ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.int "nothing out" 0 (List.length r.Pipeline.outputs));
    tc "miss in later table reported" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any [ Flow_entry.Goto_table 1 ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.bool "miss" true r.Pipeline.table_miss);
    tc "select group picks one bucket, same flow same bucket" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Group_table.add (Pipeline.groups p) ~id:1 Group_table.Select
          [
            { Group_table.weight = 1; actions = [ Of_action.output 1 ] };
            { Group_table.weight = 1; actions = [ Of_action.output 2 ] };
          ];
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry Of_match.any [ Of_action.Group 1 ]);
        let out pkt =
          match (Pipeline.execute p ~now_ns:0 ~in_port:0 pkt).Pipeline.outputs with
          | [ Pipeline.Port (n, _) ] -> n
          | _ -> -1
        in
        let a = out (udp_pkt ~sport:1111 ()) in
        check Alcotest.int "sticky" a (out (udp_pkt ~sport:1111 ()));
        (* different flows should eventually use both buckets *)
        let seen = List.sort_uniq Int.compare (List.init 64 (fun i -> out (udp_pkt ~sport:(2000 + i) ()))) in
        check Alcotest.bool "both used" true (List.length seen = 2));
    tc "flood and controller outputs" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (entry Of_match.any
             [ Of_action.Output Of_action.Flood; Of_action.Output (Of_action.Controller 128) ]);
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        match r.Pipeline.outputs with
        | [ Pipeline.Flood _; Pipeline.Controller (128, _) ] -> ()
        | _ -> Alcotest.fail "wrong outputs");
    tc "counters updated on hits" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Flow_table.add (Pipeline.table p 0) ~now_ns:0 (entry Of_match.any []);
        ignore (Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()));
        ignore (Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()));
        match Flow_table.entries (Pipeline.table p 0) with
        | [ e ] ->
            check Alcotest.int "2 packets" 2 e.Flow_entry.packets;
            check Alcotest.bool "bytes counted" true (e.Flow_entry.bytes > 0)
        | _ -> Alcotest.fail "one entry expected");
    tc "flow_hash ignores non-5-tuple fields" (fun () ->
        let base = udp_pkt () in
        let f1 = Packet.Fields.of_packet base in
        let f2 = Packet.Fields.of_packet { base with Packet.dst = mac 77 } in
        check Alcotest.int "same hash" (Pipeline.flow_hash f1) (Pipeline.flow_hash f2));
  ]

let suite =
  [
    ("openflow.match", match_tests);
    ("openflow.action", action_tests);
    ("openflow.flow_table", flow_table_tests);
    ("openflow.group", group_tests);
    ("openflow.pipeline", pipeline_tests);
  ]
