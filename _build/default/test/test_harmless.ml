open Simnet
open Ethswitch
open Openflow

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

module H = Harmless

(* ---- Port map ---- *)

let ports_gen =
  QCheck2.Gen.map
    (fun l -> List.sort_uniq Int.compare l)
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 40) (QCheck2.Gen.int_bound 100))

let port_map_tests =
  [
    tc "defaults start at vlan 101" (fun () ->
        let m = H.Port_map.make ~access_ports:[ 0; 1; 2 ] () in
        check Alcotest.(option int) "p0" (Some 101) (H.Port_map.vid_of_access_port m 0);
        check Alcotest.(option int) "p2" (Some 103) (H.Port_map.vid_of_access_port m 2);
        check Alcotest.(option int) "back" (Some 2) (H.Port_map.access_port_of_vid m 103);
        check Alcotest.(option int) "unknown vid" None (H.Port_map.access_port_of_vid m 104));
    tc "non-contiguous ports map in order" (fun () ->
        let m = H.Port_map.make ~access_ports:[ 5; 9; 2 ] () in
        (* order given, not sorted: 5->101, 9->102, 2->103 *)
        check Alcotest.(option int) "5" (Some 101) (H.Port_map.vid_of_access_port m 5);
        check Alcotest.(option int) "9" (Some 102) (H.Port_map.vid_of_access_port m 9);
        check Alcotest.(option int) "2" (Some 103) (H.Port_map.vid_of_access_port m 2);
        check Alcotest.(option int) "logical 1 is port 9" (Some 9)
          (H.Port_map.access_port_of_logical m 1));
    tc "invalid configurations rejected" (fun () ->
        let reject f = try ignore (f ()); false with Invalid_argument _ -> true in
        check Alcotest.bool "empty" true
          (reject (fun () -> H.Port_map.make ~access_ports:[] ()));
        check Alcotest.bool "dup" true
          (reject (fun () -> H.Port_map.make ~access_ports:[ 1; 1 ] ()));
        check Alcotest.bool "vlan 1" true
          (reject (fun () -> H.Port_map.make ~base_vid:1 ~access_ports:[ 0 ] ()));
        check Alcotest.bool "overflow" true
          (reject (fun () -> H.Port_map.make ~base_vid:4094 ~access_ports:[ 0; 1 ] ())));
    prop "bijection between ports, vids and logicals" ports_gen
      ~print:(fun l -> String.concat "," (List.map string_of_int l))
      (fun ports ->
        match H.Port_map.make ~access_ports:ports () with
        | exception Invalid_argument _ -> ports = []
        | m ->
            List.for_all
              (fun p ->
                match H.Port_map.vid_of_access_port m p with
                | Some v -> (
                    H.Port_map.access_port_of_vid m v = Some p
                    &&
                    match H.Port_map.logical_of_access_port m p with
                    | Some l ->
                        H.Port_map.access_port_of_logical m l = Some p
                        && H.Port_map.vid_of_logical m l = Some v
                        && H.Port_map.logical_of_vid m v = Some l
                    | None -> false)
                | None -> false)
              ports);
  ]

(* ---- Translator ---- *)

let translator_tests =
  [
    tc "two rules per managed port" (fun () ->
        let m = H.Port_map.make ~access_ports:[ 0; 1; 2; 3 ] () in
        check Alcotest.int "count" 8 (List.length (H.Translator.rules m));
        check Alcotest.int "ports" 5 (H.Translator.required_ports m));
    tc "trunk->patch pops, patch->trunk pushes" (fun () ->
        let engine = Engine.create () in
        let m = H.Port_map.make ~access_ports:[ 0; 1 ] () in
        let ss1 =
          Softswitch.Soft_switch.create engine ~name:"ss1" ~ports:3
            ~miss:Softswitch.Soft_switch.Drop_on_miss ()
        in
        H.Translator.install ss1 m;
        let pkt vid =
          Netpkt.Packet.udp
            ~vlans:(match vid with None -> [] | Some v -> [ Netpkt.Vlan.make v ])
            ~dst:(Netpkt.Mac_addr.make_local 2)
            ~src:(Netpkt.Mac_addr.make_local 1)
            ~ip_src:(Netpkt.Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Netpkt.Ipv4_addr.of_string "10.0.0.2")
            ~src_port:1 ~dst_port:2 "x"
        in
        (* vlan 102 arriving on the trunk goes to patch port 2, untagged *)
        let r, _ =
          Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:0
            (pkt (Some 102))
        in
        (match r.Pipeline.outputs with
        | [ Pipeline.Port (2, p) ] ->
            check Alcotest.(option int) "popped" None (Netpkt.Packet.outer_vid p)
        | _ -> Alcotest.fail "wrong trunk->patch behaviour");
        (* untagged from patch port 1 hairpins to the trunk with vlan 101 *)
        let r, _ =
          Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:1 (pkt None)
        in
        match r.Pipeline.outputs with
        | [ Pipeline.Port (0, p) ] ->
            check Alcotest.(option int) "pushed" (Some 101) (Netpkt.Packet.outer_vid p)
        | _ -> Alcotest.fail "wrong patch->trunk behaviour");
    tc "unknown vlan on trunk misses (drop)" (fun () ->
        let engine = Engine.create () in
        let m = H.Port_map.make ~access_ports:[ 0 ] () in
        let ss1 =
          Softswitch.Soft_switch.create engine ~name:"ss1" ~ports:2
            ~miss:Softswitch.Soft_switch.Drop_on_miss ()
        in
        H.Translator.install ss1 m;
        let pkt =
          Netpkt.Packet.udp ~vlans:[ Netpkt.Vlan.make 999 ]
            ~dst:(Netpkt.Mac_addr.make_local 2)
            ~src:(Netpkt.Mac_addr.make_local 1)
            ~ip_src:(Netpkt.Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Netpkt.Ipv4_addr.of_string "10.0.0.2")
            ~src_port:1 ~dst_port:2 "x"
        in
        let r, _ = Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:0 pkt in
        check Alcotest.bool "miss" true r.Pipeline.table_miss;
        check Alcotest.int "no outputs" 0 (List.length r.Pipeline.outputs));
  ]

(* ---- Manager ---- *)

let manager_rig ?(ports = 5) vendor =
  let engine = Engine.create () in
  let sw = Legacy_switch.create engine ~name:"legacy" ~ports () in
  let device = Mgmt.Device.create ~switch:sw ~vendor () in
  (engine, sw, device)

let manager_tests =
  [
    tc "provision configures, verifies and builds the sandwich" (fun () ->
        let engine, sw, device = manager_rig Mgmt.Device.Cisco_like in
        match
          H.Manager.provision engine ~device ~trunk_port:4
            ~access_ports:[ 0; 1; 2; 3 ] ()
        with
        | Error msg -> Alcotest.fail msg
        | Ok prov ->
            check Alcotest.bool "port 0 access 101" true
              (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 101);
            (match Legacy_switch.port_mode sw ~port:4 with
            | Port_config.Trunk { native = None; allowed = Port_config.Only vids } ->
                check Alcotest.(list int) "trunk vlans" [ 101; 102; 103; 104 ]
                  (List.sort Int.compare vids)
            | _ -> Alcotest.fail "trunk not configured");
            check Alcotest.int "ss2 ports" 4
              (Node.port_count (Softswitch.Soft_switch.node prov.H.Manager.ss2));
            check Alcotest.int "ss1 rules" 8
              (Flow_table.size
                 (Pipeline.table (Softswitch.Soft_switch.pipeline prov.H.Manager.ss1) 0));
            check Alcotest.bool "steps logged" true
              (List.length prov.H.Manager.report.H.Manager.steps >= 5));
    tc "eos devices provision identically" (fun () ->
        let engine, sw, device = manager_rig Mgmt.Device.Arista_like in
        match
          H.Manager.provision engine ~device ~trunk_port:4 ~access_ports:[ 0; 1 ] ()
        with
        | Error msg -> Alcotest.fail msg
        | Ok _ ->
            check Alcotest.bool "configured" true
              (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 101));
    tc "unmanaged ports keep their configuration" (fun () ->
        let engine, sw, device = manager_rig ~ports:6 Mgmt.Device.Cisco_like in
        Legacy_switch.set_port_mode sw ~port:3 (Port_config.Access 50);
        (match
           H.Manager.provision engine ~device ~trunk_port:5 ~access_ports:[ 0; 1 ] ()
         with
        | Error msg -> Alcotest.fail msg
        | Ok _ -> ());
        check Alcotest.bool "port 3 untouched" true
          (Legacy_switch.port_mode sw ~port:3 = Port_config.Access 50));
    tc "trunk overlapping access ports rejected" (fun () ->
        let engine, _, device = manager_rig Mgmt.Device.Cisco_like in
        match H.Manager.provision engine ~device ~trunk_port:0 ~access_ports:[ 0; 1 ] () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should fail");
    tc "nonexistent ports rejected" (fun () ->
        let engine, _, device = manager_rig Mgmt.Device.Cisco_like in
        match H.Manager.provision engine ~device ~trunk_port:4 ~access_ports:[ 0; 17 ] () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should fail");
    tc "vid overflow rejected" (fun () ->
        let engine, _, device = manager_rig Mgmt.Device.Cisco_like in
        match
          H.Manager.provision engine ~device ~trunk_port:4 ~access_ports:[ 0; 1 ]
            ~base_vid:4094 ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should fail");
    tc "deprovision restores the previous configuration" (fun () ->
        let engine, sw, device = manager_rig Mgmt.Device.Cisco_like in
        let before = Mgmt.Device.running_config_text device in
        (match
           H.Manager.provision engine ~device ~trunk_port:4 ~access_ports:[ 0; 1; 2; 3 ] ()
         with
        | Error msg -> Alcotest.fail msg
        | Ok _ -> ());
        check Alcotest.bool "changed" false
          (String.equal before (Mgmt.Device.running_config_text device));
        (match H.Manager.deprovision device with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
        check Alcotest.string "restored" before (Mgmt.Device.running_config_text device);
        check Alcotest.bool "port 0 default" true
          (Legacy_switch.port_mode sw ~port:0 = Port_config.default));
  ]

(* ---- Deployment conventions ---- *)

let deployment_tests =
  [
    tc "host addressing conventions" (fun () ->
        check Alcotest.string "ip" "10.0.0.3"
          (Netpkt.Ipv4_addr.to_string (H.Deployment.host_ip 2));
        check Alcotest.bool "mac" true
          (Netpkt.Mac_addr.equal (H.Deployment.host_mac 2) (Netpkt.Mac_addr.make_local 3)));
    tc "harmless deployment exposes ss2 as controller switch" (fun () ->
        let engine = Engine.create () in
        match H.Deployment.build_harmless engine ~num_hosts:3 () with
        | Error msg -> Alcotest.fail msg
        | Ok d ->
            check Alcotest.int "hosts" 3 (H.Deployment.num_hosts d);
            let sw = H.Deployment.controller_switch d in
            check Alcotest.int "ss2 ports = hosts" 3
              (Node.port_count (Softswitch.Soft_switch.node sw)));
    tc "legacy-only deployment rejects controller_switch" (fun () ->
        let engine = Engine.create () in
        let d = H.Deployment.build_legacy_only engine ~num_hosts:2 () in
        check Alcotest.bool "raises" true
          (try ignore (H.Deployment.controller_switch d); false
           with Invalid_argument _ -> true));
  ]

(* ---- transparency as a property over random workloads ---- *)

let traffic_gen =
  (* a list of (src, dst, sport, dport, payload-length) sends *)
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 12)
    (QCheck2.Gen.map
       (fun (((src, dst), (sport, dport)), len) -> (src, dst, sport, dport, len))
       (QCheck2.Gen.pair
          (QCheck2.Gen.pair
             (QCheck2.Gen.pair (QCheck2.Gen.int_bound 3) (QCheck2.Gen.int_bound 3))
             (QCheck2.Gen.pair (QCheck2.Gen.int_range 1024 60000)
                (QCheck2.Gen.int_range 1 60000)))
          (QCheck2.Gen.int_bound 100)))

let transparency_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random workloads are transparency-preserving"
         ~count:6
         ~print:(fun sends ->
           String.concat ";"
             (List.map
                (fun (s, d, sp, dp, len) -> Printf.sprintf "%d>%d:%d>%d(%d)" s d sp dp len)
                sends))
         traffic_gen
         (fun sends ->
           let scenario =
             {
               H.Transparency.num_hosts = 4;
               apps = (fun () -> [ Sdnctl.L2_learning.create () ]);
               traffic =
                 (fun deployment ->
                   let engine = deployment.H.Deployment.engine in
                   List.iteri
                     (fun i (src, dst, sport, dport, len) ->
                       if src <> dst then
                         (* space sends beyond the control-channel round
                            trip so reactive flow installs settle between
                            packets: transparency is a steady-state
                            property; transient flood duplication is
                            timing-dependent in both deployments *)
                         Engine.schedule_after engine (Sim_time.ms (2 * (i + 1)))
                           (fun () ->
                             Host.send
                               (H.Deployment.host deployment src)
                               (Netpkt.Packet.udp
                                  ~dst:(H.Deployment.host_mac dst)
                                  ~src:(H.Deployment.host_mac src)
                                  ~ip_src:(H.Deployment.host_ip src)
                                  ~ip_dst:(H.Deployment.host_ip dst)
                                  ~src_port:sport ~dst_port:dport
                                  (String.make len 'q'))))
                     sends);
               warmup = Sim_time.ms 5;
               duration = Sim_time.ms 60;
             }
           in
           match H.Transparency.run scenario with
           | Ok verdict -> verdict.H.Transparency.equivalent
           | Error _ -> false));
  ]

let suite =
  [
    ("harmless.port_map", port_map_tests);
    ("harmless.translator", translator_tests);
    ("harmless.manager", manager_tests);
    ("harmless.deployment", deployment_tests);
    ("harmless.transparency_property", transparency_property_tests);
  ]
