open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* Two hosts over a configurable link. *)
let pair ?(cfg = Link.gige) () =
  let engine = Engine.create () in
  let a =
    Host.create engine ~name:"a" ~mac:(Mac_addr.make_local 1)
      ~ip:(Ipv4_addr.of_string "10.0.0.1") ()
  in
  let b =
    Host.create engine ~name:"b" ~mac:(Mac_addr.make_local 2)
      ~ip:(Ipv4_addr.of_string "10.0.0.2") ()
  in
  ignore (Link.connect ~a_to_b:cfg ~b_to_a:cfg (Host.node a, 0) (Host.node b, 0));
  (engine, a, b)

let transfer ?cfg payload =
  let engine, a, b = pair ?cfg () in
  let server = Tcp_session.listen b ~port:80 in
  let client =
    Tcp_session.connect a ~dst_mac:(Host.mac b) ~dst_ip:(Host.ip b) ~dst_port:80 ()
  in
  Tcp_session.send client payload;
  Tcp_session.close client;
  Engine.run engine ~max_events:5_000_000;
  (client, server)

let session_tests =
  [
    tc "handshake establishes both ends" (fun () ->
        let engine, a, b = pair () in
        let server = Tcp_session.listen b ~port:80 in
        let client =
          Tcp_session.connect a ~dst_mac:(Host.mac b) ~dst_ip:(Host.ip b)
            ~dst_port:80 ()
        in
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        check Alcotest.bool "client up" true
          (Tcp_session.state client = Tcp_session.Established
          || Tcp_session.state client = Tcp_session.Closed);
        check Alcotest.bool "server past listen" true
          (Tcp_session.state server <> Tcp_session.Listening));
    tc "small transfer delivers exactly" (fun () ->
        let _, server = transfer "hello, harmless world" in
        check Alcotest.string "delivered" "hello, harmless world"
          (Tcp_session.received server));
    tc "multi-segment transfer (100 KB) delivers exactly" (fun () ->
        let payload = String.init 100_000 (fun i -> Char.chr (i land 0xff)) in
        let client, server = transfer payload in
        check Alcotest.int "length" 100_000 (String.length (Tcp_session.received server));
        check Alcotest.bool "content" true
          (String.equal payload (Tcp_session.received server));
        check Alcotest.int "all acked" 100_000 (Tcp_session.bytes_acked client);
        check Alcotest.bool "both closed" true
          (Tcp_session.state client = Tcp_session.Closed
          && Tcp_session.state server = Tcp_session.Closed));
    tc "no retransmissions on a clean link" (fun () ->
        let client, server = transfer (String.make 50_000 'x') in
        check Alcotest.int "client rtx" 0 (Tcp_session.retransmissions client);
        check Alcotest.int "server rtx" 0 (Tcp_session.retransmissions server));
    tc "5% loss: transfer still exact, with retransmissions" (fun () ->
        let cfg = Link.config ~loss:0.05 ~impair_seed:17 () in
        let payload = String.init 80_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
        let client, server = transfer ~cfg payload in
        check Alcotest.bool "content exact" true
          (String.equal payload (Tcp_session.received server));
        check Alcotest.bool "recovered via rtx" true
          (Tcp_session.retransmissions client > 0));
    tc "20% loss: still exact" (fun () ->
        let cfg = Link.config ~loss:0.2 ~impair_seed:23 () in
        let payload = String.make 20_000 'z' in
        let _, server = transfer ~cfg payload in
        check Alcotest.bool "content exact" true
          (String.equal payload (Tcp_session.received server)));
    tc "send after close rejected" (fun () ->
        let engine, a, b = pair () in
        ignore (Tcp_session.listen b ~port:80);
        let client =
          Tcp_session.connect a ~dst_mac:(Host.mac b) ~dst_ip:(Host.ip b)
            ~dst_port:80 ()
        in
        Tcp_session.send client "data";
        Tcp_session.close client;
        Engine.run engine ~max_events:100_000;
        check Alcotest.bool "raises" true
          (try Tcp_session.send client "more"; false
           with Invalid_argument _ -> true));
    tc "transfer through HARMLESS with a lossy access link" (fun () ->
        let engine = Engine.create () in
        let lossy = Link.config ~loss:0.05 ~impair_seed:31 () in
        let d =
          match
            Harmless.Deployment.build_harmless engine ~num_hosts:2 ~host_link:lossy ()
          with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Experiments_lib.Common.proactive_l2 ~num_hosts:2 ]);
        let server = Tcp_session.listen (Harmless.Deployment.host d 1) ~port:80 in
        let client =
          Tcp_session.connect
            (Harmless.Deployment.host d 0)
            ~dst_mac:(Harmless.Deployment.host_mac 1)
            ~dst_ip:(Harmless.Deployment.host_ip 1)
            ~dst_port:80 ()
        in
        let payload = String.init 60_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
        Tcp_session.send client payload;
        Tcp_session.close client;
        Engine.run engine ~max_events:5_000_000;
        check Alcotest.bool "exact through the fabric" true
          (String.equal payload (Tcp_session.received server));
        check Alcotest.bool "losses actually happened" true
          (Tcp_session.retransmissions client > 0));
  ]

let bidirectional_tests =
  [
    tc "both directions carry data on one connection" (fun () ->
        let engine, a, b = pair () in
        let server = Tcp_session.listen b ~port:80 in
        let client =
          Tcp_session.connect a ~dst_mac:(Host.mac b) ~dst_ip:(Host.ip b)
            ~dst_port:80 ()
        in
        let up = String.init 30_000 (fun i -> Char.chr ((i * 3) land 0xff)) in
        let down = String.init 45_000 (fun i -> Char.chr ((i * 5) land 0xff)) in
        Tcp_session.send client up;
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 2));
        Tcp_session.send server down;
        Engine.run engine ~max_events:1_000_000;
        Tcp_session.close client;
        Engine.run engine ~max_events:1_000_000;
        check Alcotest.bool "upstream exact" true
          (String.equal up (Tcp_session.received server));
        check Alcotest.bool "downstream exact" true
          (String.equal down (Tcp_session.received client));
        check Alcotest.bool "both closed" true
          (Tcp_session.state client = Tcp_session.Closed
          && Tcp_session.state server = Tcp_session.Closed));
    tc "bidirectional under loss stays exact" (fun () ->
        let cfg = Link.config ~loss:0.05 ~impair_seed:47 () in
        let engine, a, b = pair ~cfg () in
        let server = Tcp_session.listen b ~port:80 in
        let client =
          Tcp_session.connect a ~dst_mac:(Host.mac b) ~dst_ip:(Host.ip b)
            ~dst_port:80 ()
        in
        let up = String.make 15_000 'u' and down = String.make 15_000 'd' in
        Tcp_session.send client up;
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 2));
        Tcp_session.send server down;
        Engine.run engine ~max_events:2_000_000;
        Tcp_session.close client;
        Engine.run engine ~max_events:2_000_000;
        check Alcotest.bool "upstream exact" true
          (String.equal up (Tcp_session.received server));
        check Alcotest.bool "downstream exact" true
          (String.equal down (Tcp_session.received client)));
  ]

let suite =
  [ ("tcp_session", session_tests); ("tcp_session.bidir", bidirectional_tests) ]
