open Simnet
open Ethswitch
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---- MAC table ---- *)

let mac i = Mac_addr.make_local i

let mac_table_tests =
  [
    tc "learn then lookup" (fun () ->
        let t = Mac_table.create () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:3;
        check Alcotest.(option int) "found" (Some 3)
          (Mac_table.lookup t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1)));
    tc "vlan separates address spaces" (fun () ->
        let t = Mac_table.create () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:3;
        check Alcotest.(option int) "other vlan" None
          (Mac_table.lookup t ~now:Sim_time.zero ~vlan:2 ~mac:(mac 1)));
    tc "relearning moves the port" (fun () ->
        let t = Mac_table.create () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:3;
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:7;
        check Alcotest.(option int) "moved" (Some 7)
          (Mac_table.lookup t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1));
        check Alcotest.int "one entry" 1 (Mac_table.entry_count t));
    tc "aging expires entries" (fun () ->
        let t = Mac_table.create ~aging:(Sim_time.s 10) () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:3;
        let later = Sim_time.of_ns (Sim_time.s 11) in
        check Alcotest.(option int) "expired" None
          (Mac_table.lookup t ~now:later ~vlan:1 ~mac:(mac 1));
        check Alcotest.int "removed" 0 (Mac_table.entry_count t));
    tc "refresh resets aging" (fun () ->
        let t = Mac_table.create ~aging:(Sim_time.s 10) () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:3;
        let mid = Sim_time.of_ns (Sim_time.s 8) in
        Mac_table.learn t ~now:mid ~vlan:1 ~mac:(mac 1) ~port:3;
        let later = Sim_time.of_ns (Sim_time.s 15) in
        check Alcotest.(option int) "still there" (Some 3)
          (Mac_table.lookup t ~now:later ~vlan:1 ~mac:(mac 1)));
    tc "capacity evicts the oldest" (fun () ->
        let t = Mac_table.create ~capacity:3 () in
        for i = 1 to 3 do
          Mac_table.learn t ~now:(Sim_time.of_ns i) ~vlan:1 ~mac:(mac i) ~port:i
        done;
        Mac_table.learn t ~now:(Sim_time.of_ns 10) ~vlan:1 ~mac:(mac 4) ~port:4;
        check Alcotest.int "still 3" 3 (Mac_table.entry_count t);
        check Alcotest.(option int) "oldest gone" None
          (Mac_table.lookup t ~now:(Sim_time.of_ns 10) ~vlan:1 ~mac:(mac 1));
        check Alcotest.(option int) "newest present" (Some 4)
          (Mac_table.lookup t ~now:(Sim_time.of_ns 10) ~vlan:1 ~mac:(mac 4)));
    tc "multicast sources not learned" (fun () ->
        let t = Mac_table.create () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:Mac_addr.broadcast ~port:1;
        check Alcotest.int "ignored" 0 (Mac_table.entry_count t));
    tc "flush_port forgets selectively" (fun () ->
        let t = Mac_table.create () in
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1) ~port:1;
        Mac_table.learn t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 2) ~port:2;
        Mac_table.flush_port t ~port:1;
        check Alcotest.(option int) "gone" None
          (Mac_table.lookup t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 1));
        check Alcotest.(option int) "kept" (Some 2)
          (Mac_table.lookup t ~now:Sim_time.zero ~vlan:1 ~mac:(mac 2)));
  ]

(* ---- Port configuration ---- *)

let port_config_tests =
  [
    tc "access ingress classification" (fun () ->
        let m = Port_config.Access 5 in
        check Alcotest.(option int) "untagged" (Some 5)
          (Port_config.classify_ingress m ~tag_vid:None);
        check Alcotest.(option int) "matching tag" (Some 5)
          (Port_config.classify_ingress m ~tag_vid:(Some 5));
        check Alcotest.(option int) "foreign tag dropped" None
          (Port_config.classify_ingress m ~tag_vid:(Some 6)));
    tc "trunk ingress classification" (fun () ->
        let m =
          Port_config.Trunk { native = Some 1; allowed = Port_config.Only [ 10; 20 ] }
        in
        check Alcotest.(option int) "untagged -> native" (Some 1)
          (Port_config.classify_ingress m ~tag_vid:None);
        check Alcotest.(option int) "allowed" (Some 10)
          (Port_config.classify_ingress m ~tag_vid:(Some 10));
        check Alcotest.(option int) "not allowed" None
          (Port_config.classify_ingress m ~tag_vid:(Some 30)));
    tc "trunk without native drops untagged" (fun () ->
        let m = Port_config.Trunk { native = None; allowed = Port_config.All } in
        check Alcotest.(option int) "dropped" None
          (Port_config.classify_ingress m ~tag_vid:None));
    tc "egress encapsulation" (fun () ->
        let access = Port_config.Access 5 in
        let trunk =
          Port_config.Trunk { native = Some 1; allowed = Port_config.Only [ 10 ] }
        in
        check Alcotest.bool "access member untagged" true
          (Port_config.egress_encap access ~vlan:5 = Some `Untagged);
        check Alcotest.bool "access non-member" true
          (Port_config.egress_encap access ~vlan:6 = None);
        check Alcotest.bool "trunk tags" true
          (Port_config.egress_encap trunk ~vlan:10 = Some (`Tagged 10));
        check Alcotest.bool "trunk native untagged" true
          (Port_config.egress_encap trunk ~vlan:1 = Some `Untagged);
        check Alcotest.bool "trunk non-member" true
          (Port_config.egress_encap trunk ~vlan:99 = None));
    tc "disabled port is inert" (fun () ->
        check Alcotest.(option int) "ingress" None
          (Port_config.classify_ingress Port_config.Disabled ~tag_vid:None);
        check Alcotest.bool "egress" true
          (Port_config.egress_encap Port_config.Disabled ~vlan:1 = None));
  ]

(* ---- The switch dataplane ---- *)

(* A port harness: stub nodes recording what each port delivers. *)
let switch_rig ~ports =
  let engine = Engine.create () in
  let sw = Legacy_switch.create engine ~name:"sw" ~ports () in
  let received = Array.make ports [] in
  let stubs =
    Array.init ports (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "stub%d" i) ~ports:1 in
        Node.set_handler n (fun _ ~in_port:_ pkt ->
            received.(i) <- pkt :: received.(i));
        ignore (Link.connect (n, 0) (Legacy_switch.node sw, i));
        n)
  in
  let send i pkt = Node.transmit stubs.(i) ~port:0 pkt in
  (engine, sw, send, received)

let udp_pkt ?vlans ~from_mac ~to_mac () =
  Packet.udp ?vlans ~dst:to_mac ~src:from_mac
    ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
    ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2 "test data"

let switch_tests =
  [
    tc "floods unknown destination, then forwards directly" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:4 in
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:(mac 2) ());
        Engine.run engine;
        check Alcotest.int "p1" 1 (List.length received.(1));
        check Alcotest.int "p2" 1 (List.length received.(2));
        check Alcotest.int "p0 nothing" 0 (List.length received.(0));
        send 1 (udp_pkt ~from_mac:(mac 2) ~to_mac:(mac 1) ());
        Engine.run engine;
        check Alcotest.int "reply to p0 only" 1 (List.length received.(0));
        check Alcotest.int "p2 unchanged" 1 (List.length received.(2));
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:(mac 2) ());
        Engine.run engine;
        check Alcotest.int "direct" 2 (List.length received.(1));
        check Alcotest.int "fwd counter" 2
          (Stats.Counter.get (Legacy_switch.counters sw) "fwd"));
    tc "vlan isolation between access ports" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:4 in
        Legacy_switch.set_port_mode sw ~port:0 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:1 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:2 (Port_config.Access 20);
        Legacy_switch.set_port_mode sw ~port:3 (Port_config.Access 20);
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        check Alcotest.int "same vlan sees it" 1 (List.length received.(1));
        check Alcotest.int "other vlan isolated" 0 (List.length received.(2));
        check Alcotest.int "other vlan isolated'" 0 (List.length received.(3)));
    tc "trunk tags egress and untags ingress" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:3 in
        Legacy_switch.set_port_mode sw ~port:0 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:1 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:2
          (Port_config.Trunk { native = None; allowed = Port_config.Only [ 10 ] });
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        (match received.(2) with
        | [ pkt ] ->
            check Alcotest.(option int) "tagged 10" (Some 10) (Packet.outer_vid pkt)
        | l -> Alcotest.failf "trunk got %d" (List.length l));
        send 2
          (udp_pkt ~vlans:[ Vlan.make 10 ] ~from_mac:(mac 3)
             ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        match received.(1) with
        | pkt :: _ ->
            check Alcotest.(option int) "untagged" None (Packet.outer_vid pkt)
        | [] -> Alcotest.fail "access port got nothing");
    tc "trunk drops disallowed vlans" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:2 in
        Legacy_switch.set_port_mode sw ~port:0
          (Port_config.Trunk { native = None; allowed = Port_config.Only [ 10 ] });
        Legacy_switch.set_port_mode sw ~port:1 (Port_config.Access 20);
        send 0
          (udp_pkt ~vlans:[ Vlan.make 20 ] ~from_mac:(mac 1)
             ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        check Alcotest.int "dropped" 0 (List.length received.(1));
        check Alcotest.int "counted" 1
          (Stats.Counter.get (Legacy_switch.counters sw) "drop_ingress_vlan"));
    tc "tagged frame on access port with foreign vid dropped" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:2 in
        Legacy_switch.set_port_mode sw ~port:0 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:1 (Port_config.Access 10);
        send 0
          (udp_pkt ~vlans:[ Vlan.make 99 ] ~from_mac:(mac 1)
             ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        check Alcotest.int "dropped" 0 (List.length received.(1)));
    tc "frame to the port it lives on is filtered" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:2 in
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:(mac 9) ());
        send 0 (udp_pkt ~from_mac:(mac 2) ~to_mac:(mac 9) ());
        Engine.run engine;
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:(mac 2) ());
        Engine.run engine;
        check Alcotest.int "same-port filtered" 1
          (Stats.Counter.get (Legacy_switch.counters sw) "drop_same_port");
        check Alcotest.int "nothing reflected" 0 (List.length received.(0)));
    tc "reconfiguration flushes learned entries" (fun () ->
        let engine, sw, send, _received = switch_rig ~ports:2 in
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:(mac 9) ());
        Engine.run engine;
        check Alcotest.int "learned" 1
          (Mac_table.entry_count (Legacy_switch.mac_table sw));
        Legacy_switch.set_port_mode sw ~port:0 (Port_config.Access 42);
        check Alcotest.int "flushed" 0
          (Mac_table.entry_count (Legacy_switch.mac_table sw)));
    tc "vlans_in_use reflects configuration" (fun () ->
        let _, sw, _, _ = switch_rig ~ports:3 in
        Legacy_switch.set_port_mode sw ~port:0 (Port_config.Access 10);
        Legacy_switch.set_port_mode sw ~port:1
          (Port_config.Trunk { native = Some 1; allowed = Port_config.Only [ 10; 30 ] });
        Legacy_switch.set_port_mode sw ~port:2 Port_config.Disabled;
        check Alcotest.(list int) "vlans" [ 1; 10; 30 ]
          (Legacy_switch.vlans_in_use sw));
    tc "disabled port neither sends nor receives" (fun () ->
        let engine, sw, send, received = switch_rig ~ports:3 in
        Legacy_switch.set_port_mode sw ~port:2 Port_config.Disabled;
        send 0 (udp_pkt ~from_mac:(mac 1) ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        check Alcotest.int "p1 flooded" 1 (List.length received.(1));
        check Alcotest.int "p2 silent" 0 (List.length received.(2));
        send 2 (udp_pkt ~from_mac:(mac 3) ~to_mac:Mac_addr.broadcast ());
        Engine.run engine;
        check Alcotest.int "ingress dropped" 1 (List.length received.(1)));
  ]

let suite =
  [
    ("ethswitch.mac_table", mac_table_tests);
    ("ethswitch.port_config", port_config_tests);
    ("ethswitch.switch", switch_tests);
  ]
