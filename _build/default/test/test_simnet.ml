open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- Time ---- *)

let time_tests =
  [
    tc "unit conversions" (fun () ->
        check Alcotest.int "us" 1_000 (Sim_time.us 1);
        check Alcotest.int "ms" 1_000_000 (Sim_time.ms 1);
        check Alcotest.int "s" 1_000_000_000 (Sim_time.s 1));
    tc "negative instants rejected" (fun () ->
        check Alcotest.bool "of_ns" true
          (try ignore (Sim_time.of_ns (-1)); false with Invalid_argument _ -> true);
        check Alcotest.bool "add" true
          (try ignore (Sim_time.add Sim_time.zero (-5)); false
           with Invalid_argument _ -> true));
    tc "of_seconds rounds" (fun () ->
        check Alcotest.int "1.5us" 1_500 (Sim_time.of_seconds 1.5e-6));
    tc "diff is subtraction" (fun () ->
        let a = Sim_time.of_ns 500 and b = Sim_time.of_ns 200 in
        check Alcotest.int "diff" 300 (Sim_time.diff a b);
        check Alcotest.int "neg" (-300) (Sim_time.diff b a));
  ]

(* ---- Event queue ---- *)

let eq_tests =
  [
    tc "pops in time order" (fun () ->
        let q = Event_queue.create () in
        List.iter
          (fun t -> Event_queue.push q (Sim_time.of_ns t) t)
          [ 50; 10; 30; 20; 40 ];
        let order = ref [] in
        let rec drain () =
          match Event_queue.pop q with
          | Some (_, v) ->
              order := v :: !order;
              drain ()
          | None -> ()
        in
        drain ();
        check Alcotest.(list int) "sorted" [ 10; 20; 30; 40; 50 ] (List.rev !order));
    tc "fifo among equal timestamps" (fun () ->
        let q = Event_queue.create () in
        List.iter (fun v -> Event_queue.push q (Sim_time.of_ns 7) v) [ 1; 2; 3; 4 ];
        let out = List.init 4 (fun _ ->
            match Event_queue.pop q with Some (_, v) -> v | None -> -1) in
        check Alcotest.(list int) "fifo" [ 1; 2; 3; 4 ] out);
    prop "qcheck: always non-decreasing pop order"
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 200)
         (QCheck2.Gen.int_bound 10_000))
      ~print:(fun l -> String.concat "," (List.map string_of_int l))
      (fun times ->
        let q = Event_queue.create () in
        List.iter (fun t -> Event_queue.push q (Sim_time.of_ns t) t) times;
        let rec drain last =
          match Event_queue.pop q with
          | None -> true
          | Some (t, _) -> Sim_time.to_ns t >= last && drain (Sim_time.to_ns t)
        in
        drain 0);
  ]

(* ---- Engine ---- *)

let engine_tests =
  [
    tc "clock advances to event times" (fun () ->
        let e = Engine.create () in
        let seen = ref [] in
        Engine.schedule_after e 100 (fun () -> seen := 100 :: !seen);
        Engine.schedule_after e 50 (fun () -> seen := 50 :: !seen);
        Engine.run e;
        check Alcotest.(list int) "order" [ 50; 100 ] (List.rev !seen);
        check Alcotest.int "clock" 100 (Sim_time.to_ns (Engine.now e)));
    tc "until caps the clock and preserves later events" (fun () ->
        let e = Engine.create () in
        let fired = ref false in
        Engine.schedule_after e 1_000 (fun () -> fired := true);
        Engine.run e ~until:(Sim_time.of_ns 500);
        check Alcotest.bool "not yet" false !fired;
        check Alcotest.int "clock = until" 500 (Sim_time.to_ns (Engine.now e));
        Engine.run e;
        check Alcotest.bool "eventually" true !fired);
    tc "events can schedule events" (fun () ->
        let e = Engine.create () in
        let count = ref 0 in
        let rec tick () =
          incr count;
          if !count < 10 then Engine.schedule_after e 10 tick
        in
        Engine.schedule_after e 0 tick;
        Engine.run e;
        check Alcotest.int "count" 10 !count;
        check Alcotest.int "executed" 10 (Engine.events_executed e));
    tc "max_events bounds execution" (fun () ->
        let e = Engine.create () in
        for i = 1 to 10 do
          Engine.schedule_after e i (fun () -> ())
        done;
        Engine.run e ~max_events:3;
        check Alcotest.int "pending" 7 (Engine.pending e));
    tc "scheduling in the past rejected" (fun () ->
        let e = Engine.create () in
        Engine.schedule_after e 100 (fun () -> ());
        Engine.run e;
        check Alcotest.bool "past" true
          (try Engine.schedule_at e (Sim_time.of_ns 50) (fun () -> ()); false
           with Invalid_argument _ -> true));
  ]

(* ---- RNG ---- *)

let rng_tests =
  [
    tc "deterministic given a seed" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 100 do
          check Alcotest.int "same" (Rng.int a 1000) (Rng.int b 1000)
        done);
    tc "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref 0 in
        for _ = 1 to 50 do
          if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
        done;
        check Alcotest.bool "mostly different" true (!same < 5));
    prop "int stays in bounds"
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 10_000) (QCheck2.Gen.int_bound 1000))
      ~print:(fun (b, s) -> Printf.sprintf "bound %d seed %d" b s)
      (fun (bound, seed) ->
        let rng = Rng.create seed in
        let ok = ref true in
        for _ = 1 to 50 do
          let v = Rng.int rng bound in
          if v < 0 || v >= bound then ok := false
        done;
        !ok);
    tc "exponential has roughly the right mean" (fun () ->
        let rng = Rng.create 7 in
        let n = 20_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. Rng.exponential rng ~mean:100.0
        done;
        let mean = !sum /. float_of_int n in
        check Alcotest.bool "mean in [95, 105]" true (mean > 95.0 && mean < 105.0));
    tc "zipf skew concentrates mass" (fun () ->
        let rng = Rng.create 3 in
        let z = Rng.Zipf.create ~n:100 ~skew:1.2 in
        let hits = Array.make 100 0 in
        for _ = 1 to 10_000 do
          let i = Rng.Zipf.draw z rng in
          hits.(i) <- hits.(i) + 1
        done;
        check Alcotest.bool "rank0 most popular" true (hits.(0) > hits.(50));
        check Alcotest.bool "rank0 > 10%" true (hits.(0) > 1000));
    tc "zipf zero skew is roughly uniform" (fun () ->
        let rng = Rng.create 3 in
        let z = Rng.Zipf.create ~n:10 ~skew:0.0 in
        let hits = Array.make 10 0 in
        for _ = 1 to 10_000 do
          let i = Rng.Zipf.draw z rng in
          hits.(i) <- hits.(i) + 1
        done;
        Array.iter
          (fun h -> check Alcotest.bool "each ~1000" true (h > 800 && h < 1200))
          hits);
    tc "shuffle preserves elements" (fun () ->
        let rng = Rng.create 5 in
        let a = Array.init 50 Fun.id in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort Int.compare sorted;
        check Alcotest.bool "permutation" true (sorted = Array.init 50 Fun.id));
  ]

(* ---- Stats ---- *)

let stats_tests =
  [
    tc "counter accumulates" (fun () ->
        let c = Stats.Counter.create () in
        Stats.Counter.incr c "a";
        Stats.Counter.incr ~by:4 c "a";
        Stats.Counter.incr c "b";
        check Alcotest.int "a" 5 (Stats.Counter.get c "a");
        check Alcotest.int "b" 1 (Stats.Counter.get c "b");
        check Alcotest.int "absent" 0 (Stats.Counter.get c "zzz"));
    tc "meter computes rates over a window" (fun () ->
        let m = Stats.Meter.create () in
        Stats.Meter.start_window m ~now:Sim_time.zero;
        for _ = 1 to 1000 do
          Stats.Meter.record m ~now:Sim_time.zero ~bytes:100
        done;
        let now = Sim_time.of_ns (Sim_time.ms 1) in
        check (Alcotest.float 1.0) "pps" 1_000_000.0 (Stats.Meter.pps m ~now);
        check (Alcotest.float 1.0) "bps" 800_000_000.0 (Stats.Meter.bps m ~now));
    tc "histogram exact below 64" (fun () ->
        let h = Stats.Histogram.create () in
        List.iter (Stats.Histogram.record h) [ 1; 2; 3; 4; 5 ];
        check Alcotest.int "min" 1 (Stats.Histogram.min h);
        check Alcotest.int "max" 5 (Stats.Histogram.max h);
        check Alcotest.int "p50" 3 (Stats.Histogram.percentile h 50.0);
        check Alcotest.int "p100" 5 (Stats.Histogram.percentile h 100.0));
    tc "histogram p99 ~ right magnitude" (fun () ->
        let h = Stats.Histogram.create () in
        for i = 1 to 1000 do
          Stats.Histogram.record h (i * 100)
        done;
        let p99 = Stats.Histogram.percentile h 99.0 in
        check Alcotest.bool "within 7%" true
          (float_of_int (abs (p99 - 99_000)) /. 99_000.0 < 0.07));
    tc "histogram merge" (fun () ->
        let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
        Stats.Histogram.record a 10;
        Stats.Histogram.record b 1000;
        let m = Stats.Histogram.merge a b in
        check Alcotest.int "count" 2 (Stats.Histogram.count m);
        check Alcotest.int "min" 10 (Stats.Histogram.min m);
        check Alcotest.int "max" 1000 (Stats.Histogram.max m));
    tc "histogram empty percentile rejected" (fun () ->
        let h = Stats.Histogram.create () in
        check Alcotest.bool "raises" true
          (try ignore (Stats.Histogram.percentile h 50.0); false
           with Invalid_argument _ -> true));
    prop "histogram percentile within relative error"
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 300)
         (QCheck2.Gen.int_bound 1_000_000))
      ~print:(fun l -> string_of_int (List.length l))
      (fun samples ->
        let h = Stats.Histogram.create () in
        List.iter (Stats.Histogram.record h) samples;
        let sorted = List.sort Int.compare samples in
        let n = List.length sorted in
        let exact = List.nth sorted ((n - 1) / 2) in
        let approx = Stats.Histogram.percentile h 50.0 in
        (* log-bucketing gives ~6% relative precision *)
        abs (approx - exact) <= Stdlib.max 1 (exact / 10));
  ]

(* ---- Links and nodes ---- *)

let mk_pair () =
  let engine = Engine.create () in
  let a = Node.create engine ~name:"a" ~ports:1 in
  let b = Node.create engine ~name:"b" ~ports:1 in
  (engine, a, b)

let test_packet =
  Packet.udp ~dst:(Mac_addr.make_local 2) ~src:(Mac_addr.make_local 1)
    ~ip_src:(Ipv4_addr.of_string "10.0.0.1") ~ip_dst:(Ipv4_addr.of_string "10.0.0.2")
    ~src_port:1 ~dst_port:2 "payload-12"

let link_tests =
  [
    tc "delivery delay = serialization + propagation" (fun () ->
        let engine, a, b = mk_pair () in
        let cfg =
          Link.config ~bandwidth_bps:1_000_000_000 ~propagation:(Sim_time.us 5) ()
        in
        ignore (Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0));
        let arrival = ref (-1) in
        Node.set_handler b (fun _ ~in_port:_ _ ->
            arrival := Sim_time.to_ns (Engine.now engine));
        Node.transmit a ~port:0 test_packet;
        Engine.run engine;
        (* wire size = 64+4 = wrong; udp payload 10 -> frame 52 -> padded 60+4 = 64B.
           64B at 1G = 512 ns, + 5000 ns propagation. *)
        check Alcotest.int "arrival" 5512 !arrival);
    tc "queue backlog delays consecutive frames" (fun () ->
        let engine, a, b = mk_pair () in
        ignore (Link.connect (a, 0) (b, 0));
        let arrivals = ref [] in
        Node.set_handler b (fun _ ~in_port:_ _ ->
            arrivals := Sim_time.to_ns (Engine.now engine) :: !arrivals);
        Node.transmit a ~port:0 test_packet;
        Node.transmit a ~port:0 test_packet;
        Engine.run engine;
        match List.rev !arrivals with
        | [ t1; t2 ] -> check Alcotest.int "spaced by serialization" 512 (t2 - t1)
        | _ -> Alcotest.fail "expected two deliveries");
    tc "tiny queue tail-drops" (fun () ->
        let engine, a, b = mk_pair () in
        let cfg = Link.config ~queue_bytes:100 () in
        let link = Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0) in
        for _ = 1 to 50 do
          Node.transmit a ~port:0 test_packet
        done;
        Engine.run engine;
        let stats = Link.stats_a_to_b link in
        check Alcotest.bool "drops" true (stats.Link.drops_queue > 0);
        check Alcotest.int "conservation" 50
          (stats.Link.tx_packets + stats.Link.drops_queue));
    tc "mtu enforcement" (fun () ->
        let engine, a, b = mk_pair () in
        let cfg = Link.config ~mtu:100 () in
        let link = Link.connect ~a_to_b:cfg ~b_to_a:cfg (a, 0) (b, 0) in
        let big =
          Packet.udp ~dst:(Mac_addr.make_local 2) ~src:(Mac_addr.make_local 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2
            (String.make 200 'x')
        in
        Node.transmit a ~port:0 big;
        Engine.run engine;
        check Alcotest.int "mtu drop" 1 (Link.stats_a_to_b link).Link.drops_mtu);
    tc "double attach rejected" (fun () ->
        let _, a, b = mk_pair () in
        ignore (Link.connect (a, 0) (b, 0));
        check Alcotest.bool "raises" true
          (try ignore (Link.connect (a, 0) (b, 0)); false
           with Invalid_argument _ -> true));
    tc "transmit unattached counted as drop" (fun () ->
        let _, a, _ = mk_pair () in
        Node.transmit a ~port:0 test_packet;
        check Alcotest.int "drop" 1
          (Stats.Counter.get (Node.counters a) "tx_drop_unattached"));
    tc "disconnect stops delivery" (fun () ->
        let engine, a, b = mk_pair () in
        let link = Link.connect (a, 0) (b, 0) in
        Link.disconnect link;
        Node.transmit a ~port:0 test_packet;
        Engine.run engine;
        check Alcotest.int "b got nothing" 0 (Stats.Counter.get (Node.counters b) "rx"));
    tc "add_ports extends a node" (fun () ->
        let engine = Engine.create () in
        let n = Node.create engine ~name:"x" ~ports:2 in
        let first = Node.add_ports n 3 in
        check Alcotest.int "first new" 2 first;
        check Alcotest.int "total" 5 (Node.port_count n));
  ]

(* ---- Hosts and traffic ---- *)

let host_pair () =
  let engine = Engine.create () in
  let h1 =
    Host.create engine ~name:"h1" ~mac:(Mac_addr.make_local 1)
      ~ip:(Ipv4_addr.of_string "10.0.0.1") ()
  in
  let h2 =
    Host.create engine ~name:"h2" ~mac:(Mac_addr.make_local 2)
      ~ip:(Ipv4_addr.of_string "10.0.0.2") ()
  in
  ignore (Link.connect (Host.node h1, 0) (Host.node h2, 0));
  (engine, h1, h2)

let host_tests =
  [
    tc "arp request answered" (fun () ->
        let engine, h1, h2 = host_pair () in
        Host.send h1
          (Packet.arp_request ~src_mac:(Host.mac h1) ~src_ip:(Host.ip h1)
             ~target_ip:(Host.ip h2));
        Engine.run engine;
        check Alcotest.bool "cached" true
          (List.exists
             (fun (ip, mac) ->
               Ipv4_addr.equal ip (Host.ip h2) && Mac_addr.equal mac (Host.mac h2))
             (Host.arp_cache h1)));
    tc "ping answered" (fun () ->
        let engine, h1, h2 = host_pair () in
        Host.ping h1 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~seq:1;
        Engine.run engine;
        check Alcotest.int "reply" 1 (Host.echo_replies h1));
    tc "udp echo mirrors" (fun () ->
        let engine, h1, h2 = host_pair () in
        Host.enable_udp_echo h2 ~port:7;
        Host.send h1
          (Packet.udp ~dst:(Host.mac h2) ~src:(Host.mac h1) ~ip_src:(Host.ip h1)
             ~ip_dst:(Host.ip h2) ~src_port:5555 ~dst_port:7 "bounce me!");
        Engine.run engine;
        check Alcotest.int "back at h1" 1 (Host.udp_received h1));
    tc "udp to wrong mac ignored" (fun () ->
        let engine, h1, h2 = host_pair () in
        Host.send h1
          (Packet.udp ~dst:(Mac_addr.make_local 99) ~src:(Host.mac h1)
             ~ip_src:(Host.ip h1) ~ip_dst:(Host.ip h2) ~src_port:1 ~dst_port:2 "x");
        Engine.run engine;
        check Alcotest.int "not consumed" 0 (Host.udp_received h2));
    tc "http server returns 200 then 404" (fun () ->
        let engine, h1, h2 = host_pair () in
        Host.serve_http h2 ~pages:[ "/index.html" ];
        Host.http_get h1 ~server_mac:(Host.mac h2) ~server_ip:(Host.ip h2)
          ~host:"example.com" ~path:"/index.html" ~src_port:4000;
        Host.http_get h1 ~server_mac:(Host.mac h2) ~server_ip:(Host.ip h2)
          ~host:"example.com" ~path:"/missing" ~src_port:4001;
        Engine.run engine;
        check Alcotest.(list int) "statuses" [ 200; 404 ]
          (List.map fst (Host.http_responses h1)));
    tc "latency recorded for probes" (fun () ->
        let engine, h1, h2 = host_pair () in
        let payload = Probe.encode ~sent_at:(Engine.now engine) ~pad_to:20 in
        Host.send h1
          (Packet.udp ~dst:(Host.mac h2) ~src:(Host.mac h1) ~ip_src:(Host.ip h1)
             ~ip_dst:(Host.ip h2) ~src_port:1 ~dst_port:2 payload);
        Engine.run engine;
        check Alcotest.int "one sample" 1 (Stats.Histogram.count (Host.latency h2));
        check Alcotest.bool "latency > 0" true
          (Stats.Histogram.min (Host.latency h2) > 0));
    tc "probe round-trip" (fun () ->
        let t = Sim_time.of_ns 123_456_789 in
        check Alcotest.(option int) "decode" (Some 123_456_789)
          (Option.map Sim_time.to_ns (Probe.decode (Probe.encode ~sent_at:t ~pad_to:40))));
    tc "cbr stream sends the right count" (fun () ->
        let engine, h1, h2 = host_pair () in
        let stream =
          Traffic.udp_stream ~rng:(Rng.create 1) ~src:h1 ~dst_mac:(Host.mac h2)
            ~dst_ip:(Host.ip h2)
            ~stop:(Sim_time.of_ns (Sim_time.ms 1))
            (Traffic.Cbr 1_000_000.0) (Traffic.Fixed 64) ()
        in
        Engine.run engine;
        check Alcotest.int "1000 packets in 1ms at 1Mpps" 1000 (Traffic.sent stream);
        check Alcotest.int "all delivered" 1000 (Host.udp_received h2));
    tc "imix sizes are legal" (fun () ->
        let engine, h1, h2 = host_pair () in
        ignore
          (Traffic.udp_stream ~rng:(Rng.create 1) ~src:h1 ~dst_mac:(Host.mac h2)
             ~dst_ip:(Host.ip h2)
             ~stop:(Sim_time.of_ns (Sim_time.us 100))
             (Traffic.Cbr 1_000_000.0) Traffic.Imix ());
        Engine.run engine;
        List.iter
          (fun (p : Packet.t) ->
            let w = Packet.wire_size p in
            check Alcotest.bool "legal imix size" true
              (List.mem w [ 64; 594; 1518 ]))
          (Host.received h2));
  ]

let capture_tests =
  [
    tc "capture records both directions in order" (fun () ->
        let engine, h1, h2 = host_pair () in
        let cap = Capture.create () in
        Capture.attach cap (Host.node h1);
        Host.ping h1 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~seq:1;
        Engine.run engine;
        match Capture.entries cap with
        | [ tx; rx ] ->
            check Alcotest.bool "tx first" true (tx.Capture.dir = Node.Tx);
            check Alcotest.bool "then rx" true (rx.Capture.dir = Node.Rx);
            check Alcotest.bool "time order" true
              (Sim_time.compare tx.Capture.time rx.Capture.time <= 0)
        | entries ->
            Alcotest.failf "expected 2 entries, got %d" (List.length entries));
  ]


(* ---- pcap export ---- *)

let le32_at s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let pcap_tests =
  [
    tc "pcap export has valid framing and one record per rx frame" (fun () ->
        let engine, h1, h2 = host_pair () in
        let cap = Capture.create () in
        Capture.attach cap (Host.node h2);
        Host.ping h1 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~seq:1;
        Engine.run engine;
        let pcap = Capture.to_pcap cap in
        check Alcotest.int "magic" 0xa1b2c3d4 (le32_at pcap 0);
        check Alcotest.int "linktype ethernet" 1 (le32_at pcap 20);
        (* h2 received exactly the echo request *)
        let caplen = le32_at pcap (24 + 8) in
        check Alcotest.bool "plausible frame length" true
          (caplen >= 42 && caplen <= 1518);
        (* exactly one record: header(24) + rec header(16) + caplen *)
        check Alcotest.int "file length" (24 + 16 + caplen) (String.length pcap);
        (* the record's bytes decode back to the echo request *)
        let frame = String.sub pcap 40 caplen in
        match (Packet.decode frame).Packet.l3 with
        | Packet.Ip { Ipv4.payload = Ipv4.Icmp (Icmp.Echo_request _); _ } -> ()
        | _ -> Alcotest.fail "record is not the echo request");
    tc "direction filter selects tx" (fun () ->
        let engine, h1, h2 = host_pair () in
        let cap = Capture.create () in
        Capture.attach cap (Host.node h1);
        Host.ping h1 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~seq:1;
        Engine.run engine;
        (* h1 both sent the request (tx) and received the reply (rx) *)
        let rx = Capture.to_pcap cap in
        let tx = Capture.to_pcap ~dir:Node.Tx cap in
        check Alcotest.bool "both non-trivial" true
          (String.length rx > 24 && String.length tx > 24));
  ]

let suite =
  [
    ("simnet.time", time_tests);
    ("simnet.event_queue", eq_tests);
    ("simnet.engine", engine_tests);
    ("simnet.rng", rng_tests);
    ("simnet.stats", stats_tests);
    ("simnet.link", link_tests);
    ("simnet.host", host_tests);
    ("simnet.capture", capture_tests);
    ("simnet.pcap", pcap_tests);
  ]
