open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- codec ---- *)

let name_gen =
  let open QCheck2.Gen in
  let label =
    map
      (fun chars -> String.init (List.length chars) (List.nth chars))
      (list_size (int_range 1 10) (char_range 'a' 'z'))
  in
  map (String.concat ".") (list_size (int_range 1 4) label)

let message_gen =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun id name -> Dns_lite.query ~id name) (int_bound 0xffff) name_gen;
      map3
        (fun id name addr ->
          Dns_lite.respond (Dns_lite.query ~id name) ~addrs:[ (name, addr) ])
        (int_bound 0xffff) name_gen Gen.ip_gen;
      map2
        (fun id name -> Dns_lite.respond (Dns_lite.query ~id name) ~addrs:[])
        (int_bound 0xffff) name_gen;
    ]

let codec_tests =
  [
    prop "dns messages round-trip" message_gen
      ~print:(fun m -> Format.asprintf "%a" Dns_lite.pp m)
      (fun m -> Dns_lite.equal m (Dns_lite.decode (Dns_lite.encode m)));
    tc "respond finds records case-insensitively" (fun () ->
        let q = Dns_lite.query ~id:7 "WWW.Example.COM" in
        let r =
          Dns_lite.respond q ~addrs:[ ("www.example.com", Ipv4_addr.of_string "1.2.3.4") ]
        in
        check Alcotest.int "noerror" 0 r.Dns_lite.rcode;
        check Alcotest.int "one answer" 1 (List.length r.Dns_lite.answers));
    tc "unknown name gives nxdomain" (fun () ->
        let r = Dns_lite.respond (Dns_lite.query ~id:1 "nope.example") ~addrs:[] in
        check Alcotest.int "rcode 3" 3 r.Dns_lite.rcode;
        check Alcotest.bool "is response" true r.Dns_lite.response);
    tc "bad names rejected" (fun () ->
        check Alcotest.bool "empty" false (Dns_lite.valid_name "");
        check Alcotest.bool "empty label" false (Dns_lite.valid_name "a..b");
        check Alcotest.bool "long label" false
          (Dns_lite.valid_name (String.make 64 'x'));
        check Alcotest.bool "ok" true (Dns_lite.valid_name "www.example.com"));
    tc "malformed bytes rejected" (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Dns_lite.decode "\x00\x01"); false
           with Wire.Truncated _ | Wire.Malformed _ -> true));
  ]

(* ---- host services ---- *)

let host_pair () =
  let engine = Engine.create () in
  let client =
    Host.create engine ~name:"client" ~mac:(Mac_addr.make_local 1)
      ~ip:(Ipv4_addr.of_string "10.0.0.1") ()
  in
  let server =
    Host.create engine ~name:"dns" ~mac:(Mac_addr.make_local 2)
      ~ip:(Ipv4_addr.of_string "10.0.0.2") ()
  in
  ignore (Link.connect (Host.node client, 0) (Host.node server, 0));
  (engine, client, server)

let host_tests =
  [
    tc "resolve against a host dns server" (fun () ->
        let engine, client, server = host_pair () in
        Host.serve_dns server
          ~records:[ ("www.site.example", Ipv4_addr.of_string "10.0.0.50") ];
        Host.resolve client ~server_mac:(Host.mac server) ~server_ip:(Host.ip server)
          "www.site.example";
        Engine.run engine;
        check
          Alcotest.(list (pair string string))
          "resolved"
          [ ("www.site.example", "10.0.0.50") ]
          (List.map
             (fun (n, a) -> (n, Ipv4_addr.to_string a))
             (Host.resolved client)));
    tc "nxdomain counted" (fun () ->
        let engine, client, server = host_pair () in
        Host.serve_dns server ~records:[];
        Host.resolve client ~server_mac:(Host.mac server) ~server_ip:(Host.ip server)
          "ghost.example";
        Engine.run engine;
        check Alcotest.int "nx" 1 (Host.nxdomains client);
        check Alcotest.int "nothing resolved" 0 (List.length (Host.resolved client)));
    tc "non-server host ignores queries" (fun () ->
        let engine, client, server = host_pair () in
        (* server not serving dns *)
        Host.resolve client ~server_mac:(Host.mac server) ~server_ip:(Host.ip server)
          "www.site.example";
        Engine.run engine;
        check Alcotest.int "no answer" 0 (List.length (Host.resolved client)));
  ]

(* ---- dns_guard on a HARMLESS deployment ---- *)

let guard_tests =
  [
    tc "resolution of a blocked name pins the drop before first contact"
      (fun () ->
        (* hosts: 0 = kid, 1 = free user, 2 = dns server, 3 = web server *)
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let guard =
          Sdnctl.Dns_guard.create
            ~blocked:[ (Harmless.Deployment.host_ip 0, "forbidden.example") ]
            ()
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Sdnctl.Dns_guard.app guard; Sdnctl.Rate_limiter.table1_l2 ~num_hosts:4 ]);
        let dns = Harmless.Deployment.host d 2 in
        Host.serve_dns dns
          ~records:[ ("forbidden.example", Harmless.Deployment.host_ip 3) ];
        Host.serve_http (Harmless.Deployment.host d 3) ~pages:[ "/" ];
        (* Both users resolve the name. *)
        let resolve u =
          Host.resolve
            (Harmless.Deployment.host d u)
            ~server_mac:(Harmless.Deployment.host_mac 2)
            ~server_ip:(Harmless.Deployment.host_ip 2)
            "forbidden.example"
        in
        resolve 0;
        resolve 1;
        Experiments_lib.Common.run_for engine (Sim_time.ms 30);
        check Alcotest.int "both got answers" 1
          (List.length (Host.resolved (Harmless.Deployment.host d 0)));
        check Alcotest.bool "binding snooped" true
          (List.mem_assoc "forbidden.example" (Sdnctl.Dns_guard.bindings guard));
        check Alcotest.int "one drop pinned" 1
          (Sdnctl.Dns_guard.blocks_installed guard);
        (* Now both try to fetch the page. *)
        let fetch u port =
          Host.http_get
            (Harmless.Deployment.host d u)
            ~server_mac:(Harmless.Deployment.host_mac 3)
            ~server_ip:(Harmless.Deployment.host_ip 3)
            ~host:"forbidden.example" ~path:"/" ~src_port:port
        in
        fetch 0 40000;
        fetch 1 40001;
        Experiments_lib.Common.run_for engine (Sim_time.ms 30);
        check Alcotest.int "kid blocked" 0
          (List.length (Host.http_responses (Harmless.Deployment.host d 0)));
        check Alcotest.int "free user served" 1
          (List.length (Host.http_responses (Harmless.Deployment.host d 1))));
    tc "unrelated resolutions install nothing" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let guard =
          Sdnctl.Dns_guard.create
            ~blocked:[ (Harmless.Deployment.host_ip 0, "forbidden.example") ]
            ()
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Sdnctl.Dns_guard.app guard; Sdnctl.Rate_limiter.table1_l2 ~num_hosts:3 ]);
        let dns = Harmless.Deployment.host d 2 in
        Host.serve_dns dns
          ~records:[ ("harmless.example", Harmless.Deployment.host_ip 1) ];
        Host.resolve
          (Harmless.Deployment.host d 0)
          ~server_mac:(Harmless.Deployment.host_mac 2)
          ~server_ip:(Harmless.Deployment.host_ip 2)
          "harmless.example";
        Experiments_lib.Common.run_for engine (Sim_time.ms 30);
        check Alcotest.bool "binding seen" true
          (Sdnctl.Dns_guard.bindings guard <> []);
        check Alcotest.int "no blocks" 0 (Sdnctl.Dns_guard.blocks_installed guard));
  ]

let suite =
  [
    ("dns.codec", codec_tests);
    ("dns.host", host_tests);
    ("dns.guard", guard_tests);
  ]
