open Simnet
open Ethswitch

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let member engine ~name ~ports =
  let sw = Legacy_switch.create engine ~name ~ports () in
  let device = Mgmt.Device.create ~switch:sw ~vendor:Mgmt.Device.Cisco_like () in
  (sw, device)

let unit_tests =
  [
    tc "port space is concatenated across members" (fun () ->
        let engine = Engine.create () in
        let _, d0 = member engine ~name:"m0" ~ports:4 in
        let _, d1 = member engine ~name:"m1" ~ports:6 in
        match
          Harmless.Scaleout.provision engine
            ~members:
              [
                { Harmless.Scaleout.device = d0; trunk_port = 3; access_ports = [ 0; 1; 2 ] };
                { Harmless.Scaleout.device = d1; trunk_port = 5; access_ports = [ 0; 1; 2; 3; 4 ] };
              ]
            ()
        with
        | Error msg -> Alcotest.fail msg
        | Ok scale ->
            check Alcotest.int "total" 8 (Harmless.Scaleout.total_ports scale);
            check Alcotest.(option int) "m0 p2 -> 2" (Some 2)
              (Harmless.Scaleout.ss2_port scale ~member:0 ~access_port:2);
            check Alcotest.(option int) "m1 p0 -> 3" (Some 3)
              (Harmless.Scaleout.ss2_port scale ~member:1 ~access_port:0);
            check Alcotest.(option int) "m1 p4 -> 7" (Some 7)
              (Harmless.Scaleout.ss2_port scale ~member:1 ~access_port:4);
            check Alcotest.(option (pair int int)) "inverse 5" (Some (1, 2))
              (Harmless.Scaleout.member_of_ss2_port scale 5);
            check Alcotest.(option (pair int int)) "inverse 0" (Some (0, 0))
              (Harmless.Scaleout.member_of_ss2_port scale 0);
            check Alcotest.(option (pair int int)) "out of range" None
              (Harmless.Scaleout.member_of_ss2_port scale 8);
            check Alcotest.int "one ss1 per member" 2
              (Array.length scale.Harmless.Scaleout.ss1s));
    tc "vlan ranges are reused per member" (fun () ->
        let engine = Engine.create () in
        let _, d0 = member engine ~name:"m0" ~ports:3 in
        let _, d1 = member engine ~name:"m1" ~ports:3 in
        match
          Harmless.Scaleout.provision engine
            ~members:
              [
                { Harmless.Scaleout.device = d0; trunk_port = 2; access_ports = [ 0; 1 ] };
                { Harmless.Scaleout.device = d1; trunk_port = 2; access_ports = [ 0; 1 ] };
              ]
            ()
        with
        | Error msg -> Alcotest.fail msg
        | Ok scale ->
            check Alcotest.(list int) "same vids" [ 101; 102 ]
              (Harmless.Port_map.vids scale.Harmless.Scaleout.port_maps.(0));
            check Alcotest.(list int) "same vids'" [ 101; 102 ]
              (Harmless.Port_map.vids scale.Harmless.Scaleout.port_maps.(1)));
    tc "failure on a later member rolls back earlier ones" (fun () ->
        let engine = Engine.create () in
        let sw0, d0 = member engine ~name:"m0" ~ports:4 in
        let _, d1 = member engine ~name:"m1" ~ports:4 in
        let before = Mgmt.Device.running_config_text d0 in
        (match
           Harmless.Scaleout.provision engine
             ~members:
               [
                 { Harmless.Scaleout.device = d0; trunk_port = 3; access_ports = [ 0; 1; 2 ] };
                 (* invalid: trunk inside access ports *)
                 { Harmless.Scaleout.device = d1; trunk_port = 0; access_ports = [ 0; 1 ] };
               ]
             ()
         with
        | Ok _ -> Alcotest.fail "should have failed"
        | Error _ -> ());
        check Alcotest.string "m0 restored" before (Mgmt.Device.running_config_text d0);
        check Alcotest.bool "m0 port default" true
          (Legacy_switch.port_mode sw0 ~port:0 = Port_config.default));
    tc "empty member list rejected" (fun () ->
        let engine = Engine.create () in
        match Harmless.Scaleout.provision engine ~members:[] () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should fail");
  ]

let integration_tests =
  [
    Alcotest.test_case "cross-switch traffic flows through the shared SS_2" `Slow
      (fun () ->
        let r = Experiments_lib.E11_scaleout.measure () in
        check Alcotest.int "ports" 12 r.Experiments_lib.E11_scaleout.total_ports;
        check Alcotest.int "intra all ok" r.Experiments_lib.E11_scaleout.intra_pairs
          r.Experiments_lib.E11_scaleout.intra_ok;
        check Alcotest.int "inter all ok" r.Experiments_lib.E11_scaleout.inter_pairs
          r.Experiments_lib.E11_scaleout.inter_ok);
    tc "controller apps work unchanged on a scale-out deployment" (fun () ->
        let engine = Engine.create () in
        let d =
          match
            Harmless.Deployment.build_scaleout engine ~num_switches:2
              ~hosts_per_switch:2 ()
          with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d [ Sdnctl.L2_learning.create () ]);
        (* host 0 (switch 0) pings host 3 (switch 1) *)
        let h0 = Harmless.Deployment.host d 0 in
        Host.ping h0
          ~dst_mac:(Harmless.Deployment.host_mac 3)
          ~dst_ip:(Harmless.Deployment.host_ip 3)
          ~seq:1;
        Experiments_lib.Common.run_for engine (Sim_time.ms 100);
        check Alcotest.int "cross-switch ping" 1 (Host.echo_replies h0));
  ]

let suite =
  [ ("scaleout.unit", unit_tests); ("scaleout.integration", integration_tests) ]
