open Simnet
open Ethswitch
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mac i = Mac_addr.make_local i

(* ---- port security on the legacy switch ---- *)

let security_rig () =
  let engine = Engine.create () in
  let sw = Legacy_switch.create engine ~name:"sw" ~ports:2 ~processing_delay:0 () in
  let received = ref 0 in
  let a = Node.create engine ~name:"a" ~ports:1 in
  let b = Node.create engine ~name:"b" ~ports:1 in
  Node.set_handler b (fun _ ~in_port:_ _ -> incr received);
  ignore (Link.connect (a, 0) (Legacy_switch.node sw, 0));
  ignore (Link.connect (b, 0) (Legacy_switch.node sw, 1));
  let send src_mac =
    Node.transmit a ~port:0
      (Packet.udp ~dst:Mac_addr.broadcast ~src:src_mac
         ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
         ~ip_dst:(Ipv4_addr.of_string "10.0.0.255") ~src_port:1 ~dst_port:2 "s")
  in
  (engine, sw, send, received)

let security_tests =
  [
    tc "limits new addresses, keeps known ones working" (fun () ->
        let engine, sw, send, received = security_rig () in
        Legacy_switch.set_port_security sw ~port:0 ~max_macs:(Some 2);
        send (mac 1);
        send (mac 2);
        send (mac 3) (* violation: third address *);
        send (mac 1) (* known address keeps working *);
        Engine.run engine;
        check Alcotest.int "3 delivered" 3 !received;
        check Alcotest.int "1 violation" 1
          (Stats.Counter.get (Legacy_switch.counters sw) "drop_port_security");
        check Alcotest.int "table holds only 2" 2
          (Mac_table.count_port (Legacy_switch.mac_table sw) ~port:0));
    tc "no limit means no drops" (fun () ->
        let engine, _, send, received = security_rig () in
        for i = 1 to 20 do send (mac i) done;
        Engine.run engine;
        check Alcotest.int "all flooded" 20 !received);
    tc "removing the limit restores learning" (fun () ->
        let engine, sw, send, received = security_rig () in
        Legacy_switch.set_port_security sw ~port:0 ~max_macs:(Some 1);
        send (mac 1);
        send (mac 2);
        Engine.run engine;
        check Alcotest.int "one blocked" 1 !received;
        Legacy_switch.set_port_security sw ~port:0 ~max_macs:None;
        send (mac 2);
        Engine.run engine;
        check Alcotest.int "unblocked" 2 !received);
    tc "invalid limit rejected" (fun () ->
        let _, sw, _, _ = security_rig () in
        check Alcotest.bool "raises" true
          (try Legacy_switch.set_port_security sw ~port:0 ~max_macs:(Some 0); false
           with Invalid_argument _ -> true));
  ]

(* ---- host tracker app ---- *)

let tracker_tests =
  [
    tc "inventory builds from packet-ins and reacts to port-down" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let tracker = Sdnctl.Host_tracker.create () in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Sdnctl.Host_tracker.app tracker; Sdnctl.L2_learning.create () ]);
        (* generate some traffic so packet-ins happen *)
        for i = 0 to 2 do
          Host.ping
            (Harmless.Deployment.host d i)
            ~dst_mac:(Harmless.Deployment.host_mac ((i + 1) mod 3))
            ~dst_ip:(Harmless.Deployment.host_ip ((i + 1) mod 3))
            ~seq:i
        done;
        Experiments_lib.Common.run_for engine (Sim_time.ms 100);
        let hosts = Sdnctl.Host_tracker.hosts tracker in
        check Alcotest.int "three hosts" 3 (List.length hosts);
        (match Sdnctl.Host_tracker.find_by_ip tracker (Harmless.Deployment.host_ip 1) with
        | Some e ->
            check Alcotest.int "host1 behind logical port 1" 1 e.Sdnctl.Host_tracker.port;
            check Alcotest.bool "mac matches" true
              (Mac_addr.equal e.Sdnctl.Host_tracker.mac (Harmless.Deployment.host_mac 1))
        | None -> Alcotest.fail "host 1 not tracked");
        check Alcotest.int "no moves" 0 (Sdnctl.Host_tracker.moves_detected tracker));
    tc "mac move detection" (fun () ->
        let tracker = Sdnctl.Host_tracker.create () in
        let app = Sdnctl.Host_tracker.app tracker in
        let engine = Engine.create () in
        let ctrl = Sdnctl.Controller.create engine () in
        let pkt =
          Packet.udp ~dst:(mac 9) ~src:(mac 1)
            ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
            ~ip_dst:(Ipv4_addr.of_string "10.0.0.9") ~src_port:1 ~dst_port:2 "x"
        in
        ignore (app.Sdnctl.Controller.packet_in ctrl 1L ~in_port:0 Openflow.Of_message.No_match pkt);
        ignore (app.Sdnctl.Controller.packet_in ctrl 1L ~in_port:2 Openflow.Of_message.No_match pkt);
        check Alcotest.int "one move" 1 (Sdnctl.Host_tracker.moves_detected tracker);
        (match Sdnctl.Host_tracker.find_by_mac tracker (mac 1) with
        | Some e -> check Alcotest.int "latest port" 2 e.Sdnctl.Host_tracker.port
        | None -> Alcotest.fail "lost");
        (* port-down evicts *)
        app.Sdnctl.Controller.port_status ctrl 1L ~port:2 ~up:false;
        check Alcotest.int "evicted" 0 (List.length (Sdnctl.Host_tracker.hosts tracker)));
  ]



(* ---- ARP proxy ---- *)

let arp_proxy_tests =
  [
    tc "known targets answered by the controller, no flood" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let tracker = Sdnctl.Host_tracker.create () in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [
               Sdnctl.Host_tracker.app tracker;
               Sdnctl.Arp_proxy.create tracker;
               Sdnctl.L2_learning.create ();
             ]);
        let h0 = Harmless.Deployment.host d 0 in
        let h1 = Harmless.Deployment.host d 1 in
        let h2 = Harmless.Deployment.host d 2 in
        (* Prime the tracker: h1 talks once, so its location is known. *)
        Host.ping h1 ~dst_mac:(Harmless.Deployment.host_mac 2)
          ~dst_ip:(Host.ip h2) ~seq:1;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        let h2_frames_before = Host.received_count h2 in
        (* h0 ARPs for h1: the proxy should answer; h2 must see nothing. *)
        Host.send h0
          (Packet.arp_request ~src_mac:(Host.mac h0) ~src_ip:(Host.ip h0)
             ~target_ip:(Host.ip h1));
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.bool "h0 resolved h1" true
          (List.exists
             (fun (ip, mac) ->
               Ipv4_addr.equal ip (Host.ip h1)
               && Mac_addr.equal mac (Host.mac h1))
             (Host.arp_cache h0));
        check Alcotest.int "no flood reached h2" h2_frames_before
          (Host.received_count h2));
    tc "unknown targets still flood and get answered by the host" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let tracker = Sdnctl.Host_tracker.create () in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [
               Sdnctl.Host_tracker.app tracker;
               Sdnctl.Arp_proxy.create tracker;
               Sdnctl.L2_learning.create ();
             ]);
        let h0 = Harmless.Deployment.host d 0 in
        (* h1 has never spoken: the proxy knows nothing, flooding works. *)
        Host.send h0
          (Packet.arp_request ~src_mac:(Host.mac h0) ~src_ip:(Host.ip h0)
             ~target_ip:(Harmless.Deployment.host_ip 1));
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.bool "resolved the old way" true
          (List.exists
             (fun (ip, _) -> Ipv4_addr.equal ip (Harmless.Deployment.host_ip 1))
             (Host.arp_cache h0)));
  ]

let suite =
  [
    ("inventory.port_security", security_tests);
    ("inventory.tracker", tracker_tests);
    ("inventory.arp_proxy", arp_proxy_tests);
  ]
