(* Cross-cutting system properties: determinism, fail-standalone
   forwarding, mixed-vendor scale-out, and the documented customer-VLAN
   boundary of the tagging scheme. *)

open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let run_scenario () =
  let engine = Engine.create () in
  let d =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error m -> failwith m
  in
  ignore
    (Experiments_lib.Common.attach_with_apps d [ Sdnctl.L2_learning.create () ]);
  let cap = Capture.create () in
  Array.iter (fun h -> Capture.attach cap (Host.node h)) d.Harmless.Deployment.hosts;
  let rng = Rng.create 1234 in
  for i = 0 to 19 do
    let src = Rng.int rng 4 in
    let dst = (src + 1 + Rng.int rng 3) mod 4 in
    Engine.schedule_after engine (Sim_time.us (137 * (i + 1))) (fun () ->
        Host.send
          (Harmless.Deployment.host d src)
          (Packet.udp
             ~dst:(Harmless.Deployment.host_mac dst)
             ~src:(Harmless.Deployment.host_mac src)
             ~ip_src:(Harmless.Deployment.host_ip src)
             ~ip_dst:(Harmless.Deployment.host_ip dst)
             ~src_port:(1024 + i) ~dst_port:9 "determinism"))
  done;
  Experiments_lib.Common.run_for engine (Sim_time.ms 80);
  List.map
    (fun e ->
      Printf.sprintf "%d %s %d %s"
        (Sim_time.to_ns e.Capture.time)
        e.Capture.node e.Capture.port
        (Packet.encode e.Capture.packet))
    (Capture.entries cap)

let determinism_tests =
  [
    tc "identical runs produce byte- and time-identical event traces" (fun () ->
        let a = run_scenario () and b = run_scenario () in
        check Alcotest.int "same length" (List.length a) (List.length b);
        List.iter2 (fun x y -> check Alcotest.string "same entry" x y) a b);
  ]

let fail_standalone_tests =
  [
    tc "installed flows keep forwarding after the controller dies" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Experiments_lib.Common.proactive_l2 ~num_hosts:2 ]);
        let h0 = Harmless.Deployment.host d 0 in
        Host.ping h0 ~dst_mac:(Harmless.Deployment.host_mac 1)
          ~dst_ip:(Harmless.Deployment.host_ip 1) ~seq:1;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.int "before" 1 (Host.echo_replies h0);
        (* the controller vanishes: messages to it go nowhere *)
        Softswitch.Soft_switch.set_controller
          (Harmless.Deployment.controller_switch d)
          (fun _ -> ());
        Host.ping h0 ~dst_mac:(Harmless.Deployment.host_mac 1)
          ~dst_ip:(Harmless.Deployment.host_ip 1) ~seq:2;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.int "fail-standalone" 2 (Host.echo_replies h0));
  ]

let mixed_vendor_tests =
  [
    tc "a scale-out can mix all three NOS dialects" (fun () ->
        let engine = Engine.create () in
        let member vendor name =
          let sw = Ethswitch.Legacy_switch.create engine ~name ~ports:3 () in
          let device = Mgmt.Device.create ~switch:sw ~vendor () in
          {
            Harmless.Scaleout.device;
            trunk_port = 2;
            access_ports = [ 0; 1 ];
          }
        in
        match
          Harmless.Scaleout.provision engine
            ~members:
              [
                member Mgmt.Device.Cisco_like "m-ios";
                member Mgmt.Device.Arista_like "m-eos";
                member Mgmt.Device.Juniper_like "m-junos";
              ]
            ()
        with
        | Error m -> Alcotest.fail m
        | Ok scale ->
            check Alcotest.int "6 logical ports" 6
              (Harmless.Scaleout.total_ports scale);
            check Alcotest.(list string) "one driver per dialect"
              [ "ios"; "eos"; "junos" ]
              (Array.to_list
                 (Array.map
                    (fun (r : Harmless.Manager.report) ->
                      match String.split_on_char ' ' (List.hd r.Harmless.Manager.steps) with
                      | "connected" :: "via" :: driver :: _ -> driver
                      | _ -> "?")
                    scale.Harmless.Scaleout.reports)));
  ]

(* The tagging scheme owns the 802.1Q tag space on managed ports: a host
   that sends its own tagged frames loses them at the legacy ingress
   (tag <> PVID), where a plain OpenFlow switch would forward them.
   This is a real limitation of the design; the test pins it down and
   DESIGN.md documents it. *)
let boundary_tests =
  [
    tc "customer-tagged frames are dropped at managed access ports" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Experiments_lib.Common.proactive_l2 ~num_hosts:2 ]);
        let h0 = Harmless.Deployment.host d 0 in
        let tagged =
          Packet.udp
            ~vlans:[ Vlan.make 777 ]
            ~dst:(Harmless.Deployment.host_mac 1)
            ~src:(Host.mac h0) ~ip_src:(Host.ip h0)
            ~ip_dst:(Harmless.Deployment.host_ip 1)
            ~src_port:1 ~dst_port:2 "customer tag"
        in
        Host.send h0 tagged;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.int "not delivered" 0
          (Host.udp_received (Harmless.Deployment.host d 1));
        (match d.Harmless.Deployment.kind with
        | Harmless.Deployment.Harmless { legacy; _ } ->
            check Alcotest.int "dropped at legacy ingress" 1
              (Stats.Counter.get
                 (Ethswitch.Legacy_switch.counters legacy)
                 "drop_ingress_vlan")
        | _ -> assert false));
  ]

let suite =
  [
    ("properties.determinism", determinism_tests);
    ("properties.fail_standalone", fail_standalone_tests);
    ("properties.mixed_vendor", mixed_vendor_tests);
    ("properties.boundaries", boundary_tests);
  ]
