open Costmodel

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let ports_gen = QCheck2.Gen.int_range 1 512

let suite_tests =
  [
    tc "catalog lookup" (fun () ->
        (match Catalog.find "legacy-48" with
        | Some d -> check Alcotest.int "ports" 48 d.Catalog.access_ports
        | None -> Alcotest.fail "missing sku");
        check Alcotest.bool "unknown" true (Catalog.find "flux-capacitor" = None));
    tc "bill totals multiply out" (fun () ->
        let bill = Scenario.cots_sdn ~ports:96 in
        (* 96 = 2 x 48-port ToRs *)
        check (Alcotest.float 0.01) "total"
          (2.0 *. Catalog.cots_sdn_48.Catalog.price_usd)
          (Scenario.total bill));
    tc "tor mix tops up with the small model" (fun () ->
        let bill = Scenario.cots_sdn ~ports:60 in
        (* 48 + 24 covers 60 more cheaply than 2x48 *)
        check Alcotest.int "provided" 72 bill.Scenario.ports_provided;
        check (Alcotest.float 0.01) "total"
          (Catalog.cots_sdn_48.Catalog.price_usd
          +. Catalog.cots_sdn_24.Catalog.price_usd)
          (Scenario.total bill));
    tc "brownfield buys no switches" (fun () ->
        let bill = Scenario.harmless_brownfield ~ports:48 in
        List.iter
          (fun line ->
            if line.Scenario.item.Catalog.access_ports > 0 then
              check (Alcotest.float 0.001) "owned switch free" 0.0
                line.Scenario.item.Catalog.price_usd)
          bill.Scenario.lines);
    tc "greenfield = brownfield + switch cost" (fun () ->
        let g = Scenario.total (Scenario.harmless_greenfield ~ports:96) in
        let b = Scenario.total (Scenario.harmless_brownfield ~ports:96) in
        check (Alcotest.float 0.01) "difference is the switches"
          (2.0 *. Catalog.legacy_48.Catalog.price_usd)
          (g -. b));
    tc "expected ordering at 48 ports" (fun () ->
        let r = List.hd (Cost.sweep ~port_counts:[ 48 ]) in
        check Alcotest.bool "brown < green" true (r.Cost.brownfield < r.Cost.greenfield);
        check Alcotest.bool "green < cots" true (r.Cost.greenfield < r.Cost.cots);
        check Alcotest.bool "cots < software" true (r.Cost.cots < r.Cost.software));
    tc "savings figure is substantial" (fun () ->
        check Alcotest.bool "> 40%" true (Cost.savings_vs_cots ~ports:48 > 0.4));
    prop "every scenario provides at least the requested ports" ports_gen
      ~print:string_of_int
      (fun ports ->
        List.for_all
          (fun bill -> bill.Scenario.ports_provided >= bill.Scenario.ports_requested)
          (Scenario.all ~ports));
    prop "totals are positive and per-port consistent" ports_gen
      ~print:string_of_int
      (fun ports ->
        List.for_all
          (fun bill ->
            let total = Scenario.total bill in
            total >= 0.0
            && Float.abs ((Scenario.cost_per_port bill *. float_of_int ports) -. total)
               < 0.01)
          (Scenario.all ~ports));
    prop "total cost is monotone in ports (same scenario)" ports_gen
      ~print:string_of_int
      (fun ports ->
        let t1 = Scenario.total (Scenario.harmless_greenfield ~ports) in
        let t2 = Scenario.total (Scenario.harmless_greenfield ~ports:(ports + 48)) in
        t2 >= t1);
    tc "invalid port counts rejected" (fun () ->
        check Alcotest.bool "zero" true
          (try ignore (Scenario.cots_sdn ~ports:0); false
           with Invalid_argument _ -> true));
  ]

let suite = [ ("costmodel", suite_tests) ]
