open Simnet

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let sampling_tests =
  [
    tc "every Nth packet is sampled to the controller" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let talkers = Sdnctl.Top_talkers.create () in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [
               Sdnctl.Top_talkers.app talkers;
               Experiments_lib.Common.proactive_l2 ~num_hosts:2;
             ]);
        Softswitch.Soft_switch.set_sampling
          (Harmless.Deployment.controller_switch d)
          ~rate:(Some 10);
        ignore
          (Traffic.udp_stream ~rng:(Rng.create 1)
             ~src:(Harmless.Deployment.host d 0)
             ~dst_mac:(Harmless.Deployment.host_mac 1)
             ~dst_ip:(Harmless.Deployment.host_ip 1)
             ~stop:(Sim_time.add (Engine.now engine) (Sim_time.ms 10))
             (Traffic.Cbr 100_000.0) (Traffic.Fixed 128) ());
        Experiments_lib.Common.run_for engine (Sim_time.ms 30);
        (* 1000 packets at rate 10 -> 100 samples *)
        check Alcotest.int "sample count" 100 (Sdnctl.Top_talkers.samples talkers);
        (* forwarding unaffected *)
        check Alcotest.int "all delivered" 1000
          (Host.udp_received (Harmless.Deployment.host d 1)));
    tc "ranking reflects relative rates" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let talkers = Sdnctl.Top_talkers.create () in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [
               Sdnctl.Top_talkers.app talkers;
               Experiments_lib.Common.proactive_l2 ~num_hosts:3;
             ]);
        Softswitch.Soft_switch.set_sampling
          (Harmless.Deployment.controller_switch d)
          ~rate:(Some 5);
        let stream src rate =
          ignore
            (Traffic.udp_stream ~rng:(Rng.create src)
               ~src:(Harmless.Deployment.host d src)
               ~dst_mac:(Harmless.Deployment.host_mac 2)
               ~dst_ip:(Harmless.Deployment.host_ip 2)
               ~stop:(Sim_time.add (Engine.now engine) (Sim_time.ms 20))
               (Traffic.Poisson rate) (Traffic.Fixed 128) ())
        in
        stream 0 90_000.0 (* heavy talker *);
        stream 1 10_000.0 (* light talker *);
        Experiments_lib.Common.run_for engine (Sim_time.ms 40);
        (match Sdnctl.Top_talkers.ranking talkers with
        | (top, _) :: _ ->
            check Alcotest.string "host0 on top" "10.0.0.1"
              (Netpkt.Ipv4_addr.to_string top)
        | [] -> Alcotest.fail "no ranking");
        let share =
          Sdnctl.Top_talkers.estimated_share talkers (Harmless.Deployment.host_ip 0)
        in
        check Alcotest.bool "share ~0.9" true (share > 0.8 && share < 0.98));
    tc "bad rate rejected, None disables" (fun () ->
        let engine = Engine.create () in
        let sw = Softswitch.Soft_switch.create engine ~name:"s" ~ports:1 () in
        check Alcotest.bool "raises" true
          (try Softswitch.Soft_switch.set_sampling sw ~rate:(Some 0); false
           with Invalid_argument _ -> true);
        Softswitch.Soft_switch.set_sampling sw ~rate:None);
  ]

let suite = [ ("sampling", sampling_tests) ]
