open Simnet
open Openflow
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mac i = Mac_addr.make_local i

(* A controller rig: one plain OpenFlow switch with [n] recording stubs. *)
let rig ?(ports = 4) apps =
  let engine = Engine.create () in
  let sw = Softswitch.Soft_switch.create engine ~name:"sw" ~ports () in
  let received = Array.make ports [] in
  let stubs =
    Array.init ports (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "h%d" i) ~ports:1 in
        Node.set_handler n (fun _ ~in_port:_ pkt ->
            received.(i) <- pkt :: received.(i));
        ignore (Link.connect (n, 0) (Softswitch.Soft_switch.node sw, i));
        n)
  in
  let ctrl = Sdnctl.Controller.create engine () in
  List.iter (Sdnctl.Controller.add_app ctrl) apps;
  let dpid = Sdnctl.Controller.attach_switch ctrl sw in
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
  let send i pkt = Node.transmit stubs.(i) ~port:0 pkt in
  (engine, sw, ctrl, dpid, send, received)

let udp_between i j =
  Packet.udp ~dst:(mac (j + 1)) ~src:(mac (i + 1))
    ~ip_src:(Ipv4_addr.of_octets 10 0 0 (i + 1))
    ~ip_dst:(Ipv4_addr.of_octets 10 0 0 (j + 1))
    ~src_port:(5000 + i) ~dst_port:(6000 + j) "app test payload"

let channel_tests =
  [
    tc "handshake triggers switch_up exactly once" (fun () ->
        let ups = ref 0 in
        let app =
          {
            (Sdnctl.Controller.no_op_app "probe") with
            Sdnctl.Controller.switch_up = (fun _ _ -> incr ups);
          }
        in
        let _ = rig [ app ] in
        check Alcotest.int "once" 1 !ups);
    tc "messages are delayed by channel latency" (fun () ->
        let engine = Engine.create () in
        let sw = Softswitch.Soft_switch.create engine ~name:"sw" ~ports:1 () in
        let arrived_at = ref Sim_time.zero in
        let ch =
          Sdnctl.Channel.connect engine ~latency:(Sim_time.us 500) ~switch:sw
            ~to_controller:(fun _ -> arrived_at := Engine.now engine)
            ()
        in
        Sdnctl.Channel.to_switch ch Of_message.Features_request;
        Engine.run engine;
        (* request: 500us there; reply: 500us back *)
        check Alcotest.int "1ms round trip" (Sim_time.ms 1)
          (Sim_time.to_ns !arrived_at));
  ]

let error_tests =
  [
    tc "flow-mod to a bad table surfaces as an error" (fun () ->
        let engine, _, ctrl, dpid, _, _ = rig [] in
        Sdnctl.Controller.install ctrl dpid
          (Of_message.add_flow ~table_id:42 ~match_:Of_match.any []);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 10));
        check Alcotest.bool "error recorded" true
          (Sdnctl.Controller.errors_received ctrl <> []));
    tc "flow_stats callback fires" (fun () ->
        let engine, _, ctrl, dpid, _, _ = rig [] in
        Sdnctl.Controller.install ctrl dpid
          (Of_message.add_flow ~match_:Of_match.any []);
        let got = ref (-1) in
        Sdnctl.Controller.flow_stats ctrl dpid ~on_reply:(fun stats ->
            got := List.length stats);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 10));
        check Alcotest.int "one entry" 1 !got);
  ]

let l2_tests =
  [
    tc "first packet floods, reply unicasts, then hardware path" (fun () ->
        let engine, sw, ctrl, _, send, received = rig [ Sdnctl.L2_learning.create () ] in
        send 0 (udp_between 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.int "flooded to 1" 1 (List.length received.(1));
        check Alcotest.int "flooded to 2" 1 (List.length received.(2));
        send 1 (udp_between 1 0);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 40));
        check Alcotest.int "unicast back" 1 (List.length received.(0));
        check Alcotest.int "2 saw nothing new" 1 (List.length received.(2));
        (* third packet 0->1: dst now known, installs the eth_dst flow *)
        send 0 (udp_between 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 60));
        check Alcotest.int "delivered" 2 (List.length received.(1));
        (* fourth packet rides the installed flow: no further packet-in *)
        let before = Sdnctl.Controller.packet_ins_received ctrl in
        send 0 (udp_between 0 1);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 80));
        check Alcotest.int "no new packet-in" before
          (Sdnctl.Controller.packet_ins_received ctrl);
        check Alcotest.int "delivered in hardware" 3 (List.length received.(1));
        check Alcotest.bool "flows installed" true
          (Flow_table.size (Pipeline.table (Softswitch.Soft_switch.pipeline sw) 0) >= 2));
  ]

let lb_tests =
  [
    tc "flows stick to backends; distinct flows spread" (fun () ->
        let vip_ip = Ipv4_addr.of_octets 10 0 0 100 in
        let vip_mac = mac 100 in
        let backends =
          List.map
            (fun b ->
              {
                Sdnctl.Load_balancer.backend_mac = mac (b + 1);
                backend_ip = Ipv4_addr.of_octets 10 0 0 (b + 1);
                backend_port = b;
              })
            [ 0; 1 ]
        in
        let app =
          Sdnctl.Load_balancer.create ~vip_ip ~vip_mac ~ingress_port:3 ~backends ()
        in
        let engine, _, _, _, send, received = rig [ app ] in
        let to_vip sport =
          Packet.tcp ~dst:vip_mac ~src:(mac 50)
            ~ip_src:(Ipv4_addr.of_octets 10 0 0 50) ~ip_dst:vip_ip ~src_port:sport
            ~dst_port:80 "GET"
        in
        (* same flow, three packets: all to one backend *)
        for _ = 1 to 3 do
          send 3 (to_vip 7777)
        done;
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        let total0 = List.length received.(0) and total1 = List.length received.(1) in
        check Alcotest.int "three delivered" 3 (total0 + total1);
        check Alcotest.bool "sticky" true (total0 = 0 || total1 = 0);
        (* many distinct flows: both backends used, dst rewritten *)
        for sport = 1000 to 1063 do
          send 3 (to_vip sport)
        done;
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 60));
        check Alcotest.bool "backend0 used" true (List.length received.(0) > 0);
        check Alcotest.bool "backend1 used" true (List.length received.(1) > 0);
        List.iter
          (fun (p : Packet.t) ->
            match p.Packet.l3 with
            | Packet.Ip hdr ->
                check Alcotest.string "ip rewritten" "10.0.0.1"
                  (Ipv4_addr.to_string hdr.Ipv4.dst)
            | _ -> ())
          received.(0));
    tc "return traffic rewritten to the VIP" (fun () ->
        let vip_ip = Ipv4_addr.of_octets 10 0 0 100 in
        let vip_mac = mac 100 in
        let backends =
          [
            {
              Sdnctl.Load_balancer.backend_mac = mac 1;
              backend_ip = Ipv4_addr.of_octets 10 0 0 1;
              backend_port = 0;
            };
          ]
        in
        let app =
          Sdnctl.Load_balancer.create ~vip_ip ~vip_mac ~ingress_port:3 ~backends ()
        in
        let engine, _, _, _, send, received = rig [ app ] in
        send 0
          (Packet.tcp ~dst:(mac 50) ~src:(mac 1)
             ~ip_src:(Ipv4_addr.of_octets 10 0 0 1)
             ~ip_dst:(Ipv4_addr.of_octets 10 0 0 50) ~src_port:80 ~dst_port:7777
             "HTTP/1.1 200 OK");
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        match received.(3) with
        | [ p ] -> (
            check Alcotest.bool "src mac = vip" true (Mac_addr.equal p.Packet.src vip_mac);
            match p.Packet.l3 with
            | Packet.Ip hdr ->
                check Alcotest.string "src ip = vip" "10.0.0.100"
                  (Ipv4_addr.to_string hdr.Ipv4.src)
            | _ -> Alcotest.fail "not ip")
        | l -> Alcotest.failf "ingress got %d" (List.length l));
  ]

let dmz_tests =
  [
    tc "allows listed pairs both ways, blocks the rest" (fun () ->
        let vm i =
          {
            Sdnctl.Dmz.vm_ip = Ipv4_addr.of_octets 10 0 0 (i + 1);
            vm_mac = mac (i + 1);
            vm_port = i;
          }
        in
        let policy =
          {
            Sdnctl.Dmz.vms = List.init 4 vm;
            allowed = [ (Ipv4_addr.of_octets 10 0 0 1, Ipv4_addr.of_octets 10 0 0 2) ];
          }
        in
        let engine, _, _, _, send, received = rig [ Sdnctl.Dmz.create policy () ] in
        send 0 (udp_between 0 1);
        send 1 (udp_between 1 0);
        send 0 (udp_between 0 2);
        send 2 (udp_between 2 3);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.int "0->1 allowed" 1 (List.length received.(1));
        check Alcotest.int "1->0 allowed" 1 (List.length received.(0));
        check Alcotest.int "others blocked" 0 (List.length received.(2));
        check Alcotest.int "others blocked'" 0 (List.length received.(3)));
    tc "arp still floods under dmz" (fun () ->
        let vm i =
          {
            Sdnctl.Dmz.vm_ip = Ipv4_addr.of_octets 10 0 0 (i + 1);
            vm_mac = mac (i + 1);
            vm_port = i;
          }
        in
        let policy = { Sdnctl.Dmz.vms = List.init 2 vm; allowed = [] } in
        let engine, _, _, _, send, received = rig [ Sdnctl.Dmz.create policy () ] in
        send 0
          (Packet.arp_request ~src_mac:(mac 1)
             ~src_ip:(Ipv4_addr.of_octets 10 0 0 1)
             ~target_ip:(Ipv4_addr.of_octets 10 0 0 2));
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.bool "arp delivered" true (List.length received.(1) >= 1));
    tc "unknown vm in policy rejected at construction" (fun () ->
        let policy =
          {
            Sdnctl.Dmz.vms = [];
            allowed = [ (Ipv4_addr.of_octets 1 1 1 1, Ipv4_addr.of_octets 2 2 2 2) ];
          }
        in
        check Alcotest.bool "raises" true
          (try ignore (Sdnctl.Dmz.create policy ()); false
           with Invalid_argument _ -> true));
  ]

let pc_tests =
  [
    tc "proactive block installs drop rules" (fun () ->
        let user = Ipv4_addr.of_octets 10 0 0 1 in
        let site = Ipv4_addr.of_octets 10 0 0 3 in
        let pc =
          Sdnctl.Parental_control.create
            ~sites:[ ("bad.example", site) ]
            ~blocked:[ (user, "bad.example") ]
            ()
        in
        let engine, _, _, _, send, received =
          rig [ Sdnctl.Parental_control.app pc; Sdnctl.L2_learning.create () ]
        in
        (* user (port 0) sends HTTP to the site host (port 2) *)
        let http =
          Packet.tcp ~dst:(mac 3) ~src:(mac 1) ~ip_src:user ~ip_dst:site
            ~src_port:1234 ~dst_port:80
            (Http_lite.render_request (Http_lite.get ~host:"bad.example" "/"))
        in
        send 0 http;
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.int "blocked" 0 (List.length received.(2));
        (* non-HTTP traffic from the same user still flows *)
        send 0 (udp_between 0 2);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 40));
        check Alcotest.int "udp unaffected" 1 (List.length received.(2)));
    tc "reactive sniffing blocks unknown sites by Host header" (fun () ->
        let user = Ipv4_addr.of_octets 10 0 0 1 in
        let pc =
          Sdnctl.Parental_control.create ~sites:[]
            ~blocked:[ (user, "sneaky.example") ]
            ()
        in
        let engine, _, _, _, send, received =
          rig [ Sdnctl.Parental_control.app pc; Sdnctl.L2_learning.create () ]
        in
        let http ~server host =
          Packet.tcp ~dst:(mac (server + 1)) ~src:(mac 1) ~ip_src:user
            ~ip_dst:(Ipv4_addr.of_octets 10 0 0 (server + 1)) ~src_port:1234
            ~dst_port:80
            (Http_lite.render_request (Http_lite.get ~host "/"))
        in
        send 0 (http ~server:2 "sneaky.example");
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.int "sniffed and dropped" 0 (List.length received.(2));
        check Alcotest.int "counted" 1 (Sdnctl.Parental_control.sniffed_drops pc);
        (* an allowed Host on a *different* server flows through; the same
           server IP stays collaterally blocked by the pinned drop rule *)
        send 0 (http ~server:3 "fine.example");
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 40));
        check Alcotest.int "allowed host forwarded" 1 (List.length received.(3)));
    tc "block and unblock at runtime" (fun () ->
        let user = Ipv4_addr.of_octets 10 0 0 1 in
        let site = Ipv4_addr.of_octets 10 0 0 3 in
        let pc =
          Sdnctl.Parental_control.create ~sites:[ ("x.example", site) ] ~blocked:[] ()
        in
        let engine, _, ctrl, _, send, received =
          rig [ Sdnctl.Parental_control.app pc; Sdnctl.L2_learning.create () ]
        in
        let http () =
          Packet.tcp ~dst:(mac 3) ~src:(mac 1) ~ip_src:user ~ip_dst:site
            ~src_port:1234 ~dst_port:80
            (Http_lite.render_request (Http_lite.get ~host:"x.example" "/"))
        in
        send 0 (http ());
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 20));
        check Alcotest.int "initially allowed" 1 (List.length received.(2));
        Sdnctl.Parental_control.block pc ctrl ~user ~host:"x.example";
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 25));
        send 0 (http ());
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 45));
        check Alcotest.int "now blocked" 1 (List.length received.(2));
        Sdnctl.Parental_control.unblock pc ctrl ~user ~host:"x.example";
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 50));
        send 0 (http ());
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 70));
        check Alcotest.int "allowed again" 2 (List.length received.(2));
        check Alcotest.bool "list empty" true
          (Sdnctl.Parental_control.blocked_list pc = []));
  ]

let suite =
  [
    ("controller.channel", channel_tests @ error_tests);
    ("controller.l2", l2_tests);
    ("controller.load_balancer", lb_tests);
    ("controller.dmz", dmz_tests);
    ("controller.parental_control", pc_tests);
  ]
