(* QCheck generators shared by the property tests. *)

open Netpkt

let mac_gen =
  QCheck2.Gen.map
    (fun n -> Mac_addr.of_int64 (Int64.of_int n))
    (QCheck2.Gen.int_bound 0xffffff)

let unicast_mac_gen =
  (* make_local guarantees the group bit is clear *)
  QCheck2.Gen.map Mac_addr.make_local (QCheck2.Gen.int_bound 0xffff)

let ip_gen =
  QCheck2.Gen.map
    (fun n -> Ipv4_addr.of_int32 (Int32.of_int n))
    (QCheck2.Gen.int_bound 0x3fffffff)

let prefix_gen =
  QCheck2.Gen.map2
    (fun ip len -> Ipv4_addr.Prefix.make ip len)
    ip_gen
    (QCheck2.Gen.int_range 0 32)

let port_gen = QCheck2.Gen.int_bound 0xffff

let payload_gen =
  QCheck2.Gen.map
    (fun chars -> String.init (List.length chars) (List.nth chars))
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 64) QCheck2.Gen.printable)

let vlan_gen =
  QCheck2.Gen.map2
    (fun vid pcp -> Vlan.make ~pcp vid)
    (QCheck2.Gen.int_range 1 4094)
    (QCheck2.Gen.int_range 0 7)

let l4_gen =
  let open QCheck2.Gen in
  oneof
    [
      map3
        (fun sp dp payload -> Ipv4.Udp (Udp.make ~src_port:sp ~dst_port:dp payload))
        port_gen port_gen payload_gen;
      map3
        (fun sp dp payload ->
          Ipv4.Tcp (Tcp.make ~src_port:sp ~dst_port:dp ~flags:Tcp.syn payload))
        port_gen port_gen payload_gen;
      map2
        (fun id seq -> Ipv4.Icmp (Icmp.echo_request ~id ~seq ()))
        (int_bound 0xffff) (int_bound 0xffff);
    ]

let l3_gen =
  let open QCheck2.Gen in
  oneof
    [
      map3
        (fun src dst l4 -> Packet.Ip (Ipv4.make ~src ~dst l4))
        ip_gen ip_gen l4_gen;
      map3
        (fun sha spa tpa -> Packet.Arp (Arp.request ~sha ~spa ~tpa))
        unicast_mac_gen ip_gen ip_gen;
    ]

let packet_gen =
  let open QCheck2.Gen in
  map3
    (fun (dst, src) vlans l3 -> Packet.make ~vlans ~dst ~src l3)
    (pair unicast_mac_gen unicast_mac_gen)
    (list_size (int_bound 2) vlan_gen)
    l3_gen

let packet_print pkt = Format.asprintf "%a" Packet.pp pkt
