test/test_sampling.ml: Alcotest Engine Experiments_lib Harmless Host Netpkt Rng Sdnctl Sim_time Simnet Softswitch Traffic
