test/gen.ml: Arp Format Icmp Int32 Int64 Ipv4 Ipv4_addr List Mac_addr Netpkt Packet QCheck2 String Tcp Udp Vlan
