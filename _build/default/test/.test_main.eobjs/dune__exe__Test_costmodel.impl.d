test/test_costmodel.ml: Alcotest Catalog Cost Costmodel Float List QCheck2 QCheck_alcotest Scenario
