test/test_failover.ml: Alcotest Array Engine Ethswitch Harmless Host Legacy_switch Link Mgmt Port_config Printf Sdnctl Sim_time Simnet Softswitch
