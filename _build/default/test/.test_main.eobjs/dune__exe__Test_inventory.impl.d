test/test_inventory.ml: Alcotest Engine Ethswitch Experiments_lib Harmless Host Ipv4_addr Legacy_switch Link List Mac_addr Mac_table Netpkt Node Openflow Packet Sdnctl Sim_time Simnet Stats
