test/test_properties.ml: Alcotest Array Capture Engine Ethswitch Experiments_lib Harmless Host List Mgmt Netpkt Packet Printf Rng Sdnctl Sim_time Simnet Softswitch Stats String Vlan
