test/test_dns.ml: Alcotest Dns_lite Engine Experiments_lib Format Gen Harmless Host Ipv4_addr Link List Mac_addr Netpkt QCheck2 QCheck_alcotest Sdnctl Sim_time Simnet String Wire
