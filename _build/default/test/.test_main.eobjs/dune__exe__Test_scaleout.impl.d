test/test_scaleout.ml: Alcotest Array Engine Ethswitch Experiments_lib Harmless Host Legacy_switch Mgmt Port_config Sdnctl Sim_time Simnet
