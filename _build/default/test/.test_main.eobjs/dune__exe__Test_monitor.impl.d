test/test_monitor.ml: Alcotest Engine Harmless Host Netpkt Packet Rng Sdnctl Sim_time Simnet Traffic
