test/test_wire.ml: Alcotest Gen Int32 Netpkt QCheck2 QCheck_alcotest String Wire
