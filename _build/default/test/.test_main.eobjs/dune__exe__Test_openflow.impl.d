test/test_openflow.ml: Alcotest Flow_entry Flow_table Gen Group_table Int Ipv4 Ipv4_addr List Mac_addr Netpkt Of_action Of_match Openflow Packet Pipeline QCheck2 QCheck_alcotest Vlan
