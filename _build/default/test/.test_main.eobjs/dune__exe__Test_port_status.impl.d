test/test_port_status.ml: Alcotest Array Engine Flow_table Ipv4_addr Link List Mac_addr Netpkt Node Of_codec Of_message Openflow Packet Pipeline Printf Sdnctl Sim_time Simnet Softswitch
