test/test_tcp_session.ml: Alcotest Char Engine Experiments_lib Harmless Host Ipv4_addr Link Mac_addr Netpkt Sim_time Simnet String Tcp_session
