test/test_netpkt.ml: Alcotest Arp Bytes Char Checksum Gen Http_lite Icmp Ipv4 Ipv4_addr List Mac_addr Netpkt Packet Printf QCheck2 QCheck_alcotest String Tcp Udp Vlan Wire
