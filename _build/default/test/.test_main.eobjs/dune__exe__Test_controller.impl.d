test/test_controller.ml: Alcotest Array Engine Flow_table Http_lite Ipv4 Ipv4_addr Link List Mac_addr Netpkt Node Of_match Of_message Openflow Packet Pipeline Printf Sdnctl Sim_time Simnet Softswitch
