test/test_impairments.ml: Alcotest Engine Ethswitch Int Ipv4_addr Legacy_switch Link List Mac_addr Netpkt Node Packet Port_config Sim_time Simnet Stats
