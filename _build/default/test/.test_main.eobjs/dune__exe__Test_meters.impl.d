test/test_meters.ml: Alcotest Experiments_lib Flow_entry Flow_table Ipv4_addr List Mac_addr Meter_table Netpkt Of_action Of_match Of_message Openflow Packet Pipeline Simnet Softswitch String
