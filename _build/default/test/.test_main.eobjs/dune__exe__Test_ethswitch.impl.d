test/test_ethswitch.ml: Alcotest Array Engine Ethswitch Ipv4_addr Legacy_switch Link List Mac_addr Mac_table Netpkt Node Packet Port_config Printf Sim_time Simnet Stats Vlan
