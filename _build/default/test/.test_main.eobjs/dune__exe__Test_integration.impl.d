test/test_integration.ml: Alcotest Array Engine Ethswitch Experiments_lib Harmless Host Ipv4_addr Link List Mac_addr Netpkt Node Openflow Packet Rng Sdnctl Sim_time Simnet Softswitch Traffic
