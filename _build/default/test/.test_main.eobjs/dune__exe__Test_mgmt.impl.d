test/test_mgmt.ml: Alcotest Device Device_config Dialect Ethswitch Harmless Int Legacy_switch List Mgmt Mib Napalm Netpkt Oid Port_config Printf QCheck2 QCheck_alcotest Simnet Snmp String
