open Openflow
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let band rate_kbps burst_kb = { Meter_table.rate_kbps; burst_kb }

let meter_table_tests =
  [
    tc "passes within burst, drops beyond, refills over time" (fun () ->
        let t = Meter_table.create () in
        (* 8 Mbps, 1 KB burst: the bucket holds 8000 bits = 1000 bytes *)
        Meter_table.add t ~id:1 (band 8_000 1);
        check Alcotest.bool "first 500B" true
          (Meter_table.apply t ~id:1 ~now_ns:0 ~bytes:500 = `Pass);
        check Alcotest.bool "second 500B" true
          (Meter_table.apply t ~id:1 ~now_ns:0 ~bytes:500 = `Pass);
        check Alcotest.bool "bucket empty" true
          (Meter_table.apply t ~id:1 ~now_ns:0 ~bytes:100 = `Drop);
        (* 8 Mbps = 1 byte/us: after 100 us there is room for 100 bytes *)
        check Alcotest.bool "refilled" true
          (Meter_table.apply t ~id:1 ~now_ns:100_000 ~bytes:100 = `Pass);
        check Alcotest.bool "but only just" true
          (Meter_table.apply t ~id:1 ~now_ns:100_000 ~bytes:100 = `Drop));
    tc "long-run throughput equals the configured rate" (fun () ->
        let t = Meter_table.create () in
        Meter_table.add t ~id:1 (band 80_000 10) (* 80 Mbps = 10 bytes/us *);
        let passed_bytes = ref 0 in
        (* offer 1000B every 50us = 160 Mbps, for 100ms *)
        for i = 0 to 1999 do
          if Meter_table.apply t ~id:1 ~now_ns:(i * 50_000) ~bytes:1000 = `Pass then
            passed_bytes := !passed_bytes + 1000
        done;
        let mbps = float_of_int (!passed_bytes * 8) /. 0.1 /. 1e6 in
        check Alcotest.bool "within 5% of 80" true (mbps > 76.0 && mbps < 84.0));
    tc "unknown meter passes" (fun () ->
        let t = Meter_table.create () in
        check Alcotest.bool "pass" true
          (Meter_table.apply t ~id:9 ~now_ns:0 ~bytes:1500 = `Pass));
    tc "add/modify/remove lifecycle" (fun () ->
        let t = Meter_table.create () in
        Meter_table.add t ~id:1 (band 1000 1);
        check Alcotest.bool "dup" true
          (try Meter_table.add t ~id:1 (band 1 1); false
           with Invalid_argument _ -> true);
        Meter_table.modify t ~id:1 (band 2000 2);
        check Alcotest.bool "modify absent" true
          (try Meter_table.modify t ~id:2 (band 1 1); false with Not_found -> true);
        Meter_table.remove t ~id:1;
        check Alcotest.bool "gone" false (Meter_table.mem t ~id:1);
        check Alcotest.bool "bad band" true
          (try Meter_table.add t ~id:3 (band 0 1); false
           with Invalid_argument _ -> true));
    tc "stats count passes and drops" (fun () ->
        let t = Meter_table.create () in
        Meter_table.add t ~id:1 (band 8_000 1);
        ignore (Meter_table.apply t ~id:1 ~now_ns:0 ~bytes:1000);
        ignore (Meter_table.apply t ~id:1 ~now_ns:0 ~bytes:1000);
        check Alcotest.(option (pair int int)) "1/1" (Some (1, 1))
          (Meter_table.stats t ~id:1));
  ]

let udp_pkt () =
  Packet.udp
    ~dst:(Mac_addr.make_local 2)
    ~src:(Mac_addr.make_local 1)
    ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
    ~ip_dst:(Ipv4_addr.of_string "10.0.0.2") ~src_port:1 ~dst_port:2
    (String.make 958 'x')
(* 958B payload -> 1000B frame *)

let pipeline_tests =
  [
    tc "metered-out packets produce no outputs" (fun () ->
        let p = Pipeline.create ~num_tables:2 () in
        Meter_table.add (Pipeline.meters p) ~id:1 (band 8_000 1);
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Meter 1; Flow_entry.Goto_table 1 ]);
        Flow_table.add (Pipeline.table p 1) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [ Flow_entry.Apply_actions [ Of_action.output 1 ] ]);
        (* bucket = 1000B: first passes, second drops *)
        let r1 = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.int "first forwarded" 1 (List.length r1.Pipeline.outputs);
        let r2 = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.int "second dropped" 0 (List.length r2.Pipeline.outputs);
        check Alcotest.bool "not a miss" false r2.Pipeline.table_miss);
    tc "meter drop also cancels the pending action set" (fun () ->
        let p = Pipeline.create ~num_tables:1 () in
        Meter_table.add (Pipeline.meters p) ~id:1 (band 8_000 1);
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Write_actions [ Of_action.output 3 ];
               Flow_entry.Meter 1;
             ]);
        ignore (Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()));
        let r = Pipeline.execute p ~now_ns:0 ~in_port:0 (udp_pkt ()) in
        check Alcotest.int "no deferred output" 0 (List.length r.Pipeline.outputs));
    tc "meter-mod through the switch agent" (fun () ->
        let engine = Simnet.Engine.create () in
        let sw = Softswitch.Soft_switch.create engine ~name:"s" ~ports:2 () in
        let errors = ref 0 in
        Softswitch.Soft_switch.set_controller sw (function
          | Of_message.Error _ -> incr errors
          | _ -> ());
        Softswitch.Soft_switch.handle_message sw
          (Of_message.Meter_mod (Of_message.Add_meter { id = 1; band = band 1000 1 }));
        check Alcotest.bool "installed" true
          (Meter_table.mem (Pipeline.meters (Softswitch.Soft_switch.pipeline sw)) ~id:1);
        Softswitch.Soft_switch.handle_message sw
          (Of_message.Meter_mod (Of_message.Add_meter { id = 1; band = band 1000 1 }));
        check Alcotest.int "duplicate is an error" 1 !errors;
        Softswitch.Soft_switch.handle_message sw
          (Of_message.Meter_mod (Of_message.Delete_meter { id = 1 }));
        check Alcotest.bool "deleted" false
          (Meter_table.mem (Pipeline.meters (Softswitch.Soft_switch.pipeline sw)) ~id:1));
    tc "policing survives the caching dataplane" (fun () ->
        (* The OVS-like cache replays instructions, so meters must still
           fire per packet on cache hits. *)
        let p = Pipeline.create ~num_tables:1 () in
        Meter_table.add (Pipeline.meters p) ~id:1 (band 8_000 1);
        Flow_table.add (Pipeline.table p 0) ~now_ns:0
          (Flow_entry.make ~match_:Of_match.any
             [
               Flow_entry.Meter 1;
               Flow_entry.Apply_actions [ Of_action.output 1 ];
             ]);
        let dp = Softswitch.Ovs_like.create p in
        let forwarded = ref 0 in
        for _ = 1 to 10 do
          let r, _ = dp.Softswitch.Dataplane.process ~now_ns:0 ~in_port:0 (udp_pkt ()) in
          if r.Pipeline.outputs <> [] then incr forwarded
        done;
        (* bucket of 1000B admits exactly one 1000B frame at t=0 *)
        check Alcotest.int "exactly one passed" 1 !forwarded);
  ]

let e12_tests =
  [
    Alcotest.test_case "E12 policing holds the cap end-to-end" `Slow (fun () ->
        let r = Experiments_lib.E12_rate_limit.measure_run () in
        check Alcotest.bool "limited near cap" true
          (r.Experiments_lib.E12_rate_limit.limited_mbps
           < 1.1 *. r.Experiments_lib.E12_rate_limit.cap_mbps);
        check Alcotest.bool "limited at least 80% of cap" true
          (r.Experiments_lib.E12_rate_limit.limited_mbps
           > 0.8 *. r.Experiments_lib.E12_rate_limit.cap_mbps);
        check Alcotest.bool "unlimited unaffected" true
          (r.Experiments_lib.E12_rate_limit.unlimited_mbps > 390.0));
  ]

let suite =
  [
    ("meters.table", meter_table_tests);
    ("meters.pipeline", pipeline_tests);
    ("meters.e2e", e12_tests);
  ]
