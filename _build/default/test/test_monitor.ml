open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let monitor_tests =
  [
    tc "traffic matrix counts exactly the tracked pairs" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let pairs =
          [
            (Harmless.Deployment.host_ip 0, Harmless.Deployment.host_ip 2);
            (Harmless.Deployment.host_ip 1, Harmless.Deployment.host_ip 2);
          ]
        in
        let mon = Sdnctl.Monitor.create ~pairs () in
        let ctrl =
          let c = Sdnctl.Controller.create engine () in
          Sdnctl.Controller.add_app c (Sdnctl.Monitor.app mon);
          Sdnctl.Controller.add_app c (Sdnctl.Rate_limiter.table1_l2 ~num_hosts:3);
          ignore
            (Sdnctl.Controller.attach_switch c (Harmless.Deployment.controller_switch d));
          Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
          c
        in
        (* host0 sends 7 packets to host2; host1 sends 3 *)
        let send src n =
          let h = Harmless.Deployment.host d src in
          for i = 1 to n do
            Host.send h
              (Packet.udp
                 ~dst:(Harmless.Deployment.host_mac 2)
                 ~src:(Host.mac h) ~ip_src:(Host.ip h)
                 ~ip_dst:(Harmless.Deployment.host_ip 2)
                 ~src_port:(1000 + i) ~dst_port:9 "monitor me")
          done
        in
        send 0 7;
        send 1 3;
        Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 20));
        Sdnctl.Monitor.poll mon ctrl;
        Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 10));
        (match Sdnctl.Monitor.matrix mon with
        | [ (_, (p0, b0)); (_, (p1, b1)) ] ->
            check Alcotest.int "pair0 packets" 7 p0;
            check Alcotest.int "pair1 packets" 3 p1;
            check Alcotest.bool "bytes counted" true (b0 > b1 && b1 > 0)
        | _ -> Alcotest.fail "matrix shape");
        check Alcotest.int "one poll" 1 (Sdnctl.Monitor.polls_completed mon));
    tc "periodic polling updates the matrix over time" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let pairs = [ (Harmless.Deployment.host_ip 0, Harmless.Deployment.host_ip 1) ] in
        let mon = Sdnctl.Monitor.create ~pairs () in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.Monitor.app mon);
        Sdnctl.Controller.add_app ctrl (Sdnctl.Rate_limiter.table1_l2 ~num_hosts:2);
        ignore
          (Sdnctl.Controller.attach_switch ctrl (Harmless.Deployment.controller_switch d));
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        let h0 = Harmless.Deployment.host d 0 in
        ignore
          (Traffic.udp_stream ~rng:(Rng.create 1) ~src:h0
             ~dst_mac:(Harmless.Deployment.host_mac 1)
             ~dst_ip:(Harmless.Deployment.host_ip 1)
             ~stop:(Sim_time.add (Engine.now engine) (Sim_time.ms 50))
             (Traffic.Cbr 10_000.0) (Traffic.Fixed 128) ());
        Sdnctl.Monitor.start_polling mon ctrl engine ~period:(Sim_time.ms 15) ~rounds:4;
        Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 70));
        check Alcotest.int "four polls" 4 (Sdnctl.Monitor.polls_completed mon);
        match Sdnctl.Monitor.matrix mon with
        | [ (_, (packets, _)) ] ->
            (* 10kpps for 50ms = 500 packets *)
            check Alcotest.bool "saw the stream" true (packets >= 450 && packets <= 500)
        | _ -> Alcotest.fail "matrix shape");
  ]

let suite = [ ("monitor", monitor_tests) ]
