open Simnet
open Ethswitch

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* A redundant-trunk rig: 2 hosts, legacy switch with ports
   0-1 = hosts, 2 = primary trunk, 3 = backup trunk. *)
let rig () =
  let engine = Engine.create () in
  let legacy = Legacy_switch.create engine ~name:"resilient" ~ports:4 () in
  let device = Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Cisco_like () in
  let fo =
    match
      Harmless.Failover.provision engine ~device ~primary_trunk:2 ~backup_trunk:3
        ~access_ports:[ 0; 1 ] ()
    with
    | Ok f -> f
    | Error m -> failwith m
  in
  let hosts =
    Array.init 2 (fun i ->
        let h =
          Host.create engine
            ~name:(Printf.sprintf "h%d" i)
            ~mac:(Harmless.Deployment.host_mac i)
            ~ip:(Harmless.Deployment.host_ip i) ()
        in
        ignore (Link.connect (Host.node h, 0) (Legacy_switch.node legacy, i));
        h)
  in
  let primary =
    Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
      (Legacy_switch.node legacy, 2)
      (Softswitch.Soft_switch.node (Harmless.Failover.ss1 fo), 0)
  in
  let _backup =
    Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
      (Legacy_switch.node legacy, 3)
      (Softswitch.Soft_switch.node (Harmless.Failover.ss1 fo), 1)
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore (Sdnctl.Controller.attach_switch ctrl (Harmless.Failover.ss2 fo));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
  (engine, legacy, fo, hosts, primary)

let ping_works engine hosts =
  let before = Host.echo_replies hosts.(0) in
  Host.ping hosts.(0) ~dst_mac:(Host.mac hosts.(1)) ~dst_ip:(Host.ip hosts.(1))
    ~seq:(before + 1);
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 80));
  Host.echo_replies hosts.(0) > before

let failover_tests =
  [
    tc "provision keeps the backup trunk shut" (fun () ->
        let _, legacy, fo, _, _ = rig () in
        check Alcotest.bool "primary active" true
          (Harmless.Failover.active fo = `Primary);
        (match Legacy_switch.port_mode legacy ~port:2 with
        | Port_config.Trunk _ -> ()
        | _ -> Alcotest.fail "primary not a trunk");
        check Alcotest.bool "backup disabled" true
          (Legacy_switch.port_mode legacy ~port:3 = Port_config.Disabled));
    tc "traffic flows over the primary" (fun () ->
        let engine, _, _, hosts, _ = rig () in
        check Alcotest.bool "ping" true (ping_works engine hosts));
    tc "manual failover restores connectivity after trunk loss" (fun () ->
        let engine, legacy, fo, hosts, primary = rig () in
        check Alcotest.bool "before" true (ping_works engine hosts);
        Link.disconnect primary;
        check Alcotest.bool "broken" false (ping_works engine hosts);
        (match Harmless.Failover.activate_backup fo with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        check Alcotest.bool "backup active" true
          (Harmless.Failover.active fo = `Backup);
        check Alcotest.bool "backup is now the trunk" true
          (match Legacy_switch.port_mode legacy ~port:3 with
          | Port_config.Trunk _ -> true
          | _ -> false);
        check Alcotest.bool "primary shut" true
          (Legacy_switch.port_mode legacy ~port:2 = Port_config.Disabled);
        check Alcotest.bool "after" true (ping_works engine hosts);
        check Alcotest.int "one failover" 1 (Harmless.Failover.failovers fo));
    tc "watchdog fails over automatically" (fun () ->
        let engine, _, fo, hosts, primary = rig () in
        Harmless.Failover.start_watchdog fo ~period:(Sim_time.ms 10);
        check Alcotest.bool "before" true (ping_works engine hosts);
        Link.disconnect primary;
        (* let the watchdog notice *)
        Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 30));
        check Alcotest.bool "auto failover" true
          (Harmless.Failover.active fo = `Backup);
        check Alcotest.bool "healed" true (ping_works engine hosts));
    tc "activate_backup is idempotent" (fun () ->
        let _, _, fo, _, _ = rig () in
        (match Harmless.Failover.activate_backup fo with Ok () -> () | Error m -> Alcotest.fail m);
        (match Harmless.Failover.activate_backup fo with Ok () -> () | Error m -> Alcotest.fail m);
        check Alcotest.int "counted once" 1 (Harmless.Failover.failovers fo));
    tc "invalid trunk layouts rejected" (fun () ->
        let engine = Engine.create () in
        let legacy = Legacy_switch.create engine ~name:"bad" ~ports:4 () in
        let device =
          Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Cisco_like ()
        in
        (match
           Harmless.Failover.provision engine ~device ~primary_trunk:2
             ~backup_trunk:2 ~access_ports:[ 0; 1 ] ()
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "same trunk accepted");
        match
          Harmless.Failover.provision engine ~device ~primary_trunk:2
            ~backup_trunk:0 ~access_ports:[ 0; 1 ] ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "backup inside access ports accepted");
  ]

let suite = [ ("failover", failover_tests) ]
