(* End-to-end integration: full deployments, the experiment scenarios in
   miniature, transparency, and failure injection. *)

open Simnet
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let fig1_tests =
  [
    tc "E1 walk-through checks all pass" (fun () ->
        List.iter
          (fun (c : Experiments_lib.E1_walkthrough.check) ->
            if not c.Experiments_lib.E1_walkthrough.ok then
              Alcotest.failf "step failed: %s (expected %s, observed %s)"
                c.Experiments_lib.E1_walkthrough.step
                c.Experiments_lib.E1_walkthrough.expected
                c.Experiments_lib.E1_walkthrough.observed)
          (Experiments_lib.E1_walkthrough.run_checks ()));
    tc "ping works across every host pair through HARMLESS" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d [ Sdnctl.L2_learning.create () ]);
        for i = 0 to 3 do
          for j = 0 to 3 do
            if i <> j then
              Host.ping
                (Harmless.Deployment.host d i)
                ~dst_mac:(Harmless.Deployment.host_mac j)
                ~dst_ip:(Harmless.Deployment.host_ip j)
                ~seq:((i * 4) + j)
          done
        done;
        Experiments_lib.Common.run_for engine (Sim_time.ms 100);
        Array.iter
          (fun h -> check Alcotest.int (Host.name h) 3 (Host.echo_replies h))
          d.Harmless.Deployment.hosts);
  ]

let usecase_tests =
  [
    tc_slow "E7 DMZ: zero violations, zero false blocks" (fun () ->
        let r = Experiments_lib.E7_dmz.measure () in
        check Alcotest.int "violations" 0 r.Experiments_lib.E7_dmz.violations;
        check Alcotest.int "false blocks" 0 r.Experiments_lib.E7_dmz.false_blocks);
    tc_slow "E8 parental control: all phases behave" (fun () ->
        let results = Experiments_lib.E8_parental_control.measure () in
        List.iter2
          (fun (r : Experiments_lib.E8_parental_control.fetch) want ->
            check Alcotest.bool
              (r.Experiments_lib.E8_parental_control.who ^ " " ^ r.Experiments_lib.E8_parental_control.when_)
              want r.Experiments_lib.E8_parental_control.got_response)
          results Experiments_lib.E8_parental_control.expected);
    tc_slow "E6 load balancer: all responses, all backends used" (fun () ->
        let r = Experiments_lib.E6_load_balancer.measure () in
        check Alcotest.int "responses" Experiments_lib.E6_load_balancer.requests
          r.Experiments_lib.E6_load_balancer.responses_ok;
        List.iter
          (fun (_, n) -> check Alcotest.bool "backend used" true (n > 0))
          r.Experiments_lib.E6_load_balancer.per_backend;
        check Alcotest.bool "not absurdly skewed" true
          (r.Experiments_lib.E6_load_balancer.balance_ratio < 3.0));
  ]

let transparency_tests =
  [
    tc_slow "E9 scenarios are all equivalent" (fun () ->
        List.iter
          (fun (name, (v : Harmless.Transparency.verdict)) ->
            check Alcotest.bool name true v.Harmless.Transparency.equivalent;
            check Alcotest.bool (name ^ " delivered something") true
              (v.Harmless.Transparency.plain_delivered > 0))
          (Experiments_lib.E9_transparency.rows ()));
  ]

let failure_tests =
  [
    tc "trunk failure stops forwarding without crashing" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d [ Sdnctl.L2_learning.create () ]);
        let h0 = Harmless.Deployment.host d 0 and h1 = Harmless.Deployment.host d 1 in
        Host.ping h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~seq:1;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.int "worked before" 1 (Host.echo_replies h0);
        (match d.Harmless.Deployment.kind with
        | Harmless.Deployment.Harmless { trunk_link; _ } -> Link.disconnect trunk_link
        | _ -> assert false);
        Host.ping h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~seq:2;
        Experiments_lib.Common.run_for engine (Sim_time.ms 50);
        check Alcotest.int "dead after" 1 (Host.echo_replies h0));
    tc "rx-ring overload drops are counted, not fatal" (fun () ->
        let engine = Engine.create () in
        (* a deliberately slow software switch: 0.01 GHz, tiny ring *)
        let pmd =
          {
            Softswitch.Pmd.default_config with
            Softswitch.Pmd.ghz = 0.01;
            rx_ring = 8;
          }
        in
        let d =
          match
            Harmless.Deployment.build_harmless engine ~num_hosts:2
              ~dataplane:Softswitch.Soft_switch.Eswitch ~pmd ()
          with
          | Ok d -> d
          | Error m -> failwith m
        in
        ignore
          (Experiments_lib.Common.attach_with_apps d
             [ Experiments_lib.Common.proactive_l2 ~num_hosts:2 ]);
        let h0 = Harmless.Deployment.host d 0 in
        let rng = Rng.create 4 in
        ignore
          (Traffic.udp_stream ~rng ~src:h0
             ~dst_mac:(Harmless.Deployment.host_mac 1)
             ~dst_ip:(Harmless.Deployment.host_ip 1)
             ~stop:(Sim_time.add (Engine.now engine) (Sim_time.ms 2))
             (Traffic.Cbr 1_000_000.0) (Traffic.Fixed 64) ());
        Experiments_lib.Common.run_for engine (Sim_time.ms 10);
        let ss1_stats =
          match d.Harmless.Deployment.kind with
          | Harmless.Deployment.Harmless { prov; _ } ->
              Softswitch.Soft_switch.stats prov.Harmless.Manager.ss1
          | _ -> assert false
        in
        check Alcotest.bool "pmd dropped" true
          (List.assoc "pmd_dropped" ss1_stats > 0));
    tc "flow-table overflow on a small COTS switch is reported" (fun () ->
        let engine = Engine.create () in
        let d =
          Harmless.Deployment.build_plain_openflow engine ~num_hosts:2
            ~dataplane:Softswitch.Soft_switch.Hardware ~max_flow_entries:3 ()
        in
        let ctrl = Sdnctl.Controller.create engine () in
        let dpid =
          Sdnctl.Controller.attach_switch ctrl (Harmless.Deployment.controller_switch d)
        in
        Experiments_lib.Common.run_for engine (Sim_time.ms 5);
        for i = 0 to 9 do
          Sdnctl.Controller.install ctrl dpid
            (Openflow.Of_message.add_flow ~priority:(100 + i)
               ~match_:Openflow.Of_match.(any |> in_port i)
               [])
        done;
        Experiments_lib.Common.run_for engine (Sim_time.ms 10);
        check Alcotest.bool "errors received" true
          (List.length (Sdnctl.Controller.errors_received ctrl) >= 7));
    tc "legacy mac-table pressure degrades to flooding, not loss" (fun () ->
        let engine = Engine.create () in
        let sw =
          Ethswitch.Legacy_switch.create engine ~name:"tiny" ~ports:2
            ~mac_table_capacity:4 ()
        in
        let got = ref 0 in
        let a = Node.create engine ~name:"a" ~ports:1 in
        let b = Node.create engine ~name:"b" ~ports:1 in
        Node.set_handler b (fun _ ~in_port:_ _ -> incr got);
        ignore (Link.connect (a, 0) (Ethswitch.Legacy_switch.node sw, 0));
        ignore (Link.connect (b, 0) (Ethswitch.Legacy_switch.node sw, 1));
        (* 100 distinct sources overflow the 4-entry table *)
        for i = 1 to 100 do
          Node.transmit a ~port:0
            (Packet.udp
               ~dst:(Mac_addr.make_local 9999)
               ~src:(Mac_addr.make_local i)
               ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
               ~ip_dst:(Ipv4_addr.of_string "10.0.0.2")
               ~src_port:1 ~dst_port:2 "x")
        done;
        Engine.run engine;
        check Alcotest.int "all flooded through" 100 !got);
  ]

let mgmt_workflow_tests =
  [
    tc_slow "E10 provisions and rolls back on both dialects" (fun () ->
        List.iter
          (fun (r : Experiments_lib.E10_mgmt.row) ->
            check Alcotest.bool
              (r.Experiments_lib.E10_mgmt.vendor ^ " rollback")
              true r.Experiments_lib.E10_mgmt.rollback_ok;
            check Alcotest.bool "snmp used" true
              (r.Experiments_lib.E10_mgmt.snmp_requests > 0))
          (Experiments_lib.E10_mgmt.rows ()));
  ]

let suite =
  [
    ("integration.fig1", fig1_tests);
    ("integration.usecases", usecase_tests);
    ("integration.transparency", transparency_tests);
    ("integration.failures", failure_tests);
    ("integration.mgmt", mgmt_workflow_tests);
  ]
