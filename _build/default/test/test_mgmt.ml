open Mgmt
open Ethswitch

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- OIDs ---- *)

let oid = Oid.of_string

let oid_tests =
  [
    tc "string round-trip" (fun () ->
        check Alcotest.string "same" "1.3.6.1.2.1"
          (Oid.to_string (oid "1.3.6.1.2.1"));
        check Alcotest.string "leading dot" "1.3.6"
          (Oid.to_string (oid ".1.3.6")));
    tc "bad input rejected" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true
              (try ignore (oid s); false with Invalid_argument _ -> true))
          [ ""; "1.a.2"; "1.-3" ]);
    tc "lexicographic compare" (fun () ->
        check Alcotest.bool "prefix first" true (Oid.compare (oid "1.3") (oid "1.3.1") < 0);
        check Alcotest.bool "arc order" true (Oid.compare (oid "1.3.1") (oid "1.3.2") < 0);
        check Alcotest.int "equal" 0 (Oid.compare (oid "1.3") (oid "1.3")));
    tc "is_prefix" (fun () ->
        check Alcotest.bool "yes" true (Oid.is_prefix (oid "1.3") (oid "1.3.6.1"));
        check Alcotest.bool "reflexive" true (Oid.is_prefix (oid "1.3") (oid "1.3"));
        check Alcotest.bool "no" false (Oid.is_prefix (oid "1.4") (oid "1.3.6")));
  ]

(* ---- MIB + SNMP ---- *)

let mib_with_scalar () =
  let mib = Mib.create () in
  let value = ref 10 in
  Mib.register_scalar mib (oid "1.3.1.1")
    ~get:(fun () -> Mib.Int !value)
    ~set:(fun v ->
      match v with
      | Mib.Int n ->
          value := n;
          Ok ()
      | Mib.Str _ -> Error "wrongType")
    ();
  Mib.register_scalar mib (oid "1.3.1.2") ~get:(fun () -> Mib.Str "hello") ();
  (mib, value)

let mib_tests =
  [
    tc "get reads live values" (fun () ->
        let mib, value = mib_with_scalar () in
        check Alcotest.bool "10" true (Mib.get mib (oid "1.3.1.1") = Some (Mib.Int 10));
        value := 42;
        check Alcotest.bool "42" true (Mib.get mib (oid "1.3.1.1") = Some (Mib.Int 42)));
    tc "set round-trips through the provider" (fun () ->
        let mib, value = mib_with_scalar () in
        check Alcotest.bool "ok" true (Mib.set mib (oid "1.3.1.1") (Mib.Int 7) = Ok ());
        check Alcotest.int "stored" 7 !value);
    tc "set on read-only rejected" (fun () ->
        let mib, _ = mib_with_scalar () in
        check Alcotest.bool "notWritable" true
          (Mib.set mib (oid "1.3.1.2") (Mib.Int 1) = Error "notWritable"));
    tc "next walks in order" (fun () ->
        let mib, _ = mib_with_scalar () in
        (match Mib.next mib (oid "1.3.1.1") with
        | Some (o, _) -> check Alcotest.string "next" "1.3.1.2" (Oid.to_string o)
        | None -> Alcotest.fail "expected next");
        check Alcotest.bool "end" true (Mib.next mib (oid "1.3.1.2") = None));
    tc "overlapping mounts rejected" (fun () ->
        let mib, _ = mib_with_scalar () in
        check Alcotest.bool "overlap" true
          (try
             Mib.register_scalar mib (oid "1.3.1.1") ~get:(fun () -> Mib.Int 0) ();
             false
           with Invalid_argument _ -> true));
    tc "walk filters by prefix" (fun () ->
        let mib, _ = mib_with_scalar () in
        check Alcotest.int "both" 2 (List.length (Mib.walk mib (oid "1.3.1")));
        check Alcotest.int "none" 0 (List.length (Mib.walk mib (oid "1.4"))));
  ]

let snmp_tests =
  [
    tc "communities enforced" (fun () ->
        let mib, _ = mib_with_scalar () in
        let agent = Snmp.create mib in
        check Alcotest.bool "public reads" true
          (Snmp.get agent ~community:"public" (oid "1.3.1.1") = Ok (Mib.Int 10));
        check Alcotest.bool "bad community" true
          (Snmp.get agent ~community:"wrong" (oid "1.3.1.1") = Error Snmp.Bad_community);
        check Alcotest.bool "public cannot write" true
          (Snmp.set agent ~community:"public" (oid "1.3.1.1") (Mib.Int 1)
           = Error Snmp.Bad_community);
        check Alcotest.bool "private writes" true
          (Snmp.set agent ~community:"private" (oid "1.3.1.1") (Mib.Int 1) = Ok ()));
    tc "missing object and end of mib" (fun () ->
        let mib, _ = mib_with_scalar () in
        let agent = Snmp.create mib in
        check Alcotest.bool "noSuchObject" true
          (Snmp.get agent ~community:"public" (oid "9.9") = Error Snmp.No_such_object);
        check Alcotest.bool "endOfMib" true
          (Snmp.get_next agent ~community:"public" (oid "1.3.1.2")
           = Error Snmp.End_of_mib));
    tc "request counting" (fun () ->
        let mib, _ = mib_with_scalar () in
        let agent = Snmp.create mib in
        ignore (Snmp.get agent ~community:"public" (oid "1.3.1.1"));
        ignore (Snmp.walk agent ~community:"public" (oid "1.3"));
        check Alcotest.int "two" 2 (Snmp.requests agent));
  ]

(* ---- Dialects ---- *)

let config_gen =
  let open QCheck2.Gen in
  let mode_gen =
    oneof
      [
        map (fun v -> Port_config.Access v) (int_range 1 4094);
        return Port_config.Disabled;
        map2
          (fun native vids ->
            Port_config.Trunk
              {
                native = (if native = 0 then None else Some native);
                allowed =
                  (if vids = [] then Port_config.All
                   else Port_config.Only (List.sort_uniq Int.compare vids));
              })
          (int_range 0 4094)
          (list_size (int_bound 5) (int_range 1 4094));
      ]
  in
  map2
    (fun n modes ->
      Device_config.make ~hostname:(Printf.sprintf "sw%d" n)
        (List.mapi
           (fun port mode -> { Device_config.port; mode; description = None })
           modes))
    (int_bound 99)
    (list_size (int_range 1 12) mode_gen)

(* Rendering drops empty descriptions; compare modes and hostname only. *)
let same_modes (a : Device_config.t) (b : Device_config.t) =
  String.equal a.Device_config.hostname b.Device_config.hostname
  && List.length a.Device_config.stanzas = List.length b.Device_config.stanzas
  && List.for_all2
       (fun (x : Device_config.stanza) (y : Device_config.stanza) ->
         x.Device_config.port = y.Device_config.port
         && x.Device_config.mode = y.Device_config.mode)
       a.Device_config.stanzas b.Device_config.stanzas

let dialect_tests =
  [
    tc "ios interface naming" (fun () ->
        check Alcotest.string "name" "GigabitEthernet0/1" (Dialect.Ios.interface_name 0);
        check Alcotest.(option int) "parse" (Some 0)
          (Dialect.Ios.parse_interface_name "GigabitEthernet0/1");
        check Alcotest.(option int) "reject eos name" None
          (Dialect.Ios.parse_interface_name "Ethernet1"));
    tc "eos interface naming" (fun () ->
        check Alcotest.string "name" "Ethernet3" (Dialect.Eos.interface_name 2);
        check Alcotest.(option int) "parse" (Some 2)
          (Dialect.Eos.parse_interface_name "Ethernet3"));
    prop "ios render/parse round-trip" config_gen
      ~print:(fun c -> Dialect.Ios.render c)
      (fun config ->
        match Dialect.Ios.parse (Dialect.Ios.render config) with
        | Ok parsed -> same_modes config parsed
        | Error _ -> false);
    prop "eos render/parse round-trip" config_gen
      ~print:(fun c -> Dialect.Eos.render c)
      (fun config ->
        match Dialect.Eos.parse (Dialect.Eos.render config) with
        | Ok parsed -> same_modes config parsed
        | Error _ -> false);
    tc "unknown lines tolerated, bad vlans rejected" (fun () ->
        let text =
          "hostname sw\n!\ninterface GigabitEthernet0/1\n spanning-tree portfast\n switchport mode access\n switchport access vlan 7\n!\n"
        in
        (match Dialect.Ios.parse text with
        | Ok c -> (
            match Device_config.stanza_for c ~port:0 with
            | Some { Device_config.mode = Port_config.Access 7; _ } -> ()
            | _ -> Alcotest.fail "mode lost")
        | Error e -> Alcotest.fail e);
        match
          Dialect.Ios.parse
            "interface GigabitEthernet0/1\n switchport access vlan banana\n"
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should reject");
  ]

(* ---- Device: SNMP agent + NAPALM driver ---- *)

let device_rig vendor =
  let engine = Simnet.Engine.create () in
  let sw = Legacy_switch.create engine ~name:"dev0" ~ports:4 () in
  (engine, sw, Device.create ~switch:sw ~vendor ())

let device_tests =
  [
    tc "snmp system group" (fun () ->
        let _, _, dev = device_rig Device.Cisco_like in
        let agent = Device.snmp dev in
        (match Snmp.get agent ~community:"public" Oid.Std.sys_name with
        | Ok (Mib.Str "dev0") -> ()
        | _ -> Alcotest.fail "sysName");
        match Snmp.get agent ~community:"public" Oid.Std.if_number with
        | Ok (Mib.Int 4) -> ()
        | _ -> Alcotest.fail "ifNumber");
    tc "snmp pvid read and write change the switch" (fun () ->
        let _, sw, dev = device_rig Device.Cisco_like in
        let agent = Device.snmp dev in
        (match Snmp.get agent ~community:"public" (Oid.Std.vlan_port_vlan 1) with
        | Ok (Mib.Int 1) -> ()
        | _ -> Alcotest.fail "default pvid");
        check Alcotest.bool "set" true
          (Snmp.set agent ~community:"private" (Oid.Std.vlan_port_vlan 1) (Mib.Int 77)
           = Ok ());
        check Alcotest.bool "applied" true
          (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 77));
    tc "snmp pvid rejects invalid vids" (fun () ->
        let _, _, dev = device_rig Device.Cisco_like in
        let agent = Device.snmp dev in
        match
          Snmp.set agent ~community:"private" (Oid.Std.vlan_port_vlan 1) (Mib.Int 4095)
        with
        | Error (Snmp.Not_writable _) -> ()
        | _ -> Alcotest.fail "should reject");
    tc "napalm facts and interfaces" (fun () ->
        let _, _, dev = device_rig Device.Arista_like in
        let driver = Device.napalm dev in
        let facts = driver.Napalm.get_facts () in
        check Alcotest.string "driver" "eos" driver.Napalm.driver_name;
        check Alcotest.string "hostname" "dev0" facts.Napalm.hostname;
        check Alcotest.int "interfaces" 4 facts.Napalm.interface_count;
        let ifs = driver.Napalm.get_interfaces () in
        check Alcotest.int "4" 4 (List.length ifs);
        check Alcotest.string "name" "Ethernet1"
          (List.hd ifs).Napalm.if_name);
    tc "candidate -> diff -> commit -> rollback cycle" (fun () ->
        let _, sw, dev = device_rig Device.Cisco_like in
        let driver = Device.napalm dev in
        let target =
          Device_config.make ~hostname:"dev0"
            [
              { Device_config.port = 0; mode = Port_config.Access 101; description = None };
              { Device_config.port = 1; mode = Port_config.Access 102; description = None };
              { Device_config.port = 2; mode = Port_config.Access 1; description = None };
              {
                Device_config.port = 3;
                mode = Port_config.Trunk { native = None; allowed = Port_config.Only [ 101; 102 ] };
                description = None;
              };
            ]
        in
        check Alcotest.bool "load" true
          (driver.Napalm.load_candidate (Dialect.Ios.render target) = Ok ());
        check Alcotest.int "3 diffs" 3 (List.length (driver.Napalm.compare_config ()));
        check Alcotest.bool "commit" true (driver.Napalm.commit () = Ok ());
        check Alcotest.bool "applied" true
          (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 101);
        check Alcotest.bool "rollback" true (driver.Napalm.rollback () = Ok ());
        check Alcotest.bool "restored" true
          (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 1));
    tc "commit without candidate fails; discard drops it" (fun () ->
        let _, _, dev = device_rig Device.Cisco_like in
        let driver = Device.napalm dev in
        (match driver.Napalm.commit () with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "commit of nothing");
        check Alcotest.bool "load" true
          (driver.Napalm.load_candidate (Device.running_config_text dev) = Ok ());
        driver.Napalm.discard ();
        match driver.Napalm.commit () with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "discarded candidate committed");
    tc "malformed candidate rejected" (fun () ->
        let _, _, dev = device_rig Device.Cisco_like in
        let driver = Device.napalm dev in
        match driver.Napalm.load_candidate "interface Nonsense9\n shutdown\n" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "should reject");
    tc "interface counters visible over snmp" (fun () ->
        let engine, sw, dev = device_rig Device.Cisco_like in
        let agent = Device.snmp dev in
        (* push one frame through port 0 *)
        let stub = Simnet.Node.create engine ~name:"stub" ~ports:1 in
        ignore (Simnet.Link.connect (stub, 0) (Legacy_switch.node sw, 0));
        Simnet.Node.transmit stub ~port:0
          (Netpkt.Packet.arp_request
             ~src_mac:(Netpkt.Mac_addr.make_local 1)
             ~src_ip:(Netpkt.Ipv4_addr.of_string "10.0.0.1")
             ~target_ip:(Netpkt.Ipv4_addr.of_string "10.0.0.2"));
        Simnet.Engine.run engine;
        match Snmp.get agent ~community:"public" (Oid.Std.if_in_ucast 1) with
        | Ok (Mib.Int n) -> check Alcotest.int "rx counted" 1 n
        | _ -> Alcotest.fail "counter read");
  ]



(* ---- JunOS dialect ---- *)

let junos_tests =
  [
    tc "junos interface naming" (fun () ->
        check Alcotest.string "name" "ge-0/0/0" (Dialect.Junos.interface_name 0);
        check Alcotest.(option int) "parse" (Some 7)
          (Dialect.Junos.parse_interface_name "ge-0/0/7");
        check Alcotest.(option int) "rejects ios name" None
          (Dialect.Junos.parse_interface_name "GigabitEthernet0/1"));
    prop "junos render/parse round-trip" config_gen
      ~print:(fun c -> Dialect.Junos.render c)
      (fun config ->
        match Dialect.Junos.parse (Dialect.Junos.render config) with
        | Ok parsed -> same_modes config parsed
        | Error _ -> false);
    tc "junos set-style statements parse" (fun () ->
        let text =
          "set system host-name edge1\n\
           set interfaces ge-0/0/0 unit 0 family ethernet-switching port-mode access\n\
           set interfaces ge-0/0/0 unit 0 family ethernet-switching vlan members 7\n\
           set interfaces ge-0/0/1 unit 0 family ethernet-switching port-mode trunk\n\
           set interfaces ge-0/0/1 unit 0 family ethernet-switching vlan members 7\n\
           set interfaces ge-0/0/1 unit 0 family ethernet-switching vlan members 8\n\
           set interfaces ge-0/0/2 disable\n"
        in
        match Dialect.Junos.parse text with
        | Error e -> Alcotest.fail e
        | Ok c ->
            check Alcotest.string "hostname" "edge1" c.Device_config.hostname;
            (match Device_config.stanza_for c ~port:0 with
            | Some { Device_config.mode = Port_config.Access 7; _ } -> ()
            | _ -> Alcotest.fail "port 0");
            (match Device_config.stanza_for c ~port:1 with
            | Some
                {
                  Device_config.mode =
                    Port_config.Trunk { allowed = Port_config.Only [ 7; 8 ]; _ };
                  _;
                } -> ()
            | _ -> Alcotest.fail "port 1");
            match Device_config.stanza_for c ~port:2 with
            | Some { Device_config.mode = Port_config.Disabled; _ } -> ()
            | _ -> Alcotest.fail "port 2");
    tc "manager provisions a juniper device end to end" (fun () ->
        let engine = Simnet.Engine.create () in
        let sw = Legacy_switch.create engine ~name:"jun0" ~ports:4 () in
        let device = Device.create ~switch:sw ~vendor:Device.Juniper_like () in
        match
          Harmless.Manager.provision engine ~device ~trunk_port:3
            ~access_ports:[ 0; 1; 2 ] ()
        with
        | Error m -> Alcotest.fail m
        | Ok _ ->
            check Alcotest.bool "configured" true
              (Legacy_switch.port_mode sw ~port:0 = Port_config.Access 101);
            check Alcotest.bool "rollback" true
              (Harmless.Manager.deprovision device = Ok ()));
  ]

let suite =
  [
    ("mgmt.oid", oid_tests);
    ("mgmt.mib", mib_tests);
    ("mgmt.snmp", snmp_tests);
    ("mgmt.dialect", dialect_tests);
    ("mgmt.device", device_tests);
    ("mgmt.junos", junos_tests);
  ]
