(* Scale-out: one server, three legacy switches, one logical OpenFlow
   switch — the deployment the cost model actually prices.

     dune exec examples/scaleout.exe

   Twelve hosts across three 4-port legacy switches; the controller sees
   a single 12-port switch and its apps need no changes.  A host on
   switch 0 pings a host on switch 2, crossing both trunks through the
   shared SS_2. *)

open Simnet

let () =
  let engine = Engine.create () in
  let deployment =
    match
      Harmless.Deployment.build_scaleout engine ~num_switches:3
        ~hosts_per_switch:4 ()
    with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  (match deployment.Harmless.Deployment.kind with
  | Harmless.Deployment.Scaled { scale; _ } ->
      Printf.printf "provisioned %d translators feeding one %d-port SS_2\n"
        (Array.length scale.Harmless.Scaleout.ss1s)
        (Harmless.Scaleout.total_ports scale);
      Array.iteri
        (fun m map ->
          Printf.printf "  member %d: %s (SS_2 ports %d..%d)\n" m
            (Format.asprintf "%a" Harmless.Port_map.pp map)
            scale.Harmless.Scaleout.offsets.(m)
            (scale.Harmless.Scaleout.offsets.(m) + Harmless.Port_map.size map - 1))
        scale.Harmless.Scaleout.port_maps
  | _ -> assert false);

  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  (* host 1 (switch 0) <-> host 10 (switch 2) *)
  let src = 1 and dst = 10 in
  let h = Harmless.Deployment.host deployment src in
  Host.ping h
    ~dst_mac:(Harmless.Deployment.host_mac dst)
    ~dst_ip:(Harmless.Deployment.host_ip dst)
    ~seq:1;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 100));
  Printf.printf "cross-switch ping %d -> %d: %s\n" src dst
    (if Host.echo_replies h = 1 then "reply received" else "FAILED");

  Format.printf "\nwhat this hardware costs per OpenFlow port:\n%a"
    Costmodel.Scenario.pp_bill
    (Costmodel.Scenario.harmless_brownfield ~ports:12);
  if Host.echo_replies h = 1 then print_endline "scaleout OK" else exit 1
