(* Use case (b) of the paper: VM-level access policies (a DMZ) enforced
   in a migrated legacy switch.

     dune exec examples/dmz.exe

   Six "VMs": a web tier (0, 1), an app server (2) and a database (3),
   plus two tenants' stray VMs (4, 5).  Policy: web <-> app, app <-> db.
   Everything else — including web -> db directly — is fenced off. *)

open Simnet
open Netpkt

let () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:6 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let ip = Harmless.Deployment.host_ip in
  let policy =
    {
      Sdnctl.Dmz.vms =
        List.init 6 (fun i ->
            {
              Sdnctl.Dmz.vm_ip = ip i;
              vm_mac = Harmless.Deployment.host_mac i;
              vm_port = i;
            });
      allowed = [ (ip 0, ip 2); (ip 1, ip 2); (ip 2, ip 3) ];
    }
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.Dmz.create policy ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  let attempt src dst =
    let h = Harmless.Deployment.host deployment src in
    Host.send h
      (Packet.udp
         ~dst:(Harmless.Deployment.host_mac dst)
         ~src:(Host.mac h) ~ip_src:(Host.ip h) ~ip_dst:(ip dst)
         ~src_port:(40000 + (src * 10) + dst)
         ~dst_port:(40000 + (src * 10) + dst)
         "dmz probe")
  in
  let pairs = [ (0, 2); (2, 0); (2, 3); (0, 3); (4, 2); (5, 0); (1, 2) ] in
  List.iter (fun (s, d) -> attempt s d) pairs;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 50));

  List.iter
    (fun (s, d) ->
      let got =
        List.exists
          (fun (p : Packet.t) ->
            match p.Packet.l3 with
            | Packet.Ip { Ipv4.payload = Ipv4.Udp u; _ } ->
                u.Udp.dst_port = 40000 + (s * 10) + d
            | _ -> false)
          (Host.received (Harmless.Deployment.host deployment d))
      in
      let want = Sdnctl.Dmz.allows policy (ip s) (ip d) in
      Printf.printf "vm%d -> vm%d : %-9s (policy says %s)%s\n" s d
        (if got then "delivered" else "blocked")
        (if want then "allow" else "deny")
        (if got = want then "" else "  <-- WRONG");
      if got <> want then exit 1)
    pairs;
  print_endline "dmz OK: enforcement matches policy exactly"
