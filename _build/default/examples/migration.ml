(* Incremental migration: the business case of the paper, end to end.

     dune exec examples/migration.exe

   A small company owns a 9-port legacy switch (8 hosts + an uplink).
   Step 1: the Manager migrates only ports 0-3 to OpenFlow — ports 4-7
   keep their plain legacy behaviour, so nothing about the un-migrated
   half changes (the "less interference with daily operation" of the
   incremental strategy).  Step 2 prints what the migration costs next
   to the rip-and-replace alternative. *)

open Simnet
open Ethswitch

let () =
  let engine = Engine.create () in
  let legacy = Legacy_switch.create engine ~name:"office-sw" ~ports:9 () in
  let device = Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Arista_like () in

  (* Hosts 0-7 on ports 0-7; port 8 becomes the HARMLESS trunk. *)
  let hosts =
    Array.init 8 (fun i ->
        let h =
          Host.create engine
            ~name:(Printf.sprintf "pc%d" i)
            ~mac:(Harmless.Deployment.host_mac i)
            ~ip:(Harmless.Deployment.host_ip i) ()
        in
        ignore (Link.connect (Host.node h, 0) (Legacy_switch.node legacy, i));
        h)
  in

  print_endline "== step 1: migrate ports 0-3 only ==";
  let prov =
    match
      Harmless.Manager.provision engine ~device ~trunk_port:8
        ~access_ports:[ 0; 1; 2; 3 ] ()
    with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  List.iter (Printf.printf "  %s\n") prov.Harmless.Manager.report.Harmless.Manager.steps;
  ignore
    (Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
       (Legacy_switch.node legacy, 8)
       (Softswitch.Soft_switch.node prov.Harmless.Manager.ss1, Harmless.Translator.trunk_port));
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore (Sdnctl.Controller.attach_switch ctrl prov.Harmless.Manager.ss2);
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  (* Migrated half: 0 <-> 1 through OpenFlow. *)
  Host.ping hosts.(0) ~dst_mac:(Host.mac hosts.(1)) ~dst_ip:(Host.ip hosts.(1)) ~seq:1;
  (* Un-migrated half: 4 <-> 5 keep talking plain L2, no controller involved. *)
  Host.ping hosts.(4) ~dst_mac:(Host.mac hosts.(5)) ~dst_ip:(Host.ip hosts.(5)) ~seq:2;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 80));
  Printf.printf "  migrated pair ping:    %s\n"
    (if Host.echo_replies hosts.(0) = 1 then "ok (via SS_2 + controller)" else "FAILED");
  Printf.printf "  un-migrated pair ping: %s\n"
    (if Host.echo_replies hosts.(4) = 1 then "ok (plain legacy L2)" else "FAILED");
  Printf.printf "  controller saw %d packet-in(s); the legacy half generated none it owns\n"
    (Sdnctl.Controller.packet_ins_received ctrl);

  print_endline "\n== step 2: what did this cost? ==";
  Format.printf "%a" Costmodel.Scenario.pp_bill
    (Costmodel.Scenario.harmless_brownfield ~ports:8);
  Format.printf "%a" Costmodel.Scenario.pp_bill (Costmodel.Scenario.cots_sdn ~ports:8);
  Printf.printf "savings vs rip-and-replace: %.0f%%\n"
    (100.0 *. Costmodel.Cost.savings_vs_cots ~ports:8);

  if Host.echo_replies hosts.(0) = 1 && Host.echo_replies hosts.(4) = 1 then
    print_endline "\nmigration OK"
  else exit 1
