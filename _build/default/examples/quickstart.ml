(* Quickstart: migrate a 4-port legacy switch to OpenFlow with HARMLESS
   and ping across it.

     dune exec examples/quickstart.exe

   This is the smallest complete use of the public API:
   1. build a deployment (legacy switch + Manager-provisioned SS_1/SS_2);
   2. attach a controller with an app;
   3. drive traffic and read the results. *)

open Simnet

let () =
  let engine = Engine.create () in

  (* One call builds the legacy switch, its management agents, the
     software switches, the patch ports and the trunk — and runs the
     HARMLESS Manager to provision everything. *)
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in

  (* A controller with the classic reactive L2-learning app.  It talks to
     SS_2 and has no idea a legacy switch is involved: that is the point. *)
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  let dpid =
    Sdnctl.Controller.attach_switch ctrl (Harmless.Deployment.controller_switch deployment)
  in
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
  Printf.printf "controller attached to datapath %Ld\n" dpid;

  (* Ping host 0 -> host 3 and run the simulation. *)
  let h0 = Harmless.Deployment.host deployment 0 in
  Host.ping h0
    ~dst_mac:(Harmless.Deployment.host_mac 3)
    ~dst_ip:(Harmless.Deployment.host_ip 3)
    ~seq:1;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 50));

  Printf.printf "echo replies at host 0: %d\n" (Host.echo_replies h0);
  if Host.echo_replies h0 = 1 then
    print_endline "quickstart OK: the legacy switch is speaking OpenFlow"
  else begin
    print_endline "quickstart FAILED";
    exit 1
  end
