(* Use case (a) of the paper: an in-network load balancer on a migrated
   legacy switch.

     dune exec examples/load_balancer.exe

   Hosts 0-2 are web backends, host 5 is the client side.  A virtual IP
   is spread over the backends by an OpenFlow select group in SS_2; the
   client never learns the backends exist. *)

open Simnet
open Netpkt

let vip_ip = Ipv4_addr.of_octets 10 0 0 100
let vip_mac = Mac_addr.make_local 100
let backends = [ 0; 1; 2 ]
let client = 5

let () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:6 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl
    (Sdnctl.Load_balancer.create ~vip_ip ~vip_mac ~ingress_port:client
       ~backends:
         (List.map
            (fun b ->
              {
                Sdnctl.Load_balancer.backend_mac = Harmless.Deployment.host_mac b;
                backend_ip = Harmless.Deployment.host_ip b;
                backend_port = b;
              })
            backends)
       ());
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  (* Backends serve '/'; the client fires 120 requests at the VIP from
     fresh source ports (one flow each). *)
  List.iter
    (fun b -> Host.serve_http (Harmless.Deployment.host deployment b) ~pages:[ "/" ])
    backends;
  let c = Harmless.Deployment.host deployment client in
  let rng = Rng.create 2024 in
  for i = 0 to 119 do
    let src_port = 1024 + Rng.int rng 60000 in
    Engine.schedule_after engine (Sim_time.us (i * 100)) (fun () ->
        Host.http_get c ~server_mac:vip_mac ~server_ip:vip_ip ~host:"www.vip.example"
          ~path:"/" ~src_port)
  done;
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 100));

  let ok =
    List.length (List.filter (fun (s, _) -> s = 200) (Host.http_responses c))
  in
  Printf.printf "client got %d/120 responses (all appear to come from %s)\n" ok
    (Ipv4_addr.to_string vip_ip);
  List.iter
    (fun b ->
      let served = Host.received_count (Harmless.Deployment.host deployment b) in
      Printf.printf "  backend %d handled %d frames\n" b served)
    backends;
  if ok = 120 then print_endline "load balancer OK" else exit 1
