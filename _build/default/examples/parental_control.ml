(* Use case (c) of the paper: per-user web filtering, changed on-the-fly.

     dune exec examples/parental_control.exe

   Host 0 is the kid's laptop, host 1 a parent's, hosts 2 and 3 serve
   homework.example and games.example.  The kid starts blocked from the
   games site; mid-run the parent relents and unblocks it. *)

open Simnet

let kid = 0
let parent = 1
let homework_srv = 2
let games_srv = 3
let homework = "www.homework.example"
let games = "www.games.example"

let () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let sites =
    [
      (homework, Harmless.Deployment.host_ip homework_srv);
      (games, Harmless.Deployment.host_ip games_srv);
    ]
  in
  let pc =
    Sdnctl.Parental_control.create ~sites
      ~blocked:[ (Harmless.Deployment.host_ip kid, games) ]
      ()
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.Parental_control.app pc);
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
  Host.serve_http (Harmless.Deployment.host deployment homework_srv) ~pages:[ "/" ];
  Host.serve_http (Harmless.Deployment.host deployment games_srv) ~pages:[ "/" ];

  let fetch who ~server ~host ~port =
    let u = Harmless.Deployment.host deployment who in
    let before = List.length (Host.http_responses u) in
    Host.http_get u
      ~server_mac:(Harmless.Deployment.host_mac server)
      ~server_ip:(Harmless.Deployment.host_ip server)
      ~host ~path:"/" ~src_port:port;
    Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 30));
    List.length (Host.http_responses u) > before
  in
  let show who label ok = Printf.printf "%-8s %-22s -> %s\n" who label
      (if ok then "200 OK" else "blocked") in

  show "kid" homework (fetch kid ~server:homework_srv ~host:homework ~port:5001);
  let kid_games_before = fetch kid ~server:games_srv ~host:games ~port:5002 in
  show "kid" games kid_games_before;
  show "parent" games (fetch parent ~server:games_srv ~host:games ~port:5003);

  print_endline "-- parent relents: unblocking on the fly --";
  Sdnctl.Parental_control.unblock pc ctrl
    ~user:(Harmless.Deployment.host_ip kid) ~host:games;
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 5));
  let kid_games_after = fetch kid ~server:games_srv ~host:games ~port:5004 in
  show "kid" games kid_games_after;

  if (not kid_games_before) && kid_games_after then
    print_endline "parental control OK"
  else begin
    print_endline "parental control FAILED";
    exit 1
  end
