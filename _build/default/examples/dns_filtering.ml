(* DNS-aware filtering: parental control without a static site table.

     dune exec examples/dns_filtering.exe

   The controller snoops DNS responses flowing through the migrated
   switch; the instant a forbidden name resolves, a drop rule for
   (user, resolved address) is pinned — the user's browser never gets a
   single packet through, even though the DNS lookup itself succeeded. *)

open Simnet

let kid = 0
let adult = 1
let dns_server = 2
let web_server = 3
let forbidden = "forbidden.example"

let () =
  let engine = Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let guard =
    Sdnctl.Dns_guard.create
      ~blocked:[ (Harmless.Deployment.host_ip kid, forbidden) ]
      ()
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.Dns_guard.app guard);
  Sdnctl.Controller.add_app ctrl (Sdnctl.Rate_limiter.table1_l2 ~num_hosts:4);
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));

  Host.serve_dns
    (Harmless.Deployment.host deployment dns_server)
    ~records:[ (forbidden, Harmless.Deployment.host_ip web_server) ];
  Host.serve_http (Harmless.Deployment.host deployment web_server) ~pages:[ "/" ];

  (* Both users resolve the forbidden name... *)
  List.iter
    (fun u ->
      Host.resolve
        (Harmless.Deployment.host deployment u)
        ~server_mac:(Harmless.Deployment.host_mac dns_server)
        ~server_ip:(Harmless.Deployment.host_ip dns_server)
        forbidden)
    [ kid; adult ];
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 30));
  List.iter
    (fun u ->
      let h = Harmless.Deployment.host deployment u in
      match Host.resolved h with
      | (name, addr) :: _ ->
          Printf.printf "%s resolved %s -> %s\n" (Host.name h) name
            (Netpkt.Ipv4_addr.to_string addr)
      | [] -> Printf.printf "%s got no DNS answer\n" (Host.name h))
    [ kid; adult ];
  Printf.printf "guard snooped %d binding(s), pinned %d drop rule(s)\n"
    (List.length (Sdnctl.Dns_guard.bindings guard))
    (Sdnctl.Dns_guard.blocks_installed guard);

  (* ...then both try to browse there. *)
  List.iteri
    (fun i u ->
      Host.http_get
        (Harmless.Deployment.host deployment u)
        ~server_mac:(Harmless.Deployment.host_mac web_server)
        ~server_ip:(Harmless.Deployment.host_ip web_server)
        ~host:forbidden ~path:"/" ~src_port:(41000 + i))
    [ kid; adult ];
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 30));

  let got u = List.length (Host.http_responses (Harmless.Deployment.host deployment u)) in
  Printf.printf "kid's fetch:   %s\n" (if got kid > 0 then "200 OK (WRONG)" else "blocked");
  Printf.printf "adult's fetch: %s\n" (if got adult > 0 then "200 OK" else "blocked (WRONG)");
  if got kid = 0 && got adult = 1 then print_endline "dns filtering OK"
  else begin
    print_endline "dns filtering FAILED";
    exit 1
  end
