examples/dmz.mli:
