examples/dmz.ml: Engine Harmless Host Ipv4 List Netpkt Packet Printf Sdnctl Sim_time Simnet Udp
