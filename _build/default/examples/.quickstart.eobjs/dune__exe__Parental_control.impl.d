examples/parental_control.ml: Engine Harmless Host List Printf Sdnctl Sim_time Simnet
