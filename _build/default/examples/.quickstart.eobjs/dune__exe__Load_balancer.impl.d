examples/load_balancer.ml: Engine Harmless Host Ipv4_addr List Mac_addr Netpkt Printf Rng Sdnctl Sim_time Simnet
