examples/migration.ml: Array Costmodel Engine Ethswitch Format Harmless Host Legacy_switch Link List Mgmt Printf Sdnctl Sim_time Simnet Softswitch
