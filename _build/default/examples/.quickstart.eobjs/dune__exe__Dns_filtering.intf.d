examples/dns_filtering.mli:
