examples/dns_filtering.ml: Engine Harmless Host List Netpkt Printf Sdnctl Sim_time Simnet
