examples/quickstart.ml: Engine Harmless Host Printf Sdnctl Sim_time Simnet
