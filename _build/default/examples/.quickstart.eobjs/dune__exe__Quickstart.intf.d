examples/quickstart.mli:
