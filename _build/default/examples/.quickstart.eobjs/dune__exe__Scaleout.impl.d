examples/scaleout.ml: Array Costmodel Engine Format Harmless Host Printf Sdnctl Sim_time Simnet
