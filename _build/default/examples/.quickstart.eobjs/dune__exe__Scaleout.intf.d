examples/scaleout.mli:
