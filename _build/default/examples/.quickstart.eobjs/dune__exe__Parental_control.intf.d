examples/parental_control.mli:
