examples/migration.mli:
