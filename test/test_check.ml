(* The conformance subsystem checking itself: corpus replay, pinned
   fuzzer findings, differential properties against the oracle, and the
   SS_1 transparency invariant. *)

open Netpkt
module D = Check.Differential
module P = Openflow.Pipeline

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- corpus ---- *)

let read_hex_corpus path =
  let ic = open_in path in
  let frames = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         frames := Check.Hex.decode_exn line :: !frames
     done
   with End_of_file -> close_in ic);
  List.rev !frames

let corpus_tests =
  [
    tc "valid corpus replays clean" (fun () ->
        let frames = read_hex_corpus "corpus/openflow_valid.hex" in
        check Alcotest.bool "has frames" true (List.length frames >= 20);
        let r = Check.Codec_fuzz.run_corpus frames in
        List.iter
          (fun f -> Alcotest.failf "%a" Check.Codec_fuzz.pp_failure f)
          r.Check.Codec_fuzz.failures;
        (* every valid-corpus frame must actually decode *)
        check Alcotest.int "all decoded" r.Check.Codec_fuzz.cases
          r.Check.Codec_fuzz.decoded);
    tc "tricky corpus is rejected, never thrown" (fun () ->
        let frames = read_hex_corpus "corpus/openflow_tricky.hex" in
        check Alcotest.bool "has frames" true (List.length frames >= 8);
        let r = Check.Codec_fuzz.run_corpus frames in
        List.iter
          (fun f -> Alcotest.failf "%a" Check.Codec_fuzz.pp_failure f)
          r.Check.Codec_fuzz.failures;
        check Alcotest.int "all rejected" r.Check.Codec_fuzz.cases
          r.Check.Codec_fuzz.rejected);
    tc "pinned repros replay without divergence" (fun () ->
        List.iter
          (fun path ->
            match D.load ~path with
            | Ok None -> ()
            | Ok (Some d) ->
                Alcotest.failf "%s reproduces: %a" path D.pp_divergence d
            | Error e -> Alcotest.failf "%s failed to parse: %s" path e)
          [ "corpus/group_loop.repro"; "corpus/scenario_1234.repro" ]);
  ]

(* ---- pinned regression: group chaining loops ---- *)

let group_loop_tests =
  let open Openflow in
  let packet =
    Packet.udp
      ~dst:(Mac_addr.of_string "02:00:00:00:00:02")
      ~src:(Mac_addr.of_string "02:00:00:00:00:01")
      ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
      ~ip_dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1000 ~dst_port:2000 "loop"
  in
  let build buckets_of_group =
    let pipe = P.create ~num_tables:1 () in
    List.iter
      (fun (id, actions) ->
        Group_table.add (P.groups pipe) ~id Group_table.All
          [ { Group_table.weight = 1; actions } ])
      buckets_of_group;
    Flow_table.add (P.table pipe 0) ~now_ns:0
      (Flow_entry.make ~priority:100 ~match_:Of_match.any
         [ Flow_entry.Apply_actions [ Of_action.Group 1 ] ]);
    pipe
  in
  let outputs_of pipe =
    let r = P.execute pipe ~now_ns:1000 ~in_port:0 packet in
    List.filter_map
      (function P.Port (p, _) -> Some p | _ -> None)
      r.P.outputs
  in
  [
    tc "self-referencing group terminates" (fun () ->
        (* group 1's bucket invokes group 1: before the fix this overran
           the stack; now the cyclic reference is a no-op. *)
        let pipe =
          build [ (1, [ Of_action.Group 1; Of_action.output 2 ]) ]
        in
        check Alcotest.(list int) "ports" [ 2 ] (outputs_of pipe));
    tc "mutually recursive groups terminate" (fun () ->
        let pipe =
          build
            [
              (1, [ Of_action.Group 2; Of_action.output 2 ]);
              (2, [ Of_action.Group 1; Of_action.output 3 ]);
            ]
        in
        (* 1 -> (2 -> (1 cut, out 3), out 2) *)
        check Alcotest.(list int) "ports" [ 3; 2 ] (outputs_of pipe));
    tc "oracle agrees on cyclic groups" (fun () ->
        let mk () =
          build
            [
              (1, [ Of_action.Group 2; Of_action.output 2 ]);
              (2, [ Of_action.Group 1; Of_action.output 3 ]);
            ]
        in
        let expected =
          D.render_result
            (Check.Oracle.execute (mk ()) ~now_ns:1000 ~in_port:0 packet)
        in
        let actual =
          D.render_result (P.execute (mk ()) ~now_ns:1000 ~in_port:0 packet)
        in
        check Alcotest.string "rendered" expected actual);
  ]

(* ---- differential properties ---- *)

let seed_gen = QCheck2.Gen.int_range 1 1_000_000

let diff_tests =
  [
    prop "all backends agree with the oracle" ~count:150 seed_gen
      ~print:string_of_int (fun seed ->
        match D.check_case ~seed with
        | None -> true
        | Some d ->
            QCheck2.Test.fail_reportf "%a" D.pp_divergence d);
    prop "caches survive flow-mod churn" ~count:60 seed_gen
      ~print:string_of_int (fun seed ->
        (* Directed at cache invalidation: every flow-mod is immediately
           followed by the same packet that was forwarded just before it,
           so a stale EMC/megaflow entry or unrecompiled eswitch template
           diverges from the oracle at once. *)
        let rng = Simnet.Rng.create seed in
        let tables = 1 + Simnet.Rng.int rng 3 in
        let ports = 2 + Simnet.Rng.int rng 3 in
        let now = ref 1000 in
        let steps = ref [] in
        let push s = steps := s :: !steps in
        for _ = 1 to 12 do
          let pkt = D.gen_packet rng in
          now := !now + 1 + Simnet.Rng.int rng 1_000_000;
          push
            (D.Packet
               { now_ns = !now; in_port = Simnet.Rng.int rng ports; pkt });
          now := !now + 1;
          push
            (D.Msg
               {
                 now_ns = !now;
                 msg =
                   Openflow.Of_message.Flow_mod
                     (D.gen_flow_mod rng ~tables ~ports ~force_add:false);
               });
          now := !now + 1;
          (* the packet right after the mod is the one a stale cache
             would misforward *)
          push
            (D.Packet
               { now_ns = !now; in_port = Simnet.Rng.int rng ports; pkt });
          if Simnet.Rng.int rng 4 = 0 then begin
            now := !now + 3_000_000_000;
            push (D.Expire { now_ns = !now })
          end
        done;
        let scenario = { D.tables; ports; steps = List.rev !steps } in
        match D.run_scenario scenario with
        | None -> true
        | Some d ->
            QCheck2.Test.fail_reportf "%a" D.pp_divergence d);
    prop "repro files round-trip" ~count:100 seed_gen ~print:string_of_int
      (fun seed ->
        let sc = D.gen_scenario (Simnet.Rng.create seed) in
        let text = D.to_string sc in
        match D.of_string text with
        | Error e -> QCheck2.Test.fail_reportf "parse failed: %s" e
        | Ok sc2 ->
            let text2 = D.to_string sc2 in
            if text = text2 then true
            else
              QCheck2.Test.fail_reportf "not a fixpoint:@.%s@.vs@.%s" text
                text2);
    tc "batch run: 300 cases, zero divergences" (fun () ->
        let r = D.run ~seed:7 ~cases:300 () in
        List.iter
          (fun d -> Alcotest.failf "%a" D.pp_divergence d)
          r.D.divergences;
        check Alcotest.int "cases" 300 r.D.cases;
        check Alcotest.bool "packets compared" true (r.D.packets > 300));
  ]

(* ---- codec fuzz ---- *)

let codec_tests =
  [
    tc "mutation fuzz: 3000 cases, contract holds" (fun () ->
        let r = Check.Codec_fuzz.run ~seed:11 ~cases:3000 in
        List.iter
          (fun f -> Alcotest.failf "%a" Check.Codec_fuzz.pp_failure f)
          r.Check.Codec_fuzz.failures;
        check Alcotest.bool "some decoded" true (r.Check.Codec_fuzz.decoded > 0);
        check Alcotest.bool "some rejected" true
          (r.Check.Codec_fuzz.rejected > 0));
    prop "hex round-trips" ~count:200
      (QCheck2.Gen.string_size (QCheck2.Gen.int_bound 64))
      ~print:String.escaped (fun s ->
        Check.Hex.decode (Check.Hex.encode s) = Ok s);
    tc "hex rejects bad input" (fun () ->
        check Alcotest.bool "odd length" true
          (Result.is_error (Check.Hex.decode "abc"));
        check Alcotest.bool "bad char" true
          (Result.is_error (Check.Hex.decode "zz")));
  ]

(* ---- transparency ---- *)

let transparency_tests =
  [
    prop "hairpin invariant over random port maps" ~count:40 seed_gen
      ~print:string_of_int (fun seed ->
        match Check.Transparency_oracle.check_hairpin ~seed with
        | [] -> true
        | v :: _ ->
            QCheck2.Test.fail_reportf "%a"
              Check.Transparency_oracle.pp_violation v);
    tc "end-to-end transparency under a fault storm" (fun () ->
        match Check.Transparency_oracle.run ~seed:42 ~fault_count:6 () with
        | Error e -> Alcotest.fail e
        | Ok r ->
            List.iter
              (fun v ->
                Alcotest.failf "%a" Check.Transparency_oracle.pp_violation v)
              r.Check.Transparency_oracle.violations;
            check Alcotest.bool "trunk traffic observed" true
              (r.Check.Transparency_oracle.trunk_frames > 0);
            check Alcotest.bool "patch traffic observed" true
              (r.Check.Transparency_oracle.patch_frames > 0);
            check Alcotest.bool "packet-ins inspected" true
              (r.Check.Transparency_oracle.packet_ins > 0);
            check Alcotest.bool "faults actually injected" true
              (r.Check.Transparency_oracle.faults_injected > 0));
    tc "end-to-end transparency, calm network" (fun () ->
        match Check.Transparency_oracle.run ~seed:7 ~fault_count:0 () with
        | Error e -> Alcotest.fail e
        | Ok r ->
            List.iter
              (fun v ->
                Alcotest.failf "%a" Check.Transparency_oracle.pp_violation v)
              r.Check.Transparency_oracle.violations;
            check Alcotest.bool "host traffic observed" true
              (r.Check.Transparency_oracle.host_frames > 0));
  ]

let suite =
  [
    ("check.corpus", corpus_tests);
    ("check.group-loop", group_loop_tests);
    ("check.differential", diff_tests);
    ("check.codec-fuzz", codec_tests);
    ("check.transparency", transparency_tests);
  ]
