(* The policy layer: FDD algebraic laws (hash-consing makes them one
   pointer comparison each), compiler structure, interpreter semantics,
   golden table dumps per app, and the three-way differential proof that
   compiled tables, hand-written rules and the denotational interpreter
   agree packet-for-packet. *)

open Netpkt
module Syn = Policy.Syntax
module Fdd = Policy.Fdd
module Interp = Policy.Interp
module Compile = Policy.Compile
module PE = Check.Policy_equiv

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let mac = Mac_addr.make_local
let ip = Ipv4_addr.of_string

(* ---- generators: random predicates and (meter-free) policies ---- *)

let gen_test : Syn.pred QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map Syn.in_port (QCheck2.Gen.int_range 0 3);
      QCheck2.Gen.map (fun i -> Syn.eth_src_is (mac i)) (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.map (fun i -> Syn.eth_dst_is (mac i)) (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.oneofl [ Syn.eth_type_is 0x0800; Syn.eth_type_is 0x0806 ];
      QCheck2.Gen.map
        (fun i -> Syn.ip_src_is (ip (Printf.sprintf "10.0.0.%d" i)))
        (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.map
        (fun i -> Syn.ip_dst_is (ip (Printf.sprintf "10.0.0.%d" i)))
        (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.oneofl [ Syn.ip_proto_is 6; Syn.ip_proto_is 17 ];
      QCheck2.Gen.oneofl [ Syn.l4_dst_is 80; Syn.l4_dst_is 53 ];
      QCheck2.Gen.oneofl [ Syn.vlan_vid_is 101 ];
    ]

let gen_pred : Syn.pred QCheck2.Gen.t =
  QCheck2.Gen.sized (fun n ->
      QCheck2.Gen.fix
        (fun self n ->
          if n <= 1 then
            QCheck2.Gen.oneof
              [ gen_test; QCheck2.Gen.oneofl [ Syn.True; Syn.False ] ]
          else
            QCheck2.Gen.oneof
              [
                gen_test;
                QCheck2.Gen.map2
                  (fun a b -> Syn.And (a, b))
                  (self (n / 2)) (self (n / 2));
                QCheck2.Gen.map2
                  (fun a b -> Syn.Or (a, b))
                  (self (n / 2)) (self (n / 2));
                QCheck2.Gen.map (fun a -> Syn.Not a) (self (n - 1));
              ])
        (min n 8))

let gen_mod : Syn.t QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map (fun i -> Syn.set_eth_dst (mac i)) (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.map
        (fun i -> Syn.set_ip_dst (ip (Printf.sprintf "10.0.0.%d" i)))
        (QCheck2.Gen.int_range 1 3);
      QCheck2.Gen.map Syn.set_l4_dst (QCheck2.Gen.oneofl [ 80; 53 ]);
      QCheck2.Gen.map Syn.fwd (QCheck2.Gen.int_range 0 3);
      QCheck2.Gen.oneofl [ Syn.flood; Syn.discard; Syn.to_controller () ];
    ]

(* Meter- and balance-free: the laws below quantify over the pure
   fragment (seq raises on two meters in sequence, by design). *)
let gen_policy : Syn.t QCheck2.Gen.t =
  QCheck2.Gen.sized (fun n ->
      QCheck2.Gen.fix
        (fun self n ->
          if n <= 1 then
            QCheck2.Gen.oneof
              [ QCheck2.Gen.map Syn.filter gen_pred; gen_mod ]
          else
            QCheck2.Gen.oneof
              [
                QCheck2.Gen.map Syn.filter gen_pred;
                gen_mod;
                QCheck2.Gen.map2 Syn.union (self (n / 2)) (self (n / 2));
                QCheck2.Gen.map2 Syn.seq (self (n / 2)) (self (n / 2));
                QCheck2.Gen.map2 Syn.orelse (self (n / 2)) (self (n / 2));
              ])
        (min n 10))

let gen_policy2 = QCheck2.Gen.pair gen_policy gen_policy
let gen_policy3 = QCheck2.Gen.triple gen_policy gen_policy gen_policy
let print_policy = Syn.to_string
let print_policy2 (p, q) = Syn.to_string p ^ " || " ^ Syn.to_string q

let print_policy3 (p, q, r) =
  String.concat " || " (List.map Syn.to_string [ p; q; r ])

let print_pred p = Format.asprintf "%a" Syn.pp_pred p
let fdd_eq name a b =
  if not (Fdd.equal a b) then
    QCheck2.Test.fail_reportf "%s:@.%s@.  !=@.%s" name (Fdd.to_string a)
      (Fdd.to_string b)
  else true

(* ---- FDD algebraic laws ---- *)

let law_tests =
  [
    prop "union idempotent" gen_policy ~print:print_policy (fun p ->
        fdd_eq "p + p = p" (Fdd.of_policy (Syn.union p p)) (Fdd.of_policy p));
    prop "union commutative" gen_policy2 ~print:print_policy2 (fun (p, q) ->
        fdd_eq "p + q = q + p"
          (Fdd.of_policy (Syn.union p q))
          (Fdd.of_policy (Syn.union q p)));
    prop "union associative" gen_policy3 ~print:print_policy3 (fun (p, q, r) ->
        fdd_eq "(p + q) + r = p + (q + r)"
          (Fdd.of_policy (Syn.union (Syn.union p q) r))
          (Fdd.of_policy (Syn.union p (Syn.union q r))));
    prop "seq associative" gen_policy3 ~print:print_policy3 (fun (p, q, r) ->
        fdd_eq "(p ; q) ; r = p ; (q ; r)"
          (Fdd.of_policy (Syn.seq (Syn.seq p q) r))
          (Fdd.of_policy (Syn.seq p (Syn.seq q r))));
    prop "orelse associative" gen_policy3 ~print:print_policy3
      (fun (p, q, r) ->
        fdd_eq "(p |? q) |? r = p |? (q |? r)"
          (Fdd.of_policy (Syn.orelse (Syn.orelse p q) r))
          (Fdd.of_policy (Syn.orelse p (Syn.orelse q r))));
    prop "negation involution" gen_pred ~print:print_pred (fun a ->
        fdd_eq "!!a = a"
          (Fdd.of_pred (Syn.neg (Syn.neg a)))
          (Fdd.of_pred a));
    prop "De Morgan" (QCheck2.Gen.pair gen_pred gen_pred)
      ~print:(fun (a, b) -> print_pred a ^ " || " ^ print_pred b)
      (fun (a, b) ->
        fdd_eq "!(a & b) = !a + !b"
          (Fdd.of_pred (Syn.neg (Syn.And (a, b))))
          (Fdd.of_pred (Syn.Or (Syn.neg a, Syn.neg b))));
    prop "conjunction commutes (canonical test order)"
      (QCheck2.Gen.pair gen_pred gen_pred)
      ~print:(fun (a, b) -> print_pred a ^ " || " ^ print_pred b)
      (fun (a, b) ->
        fdd_eq "a & b = b & a"
          (Fdd.of_pred (Syn.And (a, b)))
          (Fdd.of_pred (Syn.And (b, a))));
    prop "filter of conjunction = seq of filters" gen_pred ~print:print_pred
      (fun a ->
        fdd_eq "filter (a & a') = filter a ; filter a'"
          (Fdd.of_policy (Syn.filter (Syn.And (a, a))))
          (Fdd.of_policy (Syn.filter a)));
    prop "seq drop absorbing" gen_policy ~print:print_policy (fun p ->
        fdd_eq "p ; drop = drop"
          (Fdd.of_policy (Syn.seq p Syn.drop))
          Fdd.drop);
    prop "seq id units" gen_policy ~print:print_policy (fun p ->
        let d = Fdd.of_policy p in
        ignore (fdd_eq "id ; p = p" (Fdd.of_policy (Syn.seq Syn.id p)) d);
        fdd_eq "p ; id = p" (Fdd.of_policy (Syn.seq p Syn.id)) d);
    prop "union drop unit" gen_policy ~print:print_policy (fun p ->
        fdd_eq "p + drop = p"
          (Fdd.of_policy (Syn.union p Syn.drop))
          (Fdd.of_policy p));
    prop "orelse drop unit, orelse idempotent" gen_policy ~print:print_policy
      (fun p ->
        let d = Fdd.of_policy p in
        ignore
          (fdd_eq "drop |? p = p" (Fdd.of_policy (Syn.orelse Syn.drop p)) d);
        ignore (fdd_eq "p |? drop = p" (Fdd.of_policy (Syn.orelse p Syn.drop)) d);
        fdd_eq "p |? p = p" (Fdd.of_policy (Syn.orelse p p)) d);
    prop "compile idempotent (same rendered table)" gen_policy
      ~print:print_policy (fun p ->
        let r1 = Compile.render (Compile.compile p) in
        let r2 = Compile.render (Compile.compile p) in
        if r1 <> r2 then
          QCheck2.Test.fail_reportf "renders differ:@.%s@.vs@.%s" r1 r2
        else true);
  ]

(* ---- FDD structure units ---- *)

let structure_tests =
  [
    tc "field order puts Loc at the root" (fun () ->
        let d =
          Fdd.of_pred (Syn.And (Syn.ip_src_is (ip "10.0.0.1"), Syn.in_port 2))
        in
        match d.Fdd.node with
        | Fdd.Branch ((Syn.Loc, _), _, _) -> ()
        | _ -> Alcotest.failf "root is not a Loc test:@.%s" (Fdd.to_string d));
    tc "complementary guards collapse to one leaf" (fun () ->
        let a = Syn.eth_dst_is (mac 7) in
        let d =
          Fdd.of_policy
            (Syn.union
               (Syn.seq (Syn.filter a) (Syn.fwd 1))
               (Syn.seq (Syn.filter (Syn.neg a)) (Syn.fwd 1)))
        in
        check Alcotest.bool "same as unconditional forward" true
          (Fdd.equal d (Fdd.of_policy (Syn.fwd 1))));
    tc "hash-consing shares equal subtrees" (fun () ->
        let frag =
          Syn.seq (Syn.filter (Syn.eth_dst_is (mac 1))) (Syn.fwd 1)
        in
        check Alcotest.int "union with itself adds no nodes"
          (Fdd.size (Fdd.of_policy frag))
          (Fdd.size (Fdd.of_policy (Syn.union frag frag))));
    tc "eval walks to the right leaf" (fun () ->
        let d =
          Fdd.of_policy
            (Syn.seq (Syn.filter (Syn.in_port 2)) (Syn.fwd 3))
        in
        let env = function
          | Syn.Loc -> Some (Syn.At (Syn.Phys 2))
          | _ -> None
        in
        (match Fdd.eval env d with
        | [ act ] ->
            check Alcotest.bool "forwards to 3" true
              (Fdd.Act.loc act = Some (Syn.Phys 3))
        | acts -> Alcotest.failf "expected one act, got %d" (List.length acts));
        let env0 = function
          | Syn.Loc -> Some (Syn.At (Syn.Phys 0))
          | _ -> None
        in
        check Alcotest.int "other port drops" 0 (List.length (Fdd.eval env0 d)));
  ]

(* ---- compiler structure units ---- *)

let compile_tests =
  [
    tc "tables are total: catch-all drop at priority 0" (fun () ->
        let c = Compile.compile (PE.find_spec "gateway" |> Option.get).PE.policy in
        let fms = Compile.flow_mods c in
        check Alcotest.bool "has rules" true (fms <> []);
        let last = List.nth fms (List.length fms - 1) in
        check Alcotest.int "last priority" 0 last.Openflow.Of_message.priority;
        (* strictly descending priorities *)
        ignore
          (List.fold_left
             (fun prev fm ->
               check Alcotest.bool "descending" true
                 (fm.Openflow.Of_message.priority < prev);
               fm.Openflow.Of_message.priority)
             max_int fms));
    tc "multi-output leaf becomes an All group" (fun () ->
        let c = Compile.compile (Syn.union (Syn.fwd 1) (Syn.fwd 2)) in
        check Alcotest.int "one group" 1 (Compile.group_count c);
        check Alcotest.int "no meters" 0 (Compile.meter_count c));
    tc "meter in a multi-action leaf is rejected" (fun () ->
        let bad =
          Syn.union
            (Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:100 ~burst_kb:8) (Syn.fwd 1))
            (Syn.fwd 2)
        in
        Alcotest.check_raises "raises"
          (Invalid_argument
             "Policy.Compile: a meter inside a multi-action leaf has no \
              flow-rule encoding")
          (fun () -> ignore (Compile.compile bad)));
    tc "conflicting meter bands are rejected" (fun () ->
        let bad =
          Syn.union
            (Syn.seq (Syn.filter (Syn.in_port 0))
               (Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:100 ~burst_kb:8) (Syn.fwd 1)))
            (Syn.seq (Syn.filter (Syn.in_port 1))
               (Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:200 ~burst_kb:8) (Syn.fwd 1)))
        in
        (try
           ignore (Compile.compile bad);
           Alcotest.fail "compile accepted conflicting bands"
         with Invalid_argument _ -> ());
        try
          ignore (Interp.create bad);
          Alcotest.fail "interp accepted conflicting bands"
        with Invalid_argument _ -> ());
    tc "composed gateway table is no bigger than the hand-written union"
      (fun () ->
        let g = Sdnctl.Gateway.default () in
        let hand_rules =
          List.length
            (List.filter
               (function Openflow.Of_message.Flow_mod _ -> true | _ -> false)
               (Sdnctl.Gateway.handwritten_messages g))
        in
        let c = Compile.compile (Sdnctl.Gateway.policy g) in
        check Alcotest.bool
          (Printf.sprintf "compiled %d <= hand-written %d"
             (Compile.flow_count c) hand_rules)
          true
          (Compile.flow_count c <= hand_rules));
  ]

(* ---- interpreter semantics units ---- *)

let pkt_tcp ?(src = mac 1) ?(dst = mac 2) ?(ip_src = ip "10.0.0.1")
    ?(ip_dst = ip "10.0.0.2") ?(dst_port = 80) () =
  Packet.tcp ~dst ~src ~ip_src ~ip_dst ~src_port:1234 ~dst_port "payload"

let interp_tests =
  [
    tc "ghost write: set then test an absent field" (fun () ->
        let x = ip "192.0.2.1" in
        let p =
          Syn.seq (Syn.set_ip_dst x)
            (Syn.seq (Syn.filter (Syn.ip_dst_is x)) (Syn.fwd 1))
        in
        let it = Interp.create p in
        let arp =
          Packet.arp_request ~src_mac:(mac 1) ~src_ip:(ip "10.0.0.1")
            ~target_ip:(ip "10.0.0.2")
        in
        match Interp.run it ~now_ns:0 ~in_port:0 arp with
        | [ Openflow.Pipeline.Port (1, out) ] ->
            (* the test passed on the ghost value, but ARP carries no IP
               header to rewrite *)
            check Alcotest.string "packet unmodified"
              (Check.Hex.encode (Packet.encode arp))
              (Check.Hex.encode (Packet.encode out))
        | outs ->
            Alcotest.failf "expected port 1, got %s"
              (PE.normalize ~in_port:0 outs));
    tc "outputs are a set: duplicate effects collapse" (fun () ->
        let p = Syn.union (Syn.fwd 1) (Syn.fwd 1) in
        let it = Interp.create p in
        check Alcotest.int "one output" 1
          (List.length (Interp.run it ~now_ns:0 ~in_port:0 (pkt_tcp ()))));
    tc "police: depleted bucket drops, time refills" (fun () ->
        let p =
          Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:8 ~burst_kb:1) (Syn.fwd 1)
        in
        let it = Interp.create p in
        let pkt = Packet.pad_to 1000 (pkt_tcp ()) in
        let run now = List.length (Interp.run it ~now_ns:now ~in_port:0 pkt) in
        check Alcotest.int "first passes on burst" 1 (run 0);
        check Alcotest.int "burst exhausted" 0 (run 1000);
        (* 8 kbps = 1 kB/s: one second refills the kilobyte burst *)
        check Alcotest.int "refilled after a second" 1 (run 1_100_000_000));
    tc "balance is deterministic per flow" (fun () ->
        let sp = Option.get (PE.find_spec "lb") in
        let it = Interp.create sp.PE.policy in
        let vip_pkt =
          pkt_tcp ~dst:(mac 0x91) ~ip_dst:(ip "10.9.0.9") ()
        in
        let o1 = Interp.run it ~now_ns:0 ~in_port:0 vip_pkt in
        let o2 = Interp.run it ~now_ns:1000 ~in_port:0 vip_pkt in
        check Alcotest.string "same backend both times"
          (PE.normalize ~in_port:0 o1)
          (PE.normalize ~in_port:0 o2);
        check Alcotest.int "exactly one backend" 1 (List.length o1));
    tc "discard keeps meter side effects" (fun () ->
        let p =
          Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:8 ~burst_kb:1)
            (Syn.orelse Syn.drop Syn.discard)
        in
        let it = Interp.create p in
        let pkt = Packet.pad_to 1000 (pkt_tcp ()) in
        check Alcotest.int "no output" 0
          (List.length (Interp.run it ~now_ns:0 ~in_port:0 pkt));
        (* the discard billed the bucket: a forwarding policy sharing the
           meter would now drop — observable through a fresh interp with
           the same packet sequence *)
        let p2 =
          Syn.seq (Syn.police ~meter_id:1 ~rate_kbps:8 ~burst_kb:1) (Syn.fwd 1)
        in
        let it2 = Interp.create p2 in
        ignore (Interp.run it2 ~now_ns:0 ~in_port:0 pkt);
        check Alcotest.int "second packet metered out" 0
          (List.length (Interp.run it2 ~now_ns:1000 ~in_port:0 pkt)));
  ]

(* ---- golden table dumps ---- *)

let golden_tests =
  List.map
    (fun name ->
      tc (Printf.sprintf "golden dump: %s" name) (fun () ->
          let sp = Option.get (PE.find_spec name) in
          let rendered = Compile.render (Compile.compile sp.PE.policy) in
          let path = Printf.sprintf "golden/policy_%s.txt" name in
          let ic = open_in_bin path in
          let expected =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          check Alcotest.string (path ^ " matches") expected rendered))
    [ "dmz"; "lb"; "parental"; "ratelimit"; "gateway" ]

(* ---- the equivalence proof itself ---- *)

let equiv_cases name = if name = "gateway" then 30 else 60

let equiv_tests =
  List.map
    (fun sp ->
      tc
        (Printf.sprintf "equivalence: %s (compiled = hand-written = interpreter)"
           sp.PE.spec_name)
        (fun () ->
          let r =
            PE.run ~spec:sp ~seed:42 ~cases:(equiv_cases sp.PE.spec_name) ()
          in
          List.iter
            (fun d -> Alcotest.failf "%a" PE.pp_divergence d)
            r.PE.divergences;
          check Alcotest.bool "packets compared" true (r.PE.packets > 100)))
    (PE.specs ())

let harness_tests =
  [
    tc "broken hand-written rules diverge and shrink to one packet" (fun () ->
        let sp = Option.get (PE.find_spec "dmz") in
        (* Drop the ARP flood rule: ARP between VMs now dead-ends in the
           rule set while the policy still floods it. *)
        let broken =
          List.filter
            (function
              | Openflow.Of_message.Flow_mod fm -> (
                  match
                    fm.Openflow.Of_message.match_.Openflow.Of_match.eth_type
                  with
                  | Some 0x0806 -> false
                  | _ -> true)
              | _ -> true)
            sp.PE.hand_messages
        in
        let sp = { sp with PE.spec_name = "dmz-broken"; hand_messages = broken } in
        let rec hunt seed =
          if seed > 200 then Alcotest.fail "no divergence found in 200 seeds"
          else
            match PE.check_case sp ~seed with
            | None -> hunt (seed + 1)
            | Some d -> d
        in
        let d = hunt 1 in
        check Alcotest.string "hand side diverged" "hand:oracle" d.PE.impl;
        check Alcotest.int "shrunk to a single packet" 1
          (List.length d.PE.case.PE.steps));
    tc "broken compiler pass (reversed priorities) is caught" (fun () ->
        let sp = Option.get (PE.find_spec "dmz") in
        let c = Compile.compile sp.PE.policy in
        let fms = Compile.flow_mods c in
        let prios = List.map (fun fm -> fm.Openflow.Of_message.priority) fms in
        let broken =
          List.map2
            (fun fm p -> { fm with Openflow.Of_message.priority = p })
            fms (List.rev prios)
        in
        (* Hand the sabotaged table to the harness as if it were the
           hand-written implementation: rule order is now inverted, so
           shadowing breaks and the interpreter disagrees. *)
        let sp =
          {
            sp with
            PE.spec_name = "dmz-reversed";
            hand_tables = 1;
            hand_messages =
              List.map (fun fm -> Openflow.Of_message.Flow_mod fm) broken;
          }
        in
        let rec hunt seed =
          if seed > 200 then Alcotest.fail "no divergence found in 200 seeds"
          else
            match PE.check_case sp ~seed with
            | None -> hunt (seed + 1)
            | Some d -> d
        in
        let d = hunt 1 in
        check Alcotest.string "the sabotaged table diverged" "hand:oracle"
          d.PE.impl);
    prop "repro files are a to_string/of_string fixpoint" ~count:50
      (QCheck2.Gen.int_range 1 10_000) ~print:string_of_int (fun seed ->
        let sp = Option.get (PE.find_spec "gateway") in
        let case = PE.gen_case sp ~seed in
        let text = PE.to_string case in
        match PE.of_string text with
        | Error e -> QCheck2.Test.fail_reportf "parse failed: %s" e
        | Ok case2 ->
            let text2 = PE.to_string case2 in
            if text = text2 then true
            else
              QCheck2.Test.fail_reportf "not a fixpoint:@.%s@.vs@.%s" text
                text2);
    tc "pinned policy repros replay without divergence" (fun () ->
        List.iter
          (fun path ->
            match PE.load ~path with
            | Error e -> Alcotest.failf "%s: %s" path e
            | Ok (Some d) ->
                Alcotest.failf "%s reproduces: %a" path PE.pp_divergence d
            | Ok None -> ())
          [ "corpus/policy_gateway.repro"; "corpus/policy_ratelimit.repro" ]);
    tc "report accounting" (fun () ->
        let sp = Option.get (PE.find_spec "parental") in
        let r = PE.run ~spec:sp ~seed:9 ~cases:10 () in
        check Alcotest.int "cases" 10 r.PE.cases;
        check Alcotest.bool "packets counted" true (r.PE.packets >= 10 * 15));
  ]

let suite =
  [
    ("policy.fdd-laws", law_tests);
    ("policy.fdd-structure", structure_tests);
    ("policy.compile", compile_tests);
    ("policy.interp", interp_tests);
    ("policy.golden", golden_tests);
    ("policy.equivalence", equiv_tests @ harness_tests);
  ]
