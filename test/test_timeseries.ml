(* The monitoring plane's storage and SLO layers: ring-buffer time
   series (window queries across the wrap boundary are the tricky
   part) and the alert rule state machine. *)

open Telemetry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let foi = float_of_int

let series ?(capacity = 8) points =
  let s = Timeseries.create ~capacity ~name:"test" () in
  List.iter (fun (ts, v) -> Timeseries.record s ~ts_ns:ts v) points;
  s

let fpair = Alcotest.(pair int (float 1e-9))
let fopt = Alcotest.(option (float 1e-9))

(* ---- ring-buffer mechanics ---- *)

let ring_tests =
  [
    tc "create validates capacity" (fun () ->
        Alcotest.check_raises "cap 1" (Invalid_argument "Timeseries.create: capacity < 2")
          (fun () -> ignore (Timeseries.create ~capacity:1 ~name:"x" ())));
    tc "record and read back in order" (fun () ->
        let s = series [ (10, 1.); (20, 2.); (30, 3.) ] in
        check Alcotest.int "len" 3 (Timeseries.length s);
        check Alcotest.int "total" 3 (Timeseries.total_recorded s);
        check (Alcotest.list fpair) "points"
          [ (10, 1.); (20, 2.); (30, 3.) ]
          (Timeseries.to_list s);
        check (Alcotest.option fpair) "last" (Some (30, 3.)) (Timeseries.last s));
    tc "equal timestamps are allowed, backwards are not" (fun () ->
        let s = series [ (10, 1.) ] in
        Timeseries.record s ~ts_ns:10 2.;
        check Alcotest.int "len" 2 (Timeseries.length s);
        Alcotest.check_raises "backwards"
          (Invalid_argument "Timeseries.record: timestamp went backwards")
          (fun () -> Timeseries.record s ~ts_ns:9 3.));
    tc "wrap evicts oldest and keeps order" (fun () ->
        let s = series ~capacity:4 [] in
        for k = 1 to 7 do
          Timeseries.record s ~ts_ns:(k * 10) (foi k)
        done;
        check Alcotest.int "len" 4 (Timeseries.length s);
        check Alcotest.int "total" 7 (Timeseries.total_recorded s);
        check (Alcotest.list fpair) "suffix survives"
          [ (40, 4.); (50, 5.); (60, 6.); (70, 7.) ]
          (Timeseries.to_list s));
    tc "clear empties the ring but not the total" (fun () ->
        let s = series ~capacity:4 [ (10, 1.); (20, 2.) ] in
        Timeseries.clear s;
        check Alcotest.int "len" 0 (Timeseries.length s);
        check Alcotest.int "total" 2 (Timeseries.total_recorded s);
        check (Alcotest.option fpair) "last" None (Timeseries.last s);
        (* and the ring is reusable from scratch *)
        Timeseries.record s ~ts_ns:5 9.;
        check (Alcotest.list fpair) "fresh" [ (5, 9.) ] (Timeseries.to_list s));
    prop "ring always holds the newest min(n, capacity) points"
      ~print:QCheck2.Print.(pair int (list (pair int (float))))
      QCheck2.Gen.(
        pair (int_range 2 10)
          (list_size (int_bound 40)
             (pair (int_bound 1000) (float_bound_inclusive 100.))))
      (fun (cap, raw) ->
        (* sort timestamps so recording is legal *)
        let pts =
          List.sort (fun (a, _) (b, _) -> compare a b) raw
        in
        let s = series ~capacity:cap pts in
        let expected =
          let n = List.length pts in
          let drop = max 0 (n - cap) in
          List.filteri (fun i _ -> i >= drop) pts
        in
        Timeseries.length s = List.length expected
        && List.for_all2
             (fun (t1, v1) (t2, (v2 : float)) -> t1 = t2 && v1 = v2)
             (Timeseries.to_list s) expected);
  ]

(* ---- window queries, including across the wrap ---- *)

let window_tests =
  [
    tc "min/max/avg over a window" (fun () ->
        let s = series [ (10, 5.); (20, 1.); (30, 3.) ] in
        check fopt "min" (Some 1.) (Timeseries.min_over s ~now_ns:30 ~window:20);
        check fopt "max" (Some 5.) (Timeseries.max_over s ~now_ns:30 ~window:20);
        check fopt "avg" (Some 3.) (Timeseries.avg_over s ~now_ns:30 ~window:20);
        (* narrow window excludes the early points *)
        check fopt "min narrow" (Some 3.)
          (Timeseries.min_over s ~now_ns:30 ~window:5);
        (* empty window *)
        check fopt "empty" None (Timeseries.min_over s ~now_ns:9 ~window:5));
    tc "window queries span the wrap boundary" (fun () ->
        let s = series ~capacity:4 [] in
        (* 6 points; ring holds ts 30..60, physically wrapped *)
        for k = 1 to 6 do
          Timeseries.record s ~ts_ns:(k * 10) (foi (10 * k))
        done;
        check fopt "min all held" (Some 30.)
          (Timeseries.min_over s ~now_ns:60 ~window:1000);
        check fopt "max all held" (Some 60.)
          (Timeseries.max_over s ~now_ns:60 ~window:1000);
        check fopt "avg all held" (Some 45.)
          (Timeseries.avg_over s ~now_ns:60 ~window:1000);
        (* window ending mid-ring: points at 30,40 only *)
        check fopt "avg prefix" (Some 35.)
          (Timeseries.avg_over s ~now_ns:40 ~window:15));
    tc "rate over a counter, including across the wrap" (fun () ->
        let s = series ~capacity:4 [] in
        (* bytes counter: +100 per 10 ns => 1e10 bytes/s *)
        for k = 1 to 6 do
          Timeseries.record s ~ts_ns:(k * 10) (foi (100 * k))
        done;
        check fopt "rate" (Some 1e10)
          (Timeseries.rate_over s ~now_ns:60 ~window:30);
        check fopt "rate full ring" (Some 1e10)
          (Timeseries.rate_over s ~now_ns:60 ~window:10_000));
    tc "rate needs two points with distinct timestamps" (fun () ->
        let one = series [ (10, 5.) ] in
        check fopt "single" None (Timeseries.rate_over one ~now_ns:10 ~window:100);
        let flat = series [ (10, 5.); (10, 9.) ] in
        check fopt "same ts" None
          (Timeseries.rate_over flat ~now_ns:10 ~window:100));
    tc "rate is negative across a counter reset" (fun () ->
        let s = series [ (0, 1000.); (1_000_000_000, 0.) ] in
        check fopt "negative" (Some (-1000.))
          (Timeseries.rate_over s ~now_ns:1_000_000_000 ~window:2_000_000_000));
    tc "window boundaries: now - window is included, beyond now is not"
      (fun () ->
        let s = series [ (10, 1.); (20, 2.); (30, 3.) ] in
        (* lo = now - window exactly on a point: inclusive *)
        check fopt "point at lo included" (Some 1.)
          (Timeseries.min_over s ~now_ns:30 ~window:20);
        (* shrink the window by 1: ts 10 and 20 fall below lo *)
        check fopt "point below lo excluded" (Some 3.)
          (Timeseries.min_over s ~now_ns:30 ~window:9);
        (* a point after now (recorded, but the query looks at the past)
           never enters the window *)
        check fopt "future point excluded" (Some 2.)
          (Timeseries.max_over s ~now_ns:20 ~window:100);
        check fopt "avg ignores the future too" (Some 1.5)
          (Timeseries.avg_over s ~now_ns:20 ~window:100);
        (* zero-width window: exactly the points at now *)
        check fopt "zero-width window" (Some 3.)
          (Timeseries.min_over s ~now_ns:30 ~window:0);
        check fopt "zero-width window off a point" None
          (Timeseries.min_over s ~now_ns:25 ~window:0));
    tc "newest_age reports staleness" (fun () ->
        let s = series [ (10, 1.) ] in
        check (Alcotest.option Alcotest.int) "age" (Some 90)
          (Timeseries.newest_age s ~now_ns:100);
        check (Alcotest.option Alcotest.int) "empty" None
          (Timeseries.newest_age (series []) ~now_ns:100));
    prop "avg_over a full-coverage window equals the mean of held points"
      ~print:QCheck2.Print.(list (pair int float))
      QCheck2.Gen.(
        list_size (int_bound 30) (pair (int_bound 500) (float_bound_inclusive 50.)))
      (fun raw ->
        let pts = List.sort (fun (a, _) (b, _) -> compare a b) raw in
        let s = series ~capacity:8 pts in
        let held = Timeseries.to_list s in
        match Timeseries.avg_over s ~now_ns:501 ~window:502 with
        | None -> held = []
        | Some avg ->
            let n = List.length held in
            let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0. held in
            Float.abs (avg -. (sum /. foi n)) < 1e-6);
  ]

(* ---- alert rules ---- *)

let eval_at a ns = Alert.eval a ~now_ns:ns

let state_kind = function
  | Alert.Ok -> "ok"
  | Alert.Pending _ -> "pending"
  | Alert.Firing _ -> "firing"

let alert_tests =
  [
    tc "threshold with for_: ok -> pending -> firing -> ok" (fun () ->
        let s = series [] in
        let a = Alert.create () in
        Alert.add_rule a ~name:"hot" ~for_:20 (Alert.Series s) (Alert.Above 10.);
        eval_at a 0;
        check Alcotest.string "no data" "ok" (state_kind (Alert.state a "hot"));
        Timeseries.record s ~ts_ns:5 50.;
        eval_at a 10;
        check Alcotest.string "pending" "pending" (state_kind (Alert.state a "hot"));
        eval_at a 25;
        check Alcotest.string "still pending" "pending"
          (state_kind (Alert.state a "hot"));
        eval_at a 30;
        check Alcotest.string "fires after for_" "firing"
          (state_kind (Alert.state a "hot"));
        check (Alcotest.list Alcotest.string) "firing list" [ "hot" ]
          (Alert.firing a);
        Timeseries.record s ~ts_ns:35 1.;
        eval_at a 40;
        check Alcotest.string "resolves" "ok" (state_kind (Alert.state a "hot"));
        (* the full trajectory is in the log *)
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "log"
          [ ("ok", "pending"); ("pending", "firing"); ("firing", "ok") ]
          (List.map
             (fun (tr : Alert.transition) -> (tr.Alert.from_state, tr.Alert.to_state))
             (Alert.log a)));
    tc "pending that stops holding never fires" (fun () ->
        let s = series [ (0, 50.) ] in
        let a = Alert.create () in
        Alert.add_rule a ~name:"hot" ~for_:100 (Alert.Series s) (Alert.Above 10.);
        eval_at a 10;
        Timeseries.record s ~ts_ns:20 1.;
        eval_at a 30;
        check Alcotest.string "back to ok" "ok" (state_kind (Alert.state a "hot"));
        eval_at a 500;
        check (Alcotest.list Alcotest.string) "never fired" [] (Alert.firing a));
    tc "rate rule on a counter series" (fun () ->
        let s = series [] in
        let a = Alert.create () in
        Alert.add_rule a ~name:"surge" (Alert.Series s)
          (Alert.Rate_above { per_second = 100.; window = 1_000_000_000 });
        Timeseries.record s ~ts_ns:0 0.;
        Timeseries.record s ~ts_ns:500_000_000 500.;
        eval_at a 500_000_000;
        check Alcotest.string "firing" "firing" (state_kind (Alert.state a "surge")));
    tc "rate rule across a counter reset resolves instead of firing"
      (fun () ->
        (* A polled counter that restarts (switch crash) makes the
           window's growth negative; Rate_above must read that as "not
           above", so a firing rule resolves and a quiet one never
           fires — pinned, because naively folding abs() here would
           alarm on every restart. *)
        let s = series [] in
        let a = Alert.create () in
        Alert.add_rule a ~name:"surge" (Alert.Series s)
          (Alert.Rate_above { per_second = 100.; window = 2_500_000_000 });
        Timeseries.record s ~ts_ns:0 0.;
        Timeseries.record s ~ts_ns:1_000_000_000 5000.;
        eval_at a 1_000_000_000;
        check Alcotest.string "firing before the reset" "firing"
          (state_kind (Alert.state a "surge"));
        (* the counter restarts from zero *)
        Timeseries.record s ~ts_ns:2_000_000_000 0.;
        eval_at a 2_000_000_000;
        check Alcotest.string "reset resolves the rule" "ok"
          (state_kind (Alert.state a "surge"));
        (* while the pre-reset peak is still inside the window the
           measured growth is negative — not "above", so no alarm *)
        Timeseries.record s ~ts_ns:3_000_000_000 900.;
        eval_at a 3_000_000_000;
        check Alcotest.string "negative rate stays ok" "ok"
          (state_kind (Alert.state a "surge"));
        check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.option Alcotest.int)))
          "one closed breach window"
          [ (1_000_000_000, Some 2_000_000_000) ]
          (Alert.breaches a "surge"));
    tc "absence rule: series silence and sampled None" (fun () ->
        let s = series [ (0, 1.) ] in
        let a = Alert.create () in
        Alert.add_rule a ~name:"stale" (Alert.Series s)
          (Alert.Absent { window = 100 });
        Alert.add_rule a ~name:"gone" (Alert.Sampled (fun _ -> None))
          (Alert.Absent { window = 1 });
        eval_at a 50;
        check Alcotest.string "fresh" "ok" (state_kind (Alert.state a "stale"));
        check Alcotest.string "sampled none fires" "firing"
          (state_kind (Alert.state a "gone"));
        eval_at a 200;
        check Alcotest.string "silence fires" "firing"
          (state_kind (Alert.state a "stale")));
    tc "breaches pairs firing windows" (fun () ->
        let v = ref 0. in
        let a = Alert.create () in
        Alert.add_rule a ~name:"r" (Alert.Sampled (fun _ -> Some !v))
          (Alert.Above 1.);
        eval_at a 0;
        v := 5.;
        eval_at a 10;
        v := 0.;
        eval_at a 20;
        v := 5.;
        eval_at a 30;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.option Alcotest.int)))
          "two windows, second still open"
          [ (10, Some 20); (30, None) ]
          (Alert.breaches a "r"));
    tc "add_rule validates" (fun () ->
        let a = Alert.create () in
        Alert.add_rule a ~name:"x" (Alert.Sampled (fun _ -> Some 0.))
          (Alert.Above 1.);
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Alert.add_rule: duplicate rule \"x\"") (fun () ->
            Alert.add_rule a ~name:"x" (Alert.Sampled (fun _ -> Some 0.))
              (Alert.Above 1.));
        Alcotest.check_raises "sampled rate"
          (Invalid_argument "Alert.add_rule: rate conditions need a Series input")
          (fun () ->
            Alert.add_rule a ~name:"y" (Alert.Sampled (fun _ -> Some 0.))
              (Alert.Rate_above { per_second = 1.; window = 1 })));
    tc "eval rejects a backwards clock" (fun () ->
        let a = Alert.create () in
        eval_at a 100;
        Alcotest.check_raises "backwards"
          (Invalid_argument "Alert.eval: clock went backwards") (fun () ->
            eval_at a 99));
  ]

let suite =
  [
    ("timeseries_ring", ring_tests);
    ("timeseries_windows", window_tests);
    ("alert", alert_tests);
  ]
