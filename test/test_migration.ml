(* The transactional migration engine: circuit breaker, WAL semantics,
   the staged state machine, crash recovery, the fleet orchestrator, and
   the two acceptance scenarios (crash sweep, canary breach).

   The crash-sweep seeds honour QCHECK_SEED so the CI migration-chaos
   job can run the property under two different seeds. *)

open Simnet

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let env_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
  | None -> 42

(* ---- Breaker ---- *)

let breaker_tests =
  [
    tc "trips after threshold consecutive failures" (fun () ->
        let b =
          Harmless.Migration.Breaker.create ~threshold:2
            ~cooldown:(Sim_time.ms 10) ()
        in
        let at ms = Sim_time.of_ns (Sim_time.ms ms) in
        check Alcotest.bool "starts closed" true
          (Harmless.Migration.Breaker.allow b ~now:(at 0));
        Harmless.Migration.Breaker.record b ~now:(at 0) ~ok:false;
        check Alcotest.bool "one failure keeps it closed" true
          (Harmless.Migration.Breaker.allow b ~now:(at 1));
        Harmless.Migration.Breaker.record b ~now:(at 1) ~ok:false;
        check Alcotest.bool "second failure opens it" false
          (Harmless.Migration.Breaker.allow b ~now:(at 2));
        check Alcotest.int "one trip" 1 (Harmless.Migration.Breaker.trips b);
        check
          Alcotest.(option int)
          "reopens when the cooldown ends"
          (Some (Sim_time.to_ns (at 11)))
          (Option.map Sim_time.to_ns
             (Harmless.Migration.Breaker.reopen_at b)));
    tc "half-open probe success closes; failure re-trips" (fun () ->
        let b =
          Harmless.Migration.Breaker.create ~threshold:1
            ~cooldown:(Sim_time.ms 10) ()
        in
        let at ms = Sim_time.of_ns (Sim_time.ms ms) in
        Harmless.Migration.Breaker.record b ~now:(at 0) ~ok:false;
        check Alcotest.bool "open during cooldown" false
          (Harmless.Migration.Breaker.allow b ~now:(at 5));
        check Alcotest.bool "half-open after cooldown" true
          (Harmless.Migration.Breaker.allow b ~now:(at 10));
        Harmless.Migration.Breaker.record b ~now:(at 10) ~ok:false;
        check Alcotest.bool "probe failure re-opens" false
          (Harmless.Migration.Breaker.allow b ~now:(at 11));
        check Alcotest.int "two trips" 2 (Harmless.Migration.Breaker.trips b);
        check Alcotest.bool "half-open again after second cooldown" true
          (Harmless.Migration.Breaker.allow b ~now:(at 20));
        Harmless.Migration.Breaker.record b ~now:(at 20) ~ok:true;
        Harmless.Migration.Breaker.record b ~now:(at 21) ~ok:true;
        check Alcotest.bool "success closes it" true
          (Harmless.Migration.Breaker.allow b ~now:(at 21));
        check Alcotest.int "consecutive failures reset" 0
          (Harmless.Migration.Breaker.consecutive_failures b));
  ]

(* ---- WAL ---- *)

let wal_tests =
  [
    tc "round-trips through to_string/of_string" (fun () ->
        let w = Mgmt.Txn.create () in
        ignore (Mgmt.Txn.append w ~txn:"sw0" (Mgmt.Txn.Begin "device=sw0"));
        ignore (Mgmt.Txn.append w ~txn:"sw0" (Mgmt.Txn.Stage_start "precheck"));
        ignore (Mgmt.Txn.append w ~txn:"sw0" (Mgmt.Txn.Stage_done "precheck"));
        ignore (Mgmt.Txn.append w ~txn:"sw0" (Mgmt.Txn.Note "breadcrumb here"));
        ignore (Mgmt.Txn.append w ~txn:"sw1" (Mgmt.Txn.Begin "device=sw1"));
        ignore (Mgmt.Txn.append w ~txn:"sw0" Mgmt.Txn.Committed);
        match Mgmt.Txn.of_string (Mgmt.Txn.to_string w) with
        | Error e -> Alcotest.fail e
        | Ok w' ->
            check Alcotest.int "same length" (Mgmt.Txn.length w)
              (Mgmt.Txn.length w');
            check
              Alcotest.(list string)
              "same txns" (Mgmt.Txn.txns w) (Mgmt.Txn.txns w');
            check Alcotest.string "byte-identical re-serialization"
              (Mgmt.Txn.to_string w) (Mgmt.Txn.to_string w'));
    tc "resolve classifies every log shape" (fun () ->
        let w = Mgmt.Txn.create () in
        let res txn = Format.asprintf "%a" Mgmt.Txn.pp_resolution
            (Mgmt.Txn.resolve w ~txn) in
        check Alcotest.bool "no records -> fresh" true
          (Mgmt.Txn.resolve w ~txn:"ghost" = Mgmt.Txn.Fresh);
        ignore (Mgmt.Txn.append w ~txn:"a" (Mgmt.Txn.Begin "d"));
        check Alcotest.bool "begin only -> needs rollback" true
          (match Mgmt.Txn.resolve w ~txn:"a" with
          | Mgmt.Txn.Needs_rollback _ -> true
          | _ -> false);
        ignore (Mgmt.Txn.append w ~txn:"a" (Mgmt.Txn.Stage_start "shadow"));
        check Alcotest.bool "mid-stage names the stage" true
          (contains (res "a") "shadow");
        ignore (Mgmt.Txn.append w ~txn:"a" (Mgmt.Txn.Rollback "slo breach"));
        check Alcotest.bool "rollback without rolled-back -> needs rollback"
          true
          (match Mgmt.Txn.resolve w ~txn:"a" with
          | Mgmt.Txn.Needs_rollback why -> contains why "rollback"
          | _ -> false);
        ignore (Mgmt.Txn.append w ~txn:"a" Mgmt.Txn.Rolled_back);
        check Alcotest.bool "terminal rollback" true
          (match Mgmt.Txn.resolve w ~txn:"a" with
          | Mgmt.Txn.Rolled_back_ why -> contains why "slo breach"
          | _ -> false);
        ignore (Mgmt.Txn.append w ~txn:"b" (Mgmt.Txn.Begin "d"));
        ignore (Mgmt.Txn.append w ~txn:"b" Mgmt.Txn.Committed);
        check Alcotest.bool "committed is terminal" true
          (Mgmt.Txn.resolve w ~txn:"b" = Mgmt.Txn.Committed_));
    tc "armed crash fires after persisting the record" (fun () ->
        let w = Mgmt.Txn.create () in
        Mgmt.Txn.arm_crash w ~after:2;
        ignore (Mgmt.Txn.append w ~txn:"x" (Mgmt.Txn.Begin "d"));
        (try
           ignore (Mgmt.Txn.append w ~txn:"x" (Mgmt.Txn.Stage_start "precheck"));
           Alcotest.fail "expected Crashed"
         with Mgmt.Txn.Crashed -> ());
        check Alcotest.int "the fatal record was persisted first" 2
          (Mgmt.Txn.length w);
        check Alcotest.bool "crash disarmed after firing" false
          (Mgmt.Txn.crash_armed w));
    tc "of_string rejects non-increasing sequence numbers" (fun () ->
        match Mgmt.Txn.of_string "txn a 1 begin d\ntxn a 1 committed\n" with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e -> check Alcotest.bool "names the line" true (contains e "2"));
  ]

(* ---- single machine ---- *)

let machine_rig () =
  let engine = Engine.create () in
  let legacy = Ethswitch.Legacy_switch.create engine ~name:"m0" ~ports:3 () in
  let device = Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Cisco_like () in
  let wal = Mgmt.Txn.create () in
  (engine, device, wal)

let machine_tests =
  [
    tc "gateless run commits and journals ten records" (fun () ->
        let engine, device, wal = machine_rig () in
        let before = Mgmt.Device.running_config device in
        let plan =
          { Harmless.Migration.device; trunk_port = 2; access_ports = [ 0; 1 ];
            base_vid = None }
        in
        let m = Harmless.Migration.create engine ~wal plan in
        let seen = ref [] in
        Harmless.Migration.on_stage m (fun s ->
            seen := Harmless.Migration.stage_name s :: !seen);
        let st = Harmless.Migration.run m in
        check Alcotest.bool "committed" true (st = Harmless.Migration.Committed);
        check
          Alcotest.(list string)
          "stages in order"
          [ "precheck"; "shadow"; "canary"; "commit" ]
          (List.rev !seen);
        check Alcotest.int "ten WAL records" 10
          (List.length (Mgmt.Txn.records_of wal ~txn:"m0"));
        check Alcotest.bool "port map computed" true
          (Harmless.Migration.port_map m <> None);
        let map = Option.get (Harmless.Migration.port_map m) in
        let want =
          Harmless.Manager.candidate_config ~device ~trunk_port:2 ~map ()
        in
        check Alcotest.bool "running config is the candidate" true
          (Mgmt.Device_config.equal_modes
             (Mgmt.Device.running_config device)
             want);
        check Alcotest.bool "config actually changed" false
          (Mgmt.Device_config.equal_modes before
             (Mgmt.Device.running_config device)));
    tc "shadow hook failure rolls the device back" (fun () ->
        let engine, device, wal = machine_rig () in
        let before = Mgmt.Device.running_config device in
        let plan =
          { Harmless.Migration.device; trunk_port = 2; access_ports = [ 0; 1 ];
            base_vid = None }
        in
        let hooks =
          { Harmless.Migration.no_hooks with
            on_shadow = (fun _ -> Error "no soft-switch capacity") }
        in
        let m = Harmless.Migration.create engine ~wal ~hooks plan in
        (match Harmless.Migration.run m with
        | Harmless.Migration.Rolled_back why ->
            check Alcotest.bool "reason kept" true
              (contains why "no soft-switch capacity")
        | st ->
            Alcotest.failf "expected rollback, got %a"
              Harmless.Migration.pp_status st);
        check Alcotest.int "one rollback" 1 (Harmless.Migration.rollbacks m);
        check Alcotest.bool "device untouched" true
          (Mgmt.Device_config.equal_modes before
             (Mgmt.Device.running_config device));
        check Alcotest.bool "rollback journaled" true
          (List.exists
             (fun (r : Mgmt.Txn.record) ->
               match r.entry with Mgmt.Txn.Rolled_back -> true | _ -> false)
             (Mgmt.Txn.records_of wal ~txn:"m0")));
    tc "canary gate breach triggers rollback" (fun () ->
        let engine, device, wal = machine_rig () in
        let before = Mgmt.Device.running_config device in
        let plan =
          { Harmless.Migration.device; trunk_port = 2; access_ports = [ 0; 1 ];
            base_vid = None }
        in
        let probes = ref 0 in
        let gate =
          Harmless.Migration.gate
            ~interval:(Sim_time.ms 1) ~warmup:(Sim_time.ms 2)
            ~window:(Sim_time.ms 10)
            ~probe:(fun () -> incr probes)
            ~healthy:(fun ~now_ns:_ ->
              if !probes >= 4 then Error "latency SLO breach" else Ok ())
            ()
        in
        let m = Harmless.Migration.create engine ~wal ~gate plan in
        (match Harmless.Migration.run m with
        | Harmless.Migration.Rolled_back why ->
            check Alcotest.bool "slo reason surfaced" true
              (contains why "latency SLO breach")
        | st ->
            Alcotest.failf "expected rollback, got %a"
              Harmless.Migration.pp_status st);
        check Alcotest.bool "device restored" true
          (Mgmt.Device_config.equal_modes before
             (Mgmt.Device.running_config device)));
    tc "recover is a no-op on a committed transaction" (fun () ->
        let engine, device, wal = machine_rig () in
        let plan =
          { Harmless.Migration.device; trunk_port = 2; access_ports = [ 0; 1 ];
            base_vid = None }
        in
        let m = Harmless.Migration.create engine ~wal plan in
        ignore (Harmless.Migration.run m);
        let len = Mgmt.Txn.length wal in
        match Harmless.Migration.recover ~wal ~txn_id:"m0" ~device () with
        | Error e -> Alcotest.fail e
        | Ok r ->
            check Alcotest.bool "stays committed" true
              (r.Harmless.Migration.status = Harmless.Migration.Committed);
            check Alcotest.int "no new records" len (Mgmt.Txn.length wal));
  ]

(* ---- acceptance scenarios ---- *)

let sweep_seeds = [ env_seed; 1337 ]

let check_sweep seed =
  match Harmless.Migration_rig.crash_sweep ~seed () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check Alcotest.bool
        (Printf.sprintf "baseline committed (seed %d)" seed)
        true
        (s.Harmless.Migration_rig.baseline_status = "committed"
        && s.Harmless.Migration_rig.baseline_probe_ok);
      List.iter
        (fun (p : Harmless.Migration_rig.point) ->
          let label what =
            Printf.sprintf "crash@%d (seed %d): %s" p.crash_after seed what
          in
          check Alcotest.bool (label "config consistent") true p.consistent;
          check Alcotest.bool (label "recovery idempotent") true p.idempotent;
          check Alcotest.bool (label "probes answered") true p.probe_ok)
        s.Harmless.Migration_rig.points;
      check Alcotest.bool (Printf.sprintf "sweep verdict (seed %d)" seed) true
        s.Harmless.Migration_rig.ok

let scenario_tests =
  [
    tc "crash sweep recovers at every WAL boundary (two seeds)" (fun () ->
        List.iter check_sweep sweep_seeds);
    tc "same seed yields a byte-identical sweep report" (fun () ->
        let render () =
          match Harmless.Migration_rig.crash_sweep ~seed:env_seed () with
          | Error e -> Alcotest.fail e
          | Ok s -> Harmless.Migration_rig.render_sweep s
        in
        check Alcotest.string "deterministic report" (render ()) (render ()));
    tc "canary SLO breach rolls back and aborts the fleet" (fun () ->
        match Harmless.Migration_rig.canary_breach ~seed:42 () with
        | Error e -> Alcotest.fail e
        | Ok b ->
            check Alcotest.string "pinned rollback reason"
              "canary SLO breach: probe-liveness"
              b.Harmless.Migration_rig.rollback_reason;
            check Alcotest.bool "fleet aborted" true
              b.Harmless.Migration_rig.aborted;
            check Alcotest.int "remaining switches untouched" 2
              b.Harmless.Migration_rig.skipped;
            check Alcotest.int "exactly one rollback" 1
              b.Harmless.Migration_rig.rollbacks_total;
            check Alcotest.bool "connectivity restored" true
              b.Harmless.Migration_rig.probe_ok;
            check Alcotest.bool "verdict" true b.Harmless.Migration_rig.ok);
  ]

(* ---- fleet ---- *)

let fleet_tests =
  [
    tc "fleet migrates every switch under concurrency 1" (fun () ->
        match Harmless.Migration_rig.build ~num_switches:3 ~seed:7 () with
        | Error e -> Alcotest.fail e
        | Ok t ->
            let fl = Harmless.Migration_rig.fleet ~concurrency:1 t in
            Harmless.Migration.Fleet.run fl;
            let r = Harmless.Migration.Fleet.report fl in
            check Alcotest.int "all committed" 3
              r.Harmless.Migration.Fleet.committed;
            check Alcotest.bool "fleet done" true
              (Harmless.Migration.Fleet.state fl = Harmless.Migration.Fleet.Done);
            check Alcotest.bool "probes pass end to end" true
              (Harmless.Migration_rig.probe_all t);
            let panel =
              Harmless.Dashboard.render_migration
                ~wal:(Harmless.Migration_rig.wal t) fl
            in
            check Alcotest.bool "panel shows fleet progress" true
              (contains panel "3/3 committed");
            check Alcotest.bool "panel shows breaker state" true
              (contains panel "breaker: closed");
            check Alcotest.bool "panel summarises the WAL" true
              (contains panel "3 transaction(s)"));
    tc "pause holds the queue; resume drains it" (fun () ->
        match Harmless.Migration_rig.build ~num_switches:3 ~seed:7 () with
        | Error e -> Alcotest.fail e
        | Ok t ->
            let eng = Harmless.Migration_rig.engine t in
            let fl = Harmless.Migration_rig.fleet ~concurrency:1 t in
            Harmless.Migration.Fleet.start fl;
            Harmless.Migration.Fleet.pause fl;
            Engine.run eng
              ~until:(Sim_time.add (Engine.now eng) (Sim_time.ms 200));
            let done_while_paused =
              List.length
                (List.filter
                   (fun ((_, st) : string * Harmless.Migration.Fleet.member_status) ->
                     match st with
                     | Harmless.Migration.Fleet.Done _ -> true
                     | _ -> false)
                   (Harmless.Migration.Fleet.progress fl))
            in
            check Alcotest.int "only the in-flight member finished" 1
              done_while_paused;
            check Alcotest.bool "paused" true
              (Harmless.Migration.Fleet.state fl
              = Harmless.Migration.Fleet.Paused);
            check Alcotest.int "nothing in flight" 0
              (Harmless.Migration.Fleet.in_flight fl);
            Harmless.Migration.Fleet.resume fl;
            Engine.run eng
              ~until:(Sim_time.add (Engine.now eng) (Sim_time.ms 500));
            let r = Harmless.Migration.Fleet.report fl in
            check Alcotest.int "rest completed after resume" 3
              r.Harmless.Migration.Fleet.committed);
    tc "abort skips the queue and reports why" (fun () ->
        match Harmless.Migration_rig.build ~num_switches:3 ~seed:7 () with
        | Error e -> Alcotest.fail e
        | Ok t ->
            let eng = Harmless.Migration_rig.engine t in
            let fl = Harmless.Migration_rig.fleet ~concurrency:1 t in
            Harmless.Migration.Fleet.start fl;
            Harmless.Migration.Fleet.abort fl ~reason:"operator stop";
            Engine.run eng
              ~until:(Sim_time.add (Engine.now eng) (Sim_time.ms 200));
            let r = Harmless.Migration.Fleet.report fl in
            check Alcotest.bool "aborted with the reason" true
              (match r.Harmless.Migration.Fleet.aborted with
              | Some why -> contains why "operator stop"
              | None -> false);
            check Alcotest.int "queued members skipped" 2
              r.Harmless.Migration.Fleet.skipped;
            check Alcotest.bool "panel renders the abort" true
              (contains (Harmless.Migration.Fleet.render fl) "operator stop"));
  ]

let suite =
  [
    ("migration breaker", breaker_tests);
    ("migration wal", wal_tests);
    ("migration machine", machine_tests);
    ("migration scenarios", scenario_tests);
    ("migration fleet", fleet_tests);
  ]
