(* Aggregates every suite; `dune runtest` runs the lot. *)

let () =
  Alcotest.run "harmless-repro"
    (Test_wire.suite @ Test_netpkt.suite @ Test_simnet.suite @ Test_ethswitch.suite
   @ Test_openflow.suite @ Test_softswitch.suite @ Test_mgmt.suite
   @ Test_controller.suite @ Test_costmodel.suite @ Test_harmless.suite
   @ Test_integration.suite @ Test_meters.suite @ Test_scaleout.suite
   @ Test_codec.suite @ Test_monitor.suite @ Test_failover.suite
   @ Test_dns.suite @ Test_port_status.suite @ Test_impairments.suite @ Test_tcp_session.suite @ Test_inventory.suite @ Test_sampling.suite @ Test_properties.suite
   @ Test_telemetry.suite @ Test_fault.suite @ Test_chaos.suite
   @ Test_timeseries.suite @ Test_poller.suite @ Test_check.suite
   @ Test_perf.suite @ Test_memtel.suite @ Test_migration.suite
   @ Test_eventlog.suite @ Test_policy.suite @ Test_sketch.suite
   @ Test_flowrec.suite)
