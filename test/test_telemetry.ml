(* The telemetry layer: registry semantics, trace assembly, exporter
   golden outputs, and the end-to-end hop sequence of a ping through a
   HARMLESS deployment. *)

open Telemetry
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- registry: counters, gauges, histograms ---- *)

let registry_tests =
  [
    tc "counter increments" (fun () ->
        let r = Registry.create () in
        let c = Registry.Counter.v ~registry:r "requests_total" in
        Registry.Counter.inc c;
        Registry.Counter.inc ~by:4 c;
        check Alcotest.int "value" 5 (Registry.Counter.value c));
    tc "same name+labels is the same series" (fun () ->
        let r = Registry.create () in
        let a = Registry.Counter.v ~registry:r "hits_total" in
        let b = Registry.Counter.v ~registry:r "hits_total" in
        Registry.Counter.inc a;
        Registry.Counter.inc b;
        check Alcotest.int "shared" 2 (Registry.Counter.value a));
    tc "label order does not matter" (fun () ->
        let r = Registry.create () in
        let a =
          Registry.Counter.v ~registry:r
            ~labels:[ ("a", "1"); ("b", "2") ]
            "hits_total"
        in
        let b =
          Registry.Counter.v ~registry:r
            ~labels:[ ("b", "2"); ("a", "1") ]
            "hits_total"
        in
        Registry.Counter.inc a;
        Registry.Counter.inc b;
        check Alcotest.int "normalized" 2 (Registry.Counter.value a));
    tc "distinct labels are distinct series" (fun () ->
        let r = Registry.create () in
        let a = Registry.Counter.v ~registry:r ~labels:[ ("sw", "1") ] "x_total" in
        let b = Registry.Counter.v ~registry:r ~labels:[ ("sw", "2") ] "x_total" in
        Registry.Counter.inc a;
        check Alcotest.int "other untouched" 0 (Registry.Counter.value b));
    tc "kind mismatch raises" (fun () ->
        let r = Registry.create () in
        ignore (Registry.Counter.v ~registry:r "mixed");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument
             "Telemetry.Registry: metric \"mixed\" already registered as a counter")
          (fun () -> ignore (Registry.Gauge.v ~registry:r "mixed")));
    tc "invalid names and labels raise" (fun () ->
        let r = Registry.create () in
        let raises f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        raises (fun () -> Registry.Counter.v ~registry:r "1bad");
        raises (fun () -> Registry.Counter.v ~registry:r "has space");
        raises (fun () ->
            Registry.Counter.v ~registry:r ~labels:[ ("9x", "v") ] "ok");
        raises (fun () ->
            Registry.Counter.v ~registry:r ~labels:[ ("quantile", "v") ] "ok");
        raises (fun () ->
            Registry.Counter.v ~registry:r
              ~labels:[ ("a", "1"); ("a", "2") ]
              "ok");
        raises (fun () ->
            Registry.Counter.inc ~by:(-1) (Registry.Counter.v ~registry:r "ok")));
    tc "gauge set/add/set_int" (fun () ->
        let r = Registry.create () in
        let g = Registry.Gauge.v ~registry:r "depth" in
        Registry.Gauge.set g 2.5;
        Registry.Gauge.add g 1.0;
        check (Alcotest.float 1e-9) "float" 3.5 (Registry.Gauge.value g);
        Registry.Gauge.set_int g 7;
        check (Alcotest.float 1e-9) "int" 7.0 (Registry.Gauge.value g));
    tc "histogram exact below 64, ~6% above" (fun () ->
        let r = Registry.create () in
        let h = Registry.Histogram.v ~registry:r "lat" in
        List.iter (Registry.Histogram.observe h) [ 1; 2; 3 ];
        check Alcotest.int "count" 3 (Registry.Histogram.count h);
        check (Alcotest.float 1e-9) "sum" 6.0 (Registry.Histogram.sum h);
        check (Alcotest.float 1e-9) "mean" 2.0 (Registry.Histogram.mean h);
        check Alcotest.int "p50" 2 (Registry.Histogram.percentile h 50.0);
        check Alcotest.int "p99" 3 (Registry.Histogram.percentile h 99.0);
        let big = Registry.Histogram.v ~registry:r "lat_big" in
        for _ = 1 to 9 do Registry.Histogram.observe big 1000 done;
        Registry.Histogram.observe big 2000;
        let p50 = Registry.Histogram.percentile big 50.0 in
        if p50 < 1000 || p50 > 1060 then
          Alcotest.failf "p50 %d outside 6%% of 1000" p50);
    tc "histogram rejects negatives and empty percentile" (fun () ->
        let r = Registry.create () in
        let h = Registry.Histogram.v ~registry:r "lat" in
        (match Registry.Histogram.observe h (-1) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "negative observe");
        match Registry.Histogram.percentile h 50.0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "empty percentile");
    tc "reset zeroes, registrations survive" (fun () ->
        let r = Registry.create () in
        let c = Registry.Counter.v ~registry:r ~labels:[ ("k", "v") ] "c_total" in
        let g = Registry.Gauge.v ~registry:r "g" in
        let h = Registry.Histogram.v ~registry:r "h" in
        Registry.Counter.inc ~by:5 c;
        Registry.Gauge.set g 1.5;
        Registry.Histogram.observe h 10;
        Registry.reset r;
        check Alcotest.int "counter" 0 (Registry.Counter.value c);
        check (Alcotest.float 1e-9) "gauge" 0.0 (Registry.Gauge.value g);
        check Alcotest.int "histogram" 0 (Registry.Histogram.count h);
        let text = Registry.to_prometheus r in
        List.iter
          (fun needle ->
            if not (contains ~needle text) then
              Alcotest.failf "%S missing after reset" needle)
          [ "c_total"; "g 0"; "h_count 0" ]);
    tc "publish_ints snapshots a stats list into gauges" (fun () ->
        let r = Registry.create () in
        Registry.publish_ints ~registry:r ~prefix:"node"
          ~labels:[ ("dev", "sw0") ]
          [ ("rx", 3); ("tx[0]", 1) ];
        let text = Registry.to_prometheus r in
        List.iter
          (fun needle ->
            if not (contains ~needle text) then
              Alcotest.failf "%S missing from:\n%s" needle text)
          [ {|node_rx{dev="sw0"} 3|}; {|node_tx_0_{dev="sw0"} 1|} ]);
  ]

(* ---- golden exposition outputs ---- *)

let golden_registry () =
  let r = Registry.create () in
  let c = Registry.Counter.v ~registry:r ~help:"Total requests" "requests_total" in
  Registry.Counter.inc ~by:3 c;
  Registry.Counter.inc ~by:2
    (Registry.Counter.v ~registry:r ~help:"Total requests"
       ~labels:[ ("switch", "ss1") ]
       "requests_total");
  Registry.Gauge.set (Registry.Gauge.v ~registry:r "queue_depth") 2.5;
  let h = Registry.Histogram.v ~registry:r "latency_ns" in
  List.iter (Registry.Histogram.observe h) [ 1; 2; 3 ];
  r

let golden_tests =
  [
    tc "prometheus text" (fun () ->
        let expected =
          "# TYPE latency_ns summary\n\
           latency_ns{quantile=\"0.5\"} 2\n\
           latency_ns{quantile=\"0.9\"} 3\n\
           latency_ns{quantile=\"0.99\"} 3\n\
           latency_ns_sum 6\n\
           latency_ns_count 3\n\
           # TYPE queue_depth gauge\n\
           queue_depth 2.5\n\
           # HELP requests_total Total requests\n\
           # TYPE requests_total counter\n\
           requests_total 3\n\
           requests_total{switch=\"ss1\"} 2\n"
        in
        check Alcotest.string "exposition" expected
          (Registry.to_prometheus (golden_registry ())));
    tc "json exposition" (fun () ->
        let expected =
          {|{"metrics":[{"name":"latency_ns","type":"histogram","help":"","series":[{"labels":{},"value":{"count":3,"sum":6,"mean":2,"p50":2,"p90":3,"p99":3}}]},{"name":"queue_depth","type":"gauge","help":"","series":[{"labels":{},"value":2.5}]},{"name":"requests_total","type":"counter","help":"Total requests","series":[{"labels":{},"value":3},{"labels":{"switch":"ss1"},"value":2}]}]}|}
        in
        check Alcotest.string "json" expected
          (Registry.to_json (golden_registry ())));
    tc "chrome trace events" (fun () ->
        let hop ~seq ~ts_ns ~stage ~port ~cycles ~detail =
          {
            Trace.seq;
            ts_ns;
            component = "sw0";
            layer = Trace.Switch;
            stage;
            port;
            trace_key = 0xabc;
            packet = "pkt";
            bytes = 64;
            cycles;
            words = 0;
            detail;
          }
        in
        let hops =
          [
            hop ~seq:1 ~ts_ns:1000 ~stage:"rx" ~port:(Some 2) ~cycles:0 ~detail:"";
            hop ~seq:2 ~ts_ns:1500 ~stage:"pipeline" ~port:None ~cycles:2400
              ~detail:"emc hit";
          ]
        in
        let expected =
          "[\n\
          \ {\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"name\":\"sw0\"}},\n\
          \ {\"name\":\"switch.rx\",\"cat\":\"switch\",\"ph\":\"X\",\"ts\":1,\"dur\":0.001,\"pid\":1,\"tid\":1,\"args\":{\"packet\":\"pkt\",\"trace_key\":\"00000abc\",\"bytes\":64,\"port\":2}},\n\
          \ {\"name\":\"switch.pipeline\",\"cat\":\"switch\",\"ph\":\"X\",\"ts\":1.5,\"dur\":1,\"pid\":1,\"tid\":1,\"args\":{\"packet\":\"pkt\",\"trace_key\":\"00000abc\",\"bytes\":64,\"cycles\":2400,\"detail\":\"emc hit\"}}\n\
           ]"
        in
        check Alcotest.string "chrome" expected (Chrome_trace.to_string hops));
  ]

(* ---- trace: keys, sink, collector assembly ---- *)

let pkt ~seq =
  Packet.icmp_echo
    ~dst:(Mac_addr.make_local 2)
    ~src:(Mac_addr.make_local 1)
    ~ip_src:(Ipv4_addr.of_string "10.0.0.1")
    ~ip_dst:(Ipv4_addr.of_string "10.0.0.2")
    ~id:1 ~seq

let trace_tests =
  [
    tc "key survives the tag path" (fun () ->
        let p = pkt ~seq:1 in
        let k = Trace.key_of_packet p in
        let tagged = Packet.push_vlan (Vlan.make 101) p in
        check Alcotest.int "push" k (Trace.key_of_packet tagged);
        let rewritten = Packet.set_outer_vid 202 tagged in
        check Alcotest.int "rewrite" k (Trace.key_of_packet rewritten);
        (match Packet.pop_vlan rewritten with
        | Some (_, popped) -> check Alcotest.int "pop" k (Trace.key_of_packet popped)
        | None -> Alcotest.fail "expected a tag");
        if Trace.key_of_packet (pkt ~seq:2) = k then
          Alcotest.fail "distinct packets should get distinct keys");
    tc "emit without a sink is a no-op" (fun () ->
        Trace.set_sink None;
        check Alcotest.bool "disabled" false (Trace.enabled ());
        Trace.emit ~ts_ns:0 ~component:"x" ~layer:Trace.Host ~stage:"tx"
          (pkt ~seq:1));
    tc "collector groups per packet, ordered by (ts, seq)" (fun () ->
        let p1 = pkt ~seq:1 and p2 = pkt ~seq:2 in
        let (), traces =
          Trace.with_collector (fun _ ->
              Trace.emit ~ts_ns:300 ~component:"c" ~layer:Trace.Host ~stage:"late" p1;
              Trace.emit ~ts_ns:100 ~component:"a" ~layer:Trace.Host ~stage:"first" p2;
              Trace.emit ~ts_ns:200 ~component:"b" ~layer:Trace.Host ~stage:"mid" p1)
        in
        check Alcotest.int "two traces" 2 (List.length traces);
        let t1 = List.nth traces 0 and t2 = List.nth traces 1 in
        (* p2's hop is earliest, so its trace comes first. *)
        check Alcotest.int "first trace key" (Trace.key_of_packet p2) t1.Trace.key;
        check
          Alcotest.(list string)
          "p1 hops sorted" [ "mid"; "late" ]
          (List.map (fun h -> h.Trace.stage) t2.Trace.hops));
    tc "with_collector restores the previous sink" (fun () ->
        let outer = ref 0 in
        Trace.set_sink (Some (fun _ -> incr outer));
        let (), _ =
          Trace.with_collector (fun _ ->
              Trace.emit ~ts_ns:1 ~component:"x" ~layer:Trace.Host ~stage:"tx"
                (pkt ~seq:1))
        in
        check Alcotest.int "outer sink not fed" 0 !outer;
        Trace.emit ~ts_ns:2 ~component:"x" ~layer:Trace.Host ~stage:"tx" (pkt ~seq:1);
        check Alcotest.int "outer sink restored" 1 !outer;
        Trace.set_sink None);
  ]

(* ---- integration: the Fig. 1 walk, observed ---- *)

let integration_tests =
  [
    tc "ping hop sequence through HARMLESS" (fun () ->
        let engine = Simnet.Engine.create () in
        let deployment =
          match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
        ignore
          (Sdnctl.Controller.attach_switch ctrl
             (Harmless.Deployment.controller_switch deployment));
        let run_to ms =
          Simnet.Engine.run engine
            ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms ms))
        in
        let ping seq =
          Simnet.Host.ping
            (Harmless.Deployment.host deployment 0)
            ~dst_mac:(Harmless.Deployment.host_mac 1)
            ~dst_ip:(Harmless.Deployment.host_ip 1)
            ~seq
        in
        run_to 5;
        (* Two warm-up pings: the first floods and teaches the
           controller h0, the second installs the h0 -> h1 flow. *)
        ping 1;
        run_to 50;
        ping 2;
        run_to 100;
        let (), traces = Trace.with_collector (fun _ -> ping 3; run_to 150) in
        let view = Harmless.Trace_view.of_deployment deployment in
        check Alcotest.int "request and reply" 2 (List.length traces);
        let request = List.nth traces 0 and reply = List.nth traces 1 in
        let expected =
          [
            "host-tx"; "legacy-ingress"; "tag-push"; "trunk-rx"; "translate";
            "patch-tx"; "ss2-rx"; "of-pipeline"; "ss2-tx"; "patch-rx";
            "translate"; "hairpin"; "legacy-trunk-ingress"; "tag-pop"; "host-rx";
          ]
        in
        check
          Alcotest.(list string)
          "echo request path" expected
          (Harmless.Trace_view.semantic_path view request);
        check
          Alcotest.(list string)
          "echo reply path" expected
          (Harmless.Trace_view.semantic_path view reply));
    tc "publish_metrics surfaces component tallies" (fun () ->
        let engine = Simnet.Engine.create () in
        let deployment =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
        ignore
          (Sdnctl.Controller.attach_switch ctrl
             (Harmless.Deployment.controller_switch deployment));
        Simnet.Engine.run engine
          ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 5));
        Simnet.Host.ping
          (Harmless.Deployment.host deployment 0)
          ~dst_mac:(Harmless.Deployment.host_mac 1)
          ~dst_ip:(Harmless.Deployment.host_ip 1)
          ~seq:1;
        Simnet.Engine.run engine
          ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 50));
        let r = Registry.create () in
        Simnet.Engine.publish_metrics ~registry:r engine;
        Sdnctl.Controller.publish_metrics ~registry:r ctrl;
        (match deployment.Harmless.Deployment.kind with
        | Harmless.Deployment.Harmless { legacy; prov; _ } ->
            Ethswitch.Legacy_switch.publish_metrics ~registry:r legacy;
            Softswitch.Soft_switch.publish_metrics ~registry:r
              prov.Harmless.Manager.ss1;
            Softswitch.Soft_switch.publish_metrics ~registry:r
              prov.Harmless.Manager.ss2
        | _ -> Alcotest.fail "expected a HARMLESS deployment");
        let text = Registry.to_prometheus r in
        List.iter
          (fun needle ->
            if not (contains ~needle text) then
              Alcotest.failf "%S missing from metrics:\n%s" needle text)
          [
            "sim_events_executed"; "controller_packet_ins";
            "ethswitch_rx"; "softswitch_packets";
          ])
  ]

let suite =
  [
    ("telemetry.registry", registry_tests);
    ("telemetry.golden", golden_tests);
    ("telemetry.trace", trace_tests);
    ("telemetry.integration", integration_tests);
  ]
