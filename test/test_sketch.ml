(* Sketch guarantees: count-min is overestimate-only and within the
   epsilon*N bound on a pinned seeded stream, HLL sits inside its error
   envelope at three cardinalities, space-saving never loses a heavy
   hitter above the floor, merges equal the sketch of the concatenated
   streams, and memory stays fixed while a million distinct flows pour
   through. *)

open Telemetry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen f)

(* A small update stream: (key, increment) pairs over a narrow key
   space so collisions and repeats actually happen. *)
let stream_gen =
  QCheck2.Gen.(list_size (int_bound 80) (pair (int_bound 50) (int_bound 20)))

let stream_print s =
  String.concat ";"
    (List.map (fun (k, n) -> Printf.sprintf "%d+%d" k n) s)

let exact_counts stream =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (k, n) ->
      Hashtbl.replace h k (n + Option.value ~default:0 (Hashtbl.find_opt h k)))
    stream;
  h

(* ---- shared mixer ---- *)

let mix_tests =
  [
    tc "deterministic and seed-sensitive" (fun () ->
        check Alcotest.int "same seed same value" (Sketch.mix ~seed:7 42)
          (Sketch.mix ~seed:7 42);
        check Alcotest.bool "seed matters" true
          (Sketch.mix ~seed:7 42 <> Sketch.mix ~seed:8 42));
    prop "non-negative for any input" QCheck2.Gen.int ~print:string_of_int
      (fun x ->
        Sketch.mix ~seed:1 x >= 0
        && Sketch.mix ~seed:max_int x >= 0
        && Sketch.mix ~seed:0 x >= 0);
  ]

(* ---- count-min ---- *)

let cm_of ~seed stream =
  let t = Sketch.Cm.create ~seed ~epsilon:0.02 ~delta:0.05 in
  List.iter (fun (k, n) -> Sketch.Cm.update t ~key:k n) stream;
  t

let cm_tests =
  [
    tc "dimensions follow epsilon and delta" (fun () ->
        let t = Sketch.Cm.create ~seed:42 ~epsilon:0.005 ~delta:0.01 in
        check Alcotest.int "width = ceil(e/eps)" 544 (Sketch.Cm.width t);
        check Alcotest.int "depth = ceil(ln 1/delta)" 5 (Sketch.Cm.depth t));
    tc "invalid parameters rejected" (fun () ->
        let bad f =
          try
            f ();
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ()
        in
        bad (fun () ->
            ignore (Sketch.Cm.create ~seed:1 ~epsilon:0. ~delta:0.1));
        bad (fun () ->
            ignore (Sketch.Cm.create ~seed:1 ~epsilon:1.5 ~delta:0.1));
        bad (fun () ->
            let t = Sketch.Cm.create ~seed:1 ~epsilon:0.1 ~delta:0.1 in
            Sketch.Cm.update t ~key:3 (-1));
        bad (fun () ->
            let a = Sketch.Cm.create ~seed:1 ~epsilon:0.1 ~delta:0.1 in
            let b = Sketch.Cm.create ~seed:2 ~epsilon:0.1 ~delta:0.1 in
            ignore (Sketch.Cm.merge a b)));
    prop "queries never underestimate" stream_gen ~print:stream_print
      (fun stream ->
        let t = cm_of ~seed:9 stream in
        let exact = exact_counts stream in
        Hashtbl.fold
          (fun k n ok -> ok && Sketch.Cm.query t ~key:k >= n)
          exact true
        && Sketch.Cm.total t = List.fold_left (fun a (_, n) -> a + n) 0 stream);
    prop "merge equals the sketch of the concatenated stream" stream_gen
      ~print:stream_print (fun stream ->
        let n = List.length stream / 2 in
        let a = List.filteri (fun i _ -> i < n) stream in
        let b = List.filteri (fun i _ -> i >= n) stream in
        Sketch.Cm.equal
          (Sketch.Cm.merge (cm_of ~seed:9 a) (cm_of ~seed:9 b))
          (cm_of ~seed:9 stream));
    prop "same seed, same stream, same sketch" stream_gen ~print:stream_print
      (fun stream ->
        Sketch.Cm.equal (cm_of ~seed:5 stream) (cm_of ~seed:5 stream));
    tc "epsilon bound holds on a seeded Zipf stream" (fun () ->
        (* 100k updates over 20k Zipf-distributed keys: every query must
           be an overestimate, and at least 1 - 2*delta of the keys must
           sit within ceil(epsilon * N) of the truth. *)
        let epsilon = 0.005 and delta = 0.01 in
        let t = Sketch.Cm.create ~seed:42 ~epsilon ~delta in
        let rng = Simnet.Rng.create 42 in
        let zipf = Simnet.Rng.Zipf.create ~n:20_000 ~skew:1.1 in
        let exact = Hashtbl.create 4096 in
        for _ = 1 to 100_000 do
          let k = Simnet.Rng.Zipf.draw zipf rng in
          Sketch.Cm.update t ~key:k 1;
          Hashtbl.replace exact k
            (1 + Option.value ~default:0 (Hashtbl.find_opt exact k))
        done;
        let bound =
          int_of_float (ceil (epsilon *. float_of_int (Sketch.Cm.total t)))
        in
        let keys, within =
          Hashtbl.fold
            (fun k n (keys, within) ->
              let est = Sketch.Cm.query t ~key:k in
              if est < n then Alcotest.failf "underestimate at key %d" k;
              (keys + 1, if est - n <= bound then within + 1 else within))
            exact (0, 0)
        in
        check Alcotest.int "stream length" 100_000 (Sketch.Cm.total t);
        check Alcotest.bool "within-bound fraction clears 1 - 2*delta" true
          (float_of_int within /. float_of_int keys >= 1. -. (2. *. delta)));
  ]

(* ---- HyperLogLog ---- *)

let hll_of ~seed keys =
  let t = Sketch.Hll.create ~seed ~p:10 in
  List.iter (Sketch.Hll.add t) keys;
  t

let hll_estimate_n ~n =
  let t = Sketch.Hll.create ~seed:42 ~p:14 in
  for i = 1 to n do
    Sketch.Hll.add t i;
    (* duplicates must be free *)
    Sketch.Hll.add t i
  done;
  Sketch.Hll.estimate t

let hll_tests =
  [
    tc "error envelope at three cardinalities" (fun () ->
        let rel n =
          abs_float (hll_estimate_n ~n -. float_of_int n) /. float_of_int n
        in
        check Alcotest.bool "100 within 2%" true (rel 100 <= 0.02);
        check Alcotest.bool "10^4 within 5%" true (rel 10_000 <= 0.05);
        check Alcotest.bool "10^5 within 5%" true (rel 100_000 <= 0.05));
    tc "p out of range and seed mismatch rejected" (fun () ->
        let bad f =
          try
            f ();
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ()
        in
        bad (fun () -> ignore (Sketch.Hll.create ~seed:1 ~p:3));
        bad (fun () -> ignore (Sketch.Hll.create ~seed:1 ~p:17));
        bad (fun () ->
            ignore
              (Sketch.Hll.merge
                 (Sketch.Hll.create ~seed:1 ~p:10)
                 (Sketch.Hll.create ~seed:2 ~p:10))));
    prop "merge equals the sketch of the union"
      QCheck2.Gen.(pair (list small_nat) (list small_nat))
      ~print:(fun (a, b) ->
        Printf.sprintf "(%d,%d keys)" (List.length a) (List.length b))
      (fun (a, b) ->
        Sketch.Hll.equal
          (Sketch.Hll.merge (hll_of ~seed:3 a) (hll_of ~seed:3 b))
          (hll_of ~seed:3 (a @ b)));
    prop "same seed, same keys, same registers" QCheck2.Gen.(list small_nat)
      ~print:(fun l -> string_of_int (List.length l))
      (fun keys ->
        Sketch.Hll.equal (hll_of ~seed:11 keys) (hll_of ~seed:11 keys));
  ]

(* ---- space-saving top-k ---- *)

let topk_of ~k stream =
  let t = Sketch.Topk.create ~k in
  List.iter
    (fun (key, n) -> Sketch.Topk.observe t ~key:(string_of_int key) ~n)
    stream;
  t

let topk_tests =
  [
    tc "exact below capacity, ordered count desc then key asc" (fun () ->
        let t = Sketch.Topk.create ~k:8 in
        List.iter
          (fun (key, n) -> Sketch.Topk.observe t ~key ~n)
          [ ("b", 5); ("a", 9); ("c", 5); ("a", 1) ];
        check Alcotest.int "floor" 0 (Sketch.Topk.floor t);
        check
          Alcotest.(list (triple string int int))
          "exact ordered list"
          [ ("a", 10, 0); ("b", 5, 0); ("c", 5, 0) ]
          (Sketch.Topk.to_list t));
    tc "eviction transfers the floor into the newcomer's error" (fun () ->
        let t = Sketch.Topk.create ~k:2 in
        Sketch.Topk.observe t ~key:"a" ~n:5;
        Sketch.Topk.observe t ~key:"b" ~n:3;
        Sketch.Topk.observe t ~key:"c" ~n:1;
        (* b (the minimum, 3) is evicted; c inherits 3 as error *)
        check Alcotest.int "floor is the evicted count" 3 (Sketch.Topk.floor t);
        check
          Alcotest.(option (pair int int))
          "newcomer count/err" (Some (4, 3))
          (Sketch.Topk.find t "c");
        check Alcotest.(option (pair int int)) "survivor untouched"
          (Some (5, 0)) (Sketch.Topk.find t "a");
        check Alcotest.(option (pair int int)) "victim gone" None
          (Sketch.Topk.find t "b"));
    prop "counts bracket the truth; heavy keys above the floor survive"
      stream_gen ~print:stream_print (fun stream ->
        let t = topk_of ~k:4 stream in
        let exact = exact_counts stream in
        let floor = Sketch.Topk.floor t in
        List.for_all
          (fun (key, count, err) ->
            let truth =
              Option.value ~default:0 (Hashtbl.find_opt exact (int_of_string key))
            in
            count >= truth && count - err <= truth)
          (Sketch.Topk.to_list t)
        && Hashtbl.fold
             (fun key n ok ->
               ok
               && (n <= floor
                  || Sketch.Topk.find t (string_of_int key) <> None))
             exact true
        && Sketch.Topk.size t <= 4);
    prop "merge is exact when neither side ever evicted" stream_gen
      ~print:stream_print (fun stream ->
        let n = List.length stream / 2 in
        let a = List.filteri (fun i _ -> i < n) stream in
        let b = List.filteri (fun i _ -> i >= n) stream in
        (* k = 64 > the 51-key space: no evictions anywhere *)
        Sketch.Topk.equal
          (Sketch.Topk.merge (topk_of ~k:64 a) (topk_of ~k:64 b))
          (topk_of ~k:64 stream));
    tc "k must be positive; merge needs matching k" (fun () ->
        let bad f =
          try
            f ();
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ()
        in
        bad (fun () -> ignore (Sketch.Topk.create ~k:0));
        bad (fun () ->
            ignore
              (Sketch.Topk.merge
                 (Sketch.Topk.create ~k:2)
                 (Sketch.Topk.create ~k:3))));
  ]

(* ---- the acceptance bound: fixed memory at fabric scale ---- *)

let memory_tests =
  [
    tc "memory is flat across a million distinct flows" (fun () ->
        let cm = Sketch.Cm.create ~seed:42 ~epsilon:0.005 ~delta:0.01 in
        let hll = Sketch.Hll.create ~seed:42 ~p:14 in
        let topk = Sketch.Topk.create ~k:32 in
        let cm0 = Sketch.Cm.memory_words cm in
        let hll0 = Sketch.Hll.memory_words hll in
        let topk_bound = Sketch.Topk.memory_words topk in
        for i = 1 to 1_000_000 do
          Sketch.Cm.update cm ~key:i 1;
          Sketch.Hll.add hll i;
          if i mod 61 = 0 then
            (* a sparse sampled sub-stream, as the flow recorder feeds it *)
            Sketch.Topk.observe topk ~key:(string_of_int i) ~n:1
        done;
        check Alcotest.int "count-min words unchanged" cm0
          (Sketch.Cm.memory_words cm);
        check Alcotest.int "hll words unchanged" hll0
          (Sketch.Hll.memory_words hll);
        check Alcotest.bool "top-k stays within its k-bounded envelope" true
          (Sketch.Topk.memory_words topk
          <= topk_bound + (32 * (3 + String.length "1000000")));
        check Alcotest.bool "top-k holds at most k entries" true
          (Sketch.Topk.size topk <= 32);
        check Alcotest.int "nothing lost: total matches the stream" 1_000_000
          (Sketch.Cm.total cm);
        check Alcotest.bool "hll tracks the million within 5%" true
          (abs_float (Sketch.Hll.estimate hll -. 1e6) /. 1e6 <= 0.05));
  ]

let suite =
  [
    ("sketch.mix", mix_tests);
    ("sketch.cm", cm_tests);
    ("sketch.hll", hll_tests);
    ("sketch.topk", topk_tests);
    ("sketch.memory", memory_tests);
  ]
