(* The monitoring plane end to end: the stats poller feeding series
   from a live deployment, backoff under a channel outage, exact byte
   rankings for top-talkers, SLO breach windows in chaos reports, and
   the determinism of the harmlessctl dashboard frames. *)

open Simnet

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what ~needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected %S in:\n%s" what needle hay

let demo_exn () =
  match Harmless.Dashboard.demo () with
  | Ok d -> d
  | Error m -> failwith m

let poller_tests =
  [
    tc "poller fills flow/port/rtt series from a live deployment" (fun () ->
        let d = demo_exn () in
        Harmless.Dashboard.advance d (Sim_time.ms 60);
        let p = Harmless.Dashboard.poller d in
        let module SP = Sdnctl.Stats_poller in
        check Alcotest.bool "rounds" true (SP.rounds_issued p >= 4);
        check Alcotest.bool "flow replies" true (SP.flow_replies p > 0);
        check Alcotest.bool "port replies" true (SP.port_replies p > 0);
        check Alcotest.bool "echo replies" true (SP.rtt_replies p > 0);
        check Alcotest.bool "no failures" true (SP.consecutive_failures p = 0);
        (* port stats carry the byte counters the codec now round-trips *)
        let ports = SP.latest_ports p in
        check Alcotest.bool "ports reported" true (ports <> []);
        check Alcotest.bool "bytes counted" true
          (List.exists
             (fun (s : Openflow.Of_message.port_stat) ->
               s.Openflow.Of_message.rx_bytes > 0)
             ports);
        (* every reported port has a cumulative rx series *)
        List.iter
          (fun (s : Openflow.Of_message.port_stat) ->
            match SP.port_rx_series p s.Openflow.Of_message.port_no with
            | None -> Alcotest.fail "port without rx series"
            | Some ts ->
                check Alcotest.bool "series fed" true
                  (Telemetry.Timeseries.length ts > 0))
          ports;
        (* the hairpin RTT is a positive gauge *)
        (match Telemetry.Timeseries.last (SP.rtt_series p) with
        | Some (_, rtt) -> check Alcotest.bool "rtt > 0" true (rtt > 0.)
        | None -> Alcotest.fail "no rtt sample");
        (* flow series exist for every key ever seen *)
        let keys = SP.flow_keys p in
        check Alcotest.bool "flow keys" true (keys <> []);
        List.iter
          (fun k ->
            check Alcotest.bool "bytes series" true
              (SP.flow_bytes_series p k <> None);
            check Alcotest.bool "packets series" true
              (SP.flow_packets_series p k <> None))
          keys;
        (* top_flows is rate-descending *)
        let now = Harmless.Dashboard.now_ns d in
        let top = SP.top_flows p ~n:5 ~now_ns:now ~window:(Sim_time.ms 30) in
        let rec sorted = function
          | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
          | _ -> true
        in
        check Alcotest.bool "top sorted" true (sorted top));
    tc "backoff grows during an outage and snaps back on recovery" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
        let dpid =
          Sdnctl.Controller.attach_switch ctrl
            (Harmless.Deployment.controller_switch d)
        in
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        let period = Sim_time.ms 1 in
        let p = Sdnctl.Stats_poller.create ~period ctrl dpid in
        Sdnctl.Stats_poller.start p;
        let run span =
          Engine.run engine ~until:(Sim_time.add (Engine.now engine) span)
        in
        run (Sim_time.ms 5);
        check Alcotest.int "healthy: no failures" 0
          (Sdnctl.Stats_poller.consecutive_failures p);
        check Alcotest.int "healthy: base period" period
          (Sdnctl.Stats_poller.current_delay p);
        (* blackhole the channel; no keepalive here so the state flips
           synchronously and every poll round now counts as a failure *)
        let ch = Sdnctl.Controller.channel ctrl dpid in
        Sdnctl.Channel.set_down ch true;
        run (Sim_time.ms 40);
        let failures = Sdnctl.Stats_poller.consecutive_failures p in
        check Alcotest.bool "outage: failures accumulate" true (failures >= 2);
        check Alcotest.bool "outage: delay beyond period" true
          (Sdnctl.Stats_poller.current_delay p > period);
        check Alcotest.int "outage: delay follows the retry policy"
          (max period
             (Mgmt.Retry.delay_before_attempt Mgmt.Retry.default
                ~attempt:failures))
          (Sdnctl.Stats_poller.current_delay p);
        Sdnctl.Channel.set_down ch false;
        run (Sim_time.ms 60);
        check Alcotest.int "recovery: failures reset" 0
          (Sdnctl.Stats_poller.consecutive_failures p);
        check Alcotest.int "recovery: base period" period
          (Sdnctl.Stats_poller.current_delay p));
    tc "top-talkers byte ranking comes from polled flow counters" (fun () ->
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let pairs =
          [
            (Harmless.Deployment.host_ip 0, Harmless.Deployment.host_ip 2);
            (Harmless.Deployment.host_ip 1, Harmless.Deployment.host_ip 2);
          ]
        in
        let mon = Sdnctl.Monitor.create ~pairs () in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.Monitor.app mon);
        Sdnctl.Controller.add_app ctrl (Sdnctl.Rate_limiter.table1_l2 ~num_hosts:3);
        let dpid =
          Sdnctl.Controller.attach_switch ctrl
            (Harmless.Deployment.controller_switch d)
        in
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        let send src n =
          let h = Harmless.Deployment.host d src in
          for i = 1 to n do
            Host.send h
              (Netpkt.Packet.udp
                 ~dst:(Harmless.Deployment.host_mac 2)
                 ~src:(Host.mac h) ~ip_src:(Host.ip h)
                 ~ip_dst:(Harmless.Deployment.host_ip 2)
                 ~src_port:(1000 + i) ~dst_port:9 "talk")
          done
        in
        send 0 7;
        send 1 3;
        Engine.run engine
          ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 20));
        Sdnctl.Monitor.poll mon ctrl;
        Engine.run engine
          ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 10));
        let tt = Sdnctl.Top_talkers.create () in
        check (Alcotest.list Alcotest.string) "empty before attach" []
          (List.map
             (fun (a, _) -> Netpkt.Ipv4_addr.to_string a)
             (Sdnctl.Top_talkers.byte_ranking tt));
        (match Sdnctl.Monitor.poller mon dpid with
        | Some p -> Sdnctl.Top_talkers.attach_poller tt p
        | None -> Alcotest.fail "monitor has no poller after polling");
        (match Sdnctl.Top_talkers.byte_ranking tt with
        | [ (a0, b0); (a1, b1) ] ->
            check Alcotest.string "heaviest source first"
              (Netpkt.Ipv4_addr.to_string (Harmless.Deployment.host_ip 0))
              (Netpkt.Ipv4_addr.to_string a0);
            check Alcotest.string "lighter source second"
              (Netpkt.Ipv4_addr.to_string (Harmless.Deployment.host_ip 1))
              (Netpkt.Ipv4_addr.to_string a1);
            check Alcotest.bool "byte order" true (b0 > b1 && b1 > 0)
        | l -> Alcotest.failf "ranking shape: %d entries" (List.length l)));
  ]

(* ---- SLO windows in chaos reports ---- *)

let default_script =
  "5ms   channel        down\n\
   12ms  mgmt           flaky 2\n\
   20ms  channel        up\n\
   30ms  trunk:primary  down\n"

let chaos_tests =
  [
    tc "chaos report carries SLO breach windows for the storm" (fun () ->
        let engine = Engine.create () in
        let rig =
          match Harmless.Chaos.build engine () with
          | Ok r -> r
          | Error m -> failwith m
        in
        let report =
          match
            Harmless.Chaos.run rig ~script:default_script
              ~duration:(Sim_time.ms 40) ()
          with
          | Ok r -> r
          | Error m -> failwith m
        in
        check Alcotest.bool "evaluated" true (report.slo_evaluations > 0);
        let windows =
          List.concat_map (fun (_, ws) -> ws) report.slo_breaches
        in
        check Alcotest.bool "at least one breach window" true (windows <> []);
        (* the scripted channel blackout must show up as a breach of the
           channel SLO, and the window must close once the channel heals *)
        let channel_windows =
          try List.assoc "control-channel-up" report.slo_breaches
          with Not_found -> []
        in
        check Alcotest.bool "channel SLO breached" true (channel_windows <> []);
        List.iter
          (fun (fired, resolved) ->
            check Alcotest.bool "breach within storm" true (fired > 0);
            match resolved with
            | Some r -> check Alcotest.bool "window ordered" true (r > fired)
            | None -> Alcotest.fail "channel breach never resolved")
          channel_windows;
        (* and the rendered report surfaces them *)
        let text = Format.asprintf "%a" Harmless.Chaos.pp_report report in
        check_contains "report text" ~needle:"SLO:" text;
        check_contains "report text" ~needle:"breach window" text);
  ]

(* ---- dashboard frames ---- *)

let dashboard_tests =
  [
    tc "top frame is deterministic across identical runs" (fun () ->
        (* datapath ids come from a process-global counter, so two demos
           in one process differ only there — mask that token *)
        (* ... and the gc panel reads the live runtime, so its numbers
           differ between the two frames — mask the whole line *)
        let mask frame =
          Str.global_replace (Str.regexp "dpid=0x[0-9a-f]+") "dpid=0xN" frame
          |> Str.global_replace (Str.regexp "gc: [^\n]*") "gc: <live>"
        in
        let frame () =
          let d = demo_exn () in
          Harmless.Dashboard.advance d (Sim_time.ms 60);
          mask (Harmless.Dashboard.render_top d)
        in
        let a = frame () and b = frame () in
        check Alcotest.string "identical frames" a b);
    tc "top frame shows ports, flows and alerts" (fun () ->
        let d = demo_exn () in
        Harmless.Dashboard.advance d (Sim_time.ms 60);
        let frame = Harmless.Dashboard.render_top d in
        check_contains "header" ~needle:"harmless top" frame;
        check_contains "channel" ~needle:"channel=connected" frame;
        check_contains "ports" ~needle:"ports (rates over" frame;
        check_contains "bars" ~needle:"|#" frame;
        check_contains "flows" ~needle:"flows by byte rate" frame;
        check_contains "alerts" ~needle:"alerts: 6 rule(s)" frame;
        check_contains "flow alert" ~needle:"elephant-flow" frame;
        check_contains "traffic alert" ~needle:"dataplane-active" frame;
        check_contains "gc panel" ~needle:"gc: " frame;
        check_contains "gc rule" ~needle:"gc-alloc-rate" frame;
        check_contains "engine line" ~needle:"engine: " frame;
        check_contains "queue depth" ~needle:"queue depth" frame);
    tc "alerts frame lists rules, states and transitions" (fun () ->
        let d = demo_exn () in
        Harmless.Dashboard.advance d (Sim_time.ms 60);
        let frame = Harmless.Dashboard.render_alerts d in
        check_contains "header" ~needle:"alert rules after" frame;
        check_contains "rule" ~needle:"control-channel-up" frame;
        check_contains "rule" ~needle:"stats-freshness" frame;
        (* pings are flowing, so the traffic-presence rule must have
           transitioned to firing at some point *)
        check_contains "transitions" ~needle:"dataplane-active" frame;
        check_contains "transitions" ~needle:"-> firing" frame;
        check Alcotest.bool "evaluations counted" true
          (Telemetry.Alert.evaluations (Harmless.Dashboard.alerts d) > 0));
  ]

(* ---- the no-sink fast path must stay allocation-free ---- *)

let trace_alloc_tests =
  [
    tc "guarded Trace.emit allocates nothing when no sink is installed"
      (fun () ->
        check Alcotest.bool "no sink" false (Telemetry.Trace.enabled ());
        let pkt =
          Netpkt.Packet.udp
            ~dst:(Netpkt.Mac_addr.make_local 2)
            ~src:(Netpkt.Mac_addr.make_local 1)
            ~ip_src:(Netpkt.Ipv4_addr.of_string "10.9.0.1")
            ~ip_dst:(Netpkt.Ipv4_addr.of_string "10.9.0.2")
            ~src_port:1 ~dst_port:2 "x"
        in
        let emit_guarded () =
          if Telemetry.Trace.enabled () then
            Telemetry.Trace.emit ~ts_ns:0 ~component:"test"
              ~layer:Telemetry.Trace.Host ~stage:"noop" pkt
        in
        emit_guarded ();
        let before = Gc.minor_words () in
        for _ = 1 to 10_000 do
          emit_guarded ()
        done;
        let delta = Gc.minor_words () -. before in
        if delta > 256. then
          Alcotest.failf "no-op emit allocated %.0f minor words over 10k calls"
            delta);
  ]

let suite =
  [
    ("stats_poller", poller_tests);
    ("chaos_slo", chaos_tests);
    ("dashboard", dashboard_tests);
    ("trace_alloc", trace_alloc_tests);
  ]
