(* The traffic observability plane end to end: deterministic 1-in-N
   sampling with scaled sketches on the switch, a zero-allocation skip
   path, the collector's fabric-wide merge feeding series and alert
   rules, the accuracy rig's pinned bounds, and rank agreement between
   the sampled top-k and the poller's exact byte ranking. *)

open Simnet
module Flowrec = Softswitch.Flowrec
module Sketch = Telemetry.Sketch
module FC = Sdnctl.Flow_collector

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what ~needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected %S in:\n%s" what needle hay

let ip = Netpkt.Ipv4_addr.of_string
let mac i = Netpkt.Mac_addr.make_local i

(* One UDP flow per [src] host index; same frame every call. *)
let pkt ?(src = 1) ?(sport = 4242) ?(dport = 80) () =
  Netpkt.Packet.udp ~dst:(mac 99) ~src:(mac src)
    ~ip_src:(ip (Printf.sprintf "10.0.0.%d" src))
    ~ip_dst:(ip "10.0.1.9") ~src_port:sport ~dst_port:dport "payload"

let feed t n mk =
  for i = 1 to n do
    Flowrec.observe t ~now_ns:(i * 1000) ~in_port:1 (mk i)
  done

let recorder_tests =
  [
    tc "samples exactly 1 in rate" (fun () ->
        let t =
          Flowrec.create
            ~config:{ Flowrec.default_config with rate = 4; seed = 7 }
            ()
        in
        feed t 100 (fun _ -> pkt ());
        check Alcotest.int "seen" 100 (Flowrec.seen t);
        check Alcotest.int "sampled" 25 (Flowrec.sampled t);
        let t1 = Flowrec.create ~config:{ (Flowrec.config t) with rate = 1 } () in
        feed t1 10 (fun _ -> pkt ());
        check Alcotest.int "rate 1 samples everything" 10 (Flowrec.sampled t1));
    tc "sampled estimates are scaled and exact for a steady flow" (fun () ->
        (* 10 identical packets at rate 2: 5 samples, each counted at
           size * 2 — the estimate lands exactly on the true bytes. *)
        let cfg = { Flowrec.default_config with rate = 2; seed = 7 } in
        let t = Flowrec.create ~config:cfg () in
        let p = pkt () in
        feed t 10 (fun _ -> p);
        let true_bytes = 10 * Netpkt.Packet.size p in
        let h = Netpkt.Packet.flow_hash ~seed:cfg.Flowrec.seed p in
        check Alcotest.int "count-min exact" true_bytes
          (Sketch.Cm.query (Flowrec.cm t) ~key:h);
        check
          Alcotest.(option (pair int int))
          "top-k exact with zero error"
          (Some (true_bytes, 0))
          (Sketch.Topk.find (Flowrec.topk t)
             (Netpkt.Packet.Flow_key.to_string (Netpkt.Packet.flow_key p))));
    tc "same seed, same stream, same sketches and records" (fun () ->
        let cfg = { Flowrec.default_config with rate = 3; seed = 11 } in
        let mk i = pkt ~src:(1 + (i mod 5)) ~sport:(1000 + (i mod 17)) () in
        let a = Flowrec.create ~config:cfg () in
        let b = Flowrec.create ~config:cfg () in
        feed a 200 mk;
        feed b 200 mk;
        check Alcotest.bool "cm equal" true
          (Sketch.Cm.equal (Flowrec.cm a) (Flowrec.cm b));
        check Alcotest.bool "hll equal" true
          (Sketch.Hll.equal (Flowrec.hll a) (Flowrec.hll b));
        check Alcotest.bool "topk equal" true
          (Sketch.Topk.equal (Flowrec.topk a) (Flowrec.topk b));
        check Alcotest.bool "records equal" true
          (Flowrec.records a = Flowrec.records b));
    tc "hll covers every packet, not just samples" (fun () ->
        let t =
          Flowrec.create
            ~config:{ Flowrec.default_config with rate = 1_000_000 }
            ()
        in
        feed t 30 (fun i -> pkt ~src:(1 + (i mod 3)) ());
        check Alcotest.int "nothing sampled" 0 (Flowrec.sampled t);
        let est = Sketch.Hll.estimate (Flowrec.hll t) in
        check Alcotest.bool "three sources seen" true
          (abs_float (est -. 3.) < 0.5));
    tc "skip path allocates nothing" (fun () ->
        let t =
          Flowrec.create
            ~config:{ Flowrec.default_config with rate = 1_000_000 }
            ()
        in
        let p = pkt () in
        (* warm up, then pin: the unsampled path must cost 0 minor words *)
        Flowrec.observe t ~now_ns:0 ~in_port:1 p;
        let before = int_of_float (Gc.minor_words ()) in
        for i = 1 to 10_000 do
          Flowrec.observe t ~now_ns:i ~in_port:1 p
        done;
        check Alcotest.int "0 words over 10k unsampled packets" 0
          (int_of_float (Gc.minor_words ()) - before));
    tc "ring keeps the newest records, oldest first" (fun () ->
        let t =
          Flowrec.create
            ~config:{ Flowrec.default_config with rate = 1; ring = 4 }
            ()
        in
        feed t 10 (fun i -> pkt ~sport:(1000 + i) ());
        let rs = Flowrec.records t in
        check Alcotest.int "capped at ring size" 4 (List.length rs);
        check
          Alcotest.(list int)
          "last four samples, oldest first"
          [ 1007; 1008; 1009; 1010 ]
          (List.map
             (fun r -> r.Flowrec.rc_key.Netpkt.Packet.Flow_key.fk_sport)
             rs));
  ]

(* ---- the collector ---- *)

let collector_tests =
  [
    tc "merge folds every recorder into one fabric view" (fun () ->
        let engine = Engine.create () in
        let cfg = { Flowrec.default_config with rate = 1; seed = 5 } in
        let c = FC.create ~config:cfg engine in
        let a = Flowrec.create ~config:cfg () in
        let b = Flowrec.create ~config:cfg () in
        FC.attach c ~name:"sw-a" a;
        FC.attach c ~name:"sw-b" b;
        let pa = pkt ~src:1 () and pb = pkt ~src:2 ~dport:443 () in
        for i = 1 to 6 do
          Flowrec.observe a ~now_ns:i ~in_port:1 pa
        done;
        for i = 1 to 4 do
          Flowrec.observe b ~now_ns:i ~in_port:1 pb
        done;
        FC.merge_now c;
        check Alcotest.int "merges" 1 (FC.merges c);
        check Alcotest.int "seen sums" 10 (FC.seen c);
        check Alcotest.int "sampled sums" 10 (FC.sampled c);
        check Alcotest.int "merged count-min answers per-switch flows"
          (6 * Netpkt.Packet.size pa)
          (FC.cm_query c ~key:(Netpkt.Packet.flow_hash ~seed:5 pa));
        let top = FC.top c in
        check Alcotest.int "both flows ranked" 2 (List.length top);
        check Alcotest.bool "heavier flow first" true
          (match top with
          | (_, b0, _) :: (_, b1, _) :: _ -> b0 >= b1
          | _ -> false);
        check Alcotest.bool "hosts near 2" true
          (abs_float (FC.hosts c -. 2.) < 0.5);
        check Alcotest.int "series fed per merge" 1
          (Telemetry.Timeseries.length (FC.sampled_series c));
        FC.merge_now c;
        check Alcotest.int "second merge appends" 2
          (Telemetry.Timeseries.length (FC.hosts_series c)));
    tc "scheduled merges tick on the sim clock" (fun () ->
        let engine = Engine.create () in
        let c = FC.create engine in
        FC.start c ~every:(Sim_time.ms 10);
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 55));
        check Alcotest.int "one merge per tick" 5 (FC.merges c));
    tc "alert rules fire on elephants and cardinality" (fun () ->
        let engine = Engine.create () in
        let cfg = { Flowrec.default_config with rate = 1 } in
        let c = FC.create ~config:cfg engine in
        let a = Flowrec.create ~config:cfg () in
        FC.attach c ~name:"sw" a;
        let alerts = Telemetry.Alert.create () in
        FC.add_alert_rules ~elephant_bytes:100. ~max_hosts:1e6 c alerts;
        check
          Alcotest.(slist string String.compare)
          "rules registered"
          [ "elephant-flow"; "host-cardinality" ]
          (Telemetry.Alert.rules alerts);
        let p = pkt () in
        for i = 1 to 5 do
          Flowrec.observe a ~now_ns:i ~in_port:1 p
        done;
        FC.merge_now c;
        Telemetry.Alert.eval alerts ~now_ns:1_000_000;
        check
          Alcotest.(list string)
          "elephant fires, cardinality does not" [ "elephant-flow" ]
          (Telemetry.Alert.firing alerts));
    tc "render and json expose the fabric roll-up" (fun () ->
        let engine = Engine.create () in
        let cfg = { Flowrec.default_config with rate = 1 } in
        let c = FC.create ~config:cfg engine in
        let a = Flowrec.create ~config:cfg () in
        FC.attach c ~name:"sw" a;
        for i = 1 to 3 do
          Flowrec.observe a ~now_ns:i ~in_port:1 (pkt ())
        done;
        FC.merge_now c;
        let frame = FC.render c in
        check_contains "header" ~needle:"flow telemetry" frame;
        check_contains "sampling rate" ~needle:"(1-in-1)" frame;
        check_contains "flow listed" ~needle:"udp 10.0.0.1:4242>10.0.1.9:80"
          frame;
        check_contains "hosts line" ~needle:"hosts:" frame;
        let js = Telemetry.Json.to_string (FC.to_json c) in
        check_contains "json seen" ~needle:"\"seen\":3" js;
        check_contains "json top" ~needle:"udp 10.0.0.1" js);
  ]

(* ---- the accuracy rig ---- *)

let small_rig =
  {
    Harmless.Flow_rig.default_config with
    hosts = 2_000;
    mice = 60;
    elephants = 4;
    switches = 2;
    duration_ns = 200_000_000;
  }

let rig_tests =
  [
    tc "small rig clears every bound" (fun () ->
        let r = Harmless.Flow_rig.run ~config:small_rig () in
        check Alcotest.bool "verdict" true r.Harmless.Flow_rig.rp_ok;
        check (Alcotest.float 0.0) "no false-negative heavy hitters" 1.0
          r.Harmless.Flow_rig.rp_hh_recall;
        check Alcotest.bool "count-min never underestimates" true
          r.Harmless.Flow_rig.rp_cm_overestimate_ok;
        check Alcotest.bool "hll within 5%" true
          (r.Harmless.Flow_rig.rp_hll_rel_err <= 0.05);
        check_contains "report verdict" ~needle:"verdict: PASS"
          r.Harmless.Flow_rig.rp_text);
    tc "equal seeds render byte-identical reports" (fun () ->
        let a = Harmless.Flow_rig.run ~config:small_rig () in
        let b = Harmless.Flow_rig.run ~config:small_rig () in
        check Alcotest.string "same report" a.Harmless.Flow_rig.rp_text
          b.Harmless.Flow_rig.rp_text;
        let c =
          Harmless.Flow_rig.run ~config:{ small_rig with seed = 1337 } ()
        in
        check Alcotest.bool "different seed, different report" true
          (c.Harmless.Flow_rig.rp_text <> a.Harmless.Flow_rig.rp_text));
  ]

(* ---- agreement with the exact control plane ---- *)

let agreement_tests =
  [
    tc "sampled top-k ranks sources like the polled byte ranking" (fun () ->
        (* The test_poller byte-ranking scenario, with a rate-1 flow
           recorder watching the same OpenFlow switch: aggregating the
           top-k UDP flows by source must rank host 0 over host 1,
           exactly as the polled flow counters do. *)
        let engine = Engine.create () in
        let d =
          match Harmless.Deployment.build_harmless engine ~num_hosts:3 () with
          | Ok d -> d
          | Error m -> failwith m
        in
        let cfg = { Flowrec.default_config with rate = 1 } in
        let fc = FC.create ~config:cfg engine in
        FC.add_switch fc (Harmless.Deployment.controller_switch d);
        let pairs =
          [
            (Harmless.Deployment.host_ip 0, Harmless.Deployment.host_ip 2);
            (Harmless.Deployment.host_ip 1, Harmless.Deployment.host_ip 2);
          ]
        in
        let mon = Sdnctl.Monitor.create ~pairs () in
        let ctrl = Sdnctl.Controller.create engine () in
        Sdnctl.Controller.add_app ctrl (Sdnctl.Monitor.app mon);
        Sdnctl.Controller.add_app ctrl (Sdnctl.Rate_limiter.table1_l2 ~num_hosts:3);
        let dpid =
          Sdnctl.Controller.attach_switch ctrl
            (Harmless.Deployment.controller_switch d)
        in
        Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms 5));
        let send src n =
          let h = Harmless.Deployment.host d src in
          for i = 1 to n do
            Host.send h
              (Netpkt.Packet.udp
                 ~dst:(Harmless.Deployment.host_mac 2)
                 ~src:(Host.mac h) ~ip_src:(Host.ip h)
                 ~ip_dst:(Harmless.Deployment.host_ip 2)
                 ~src_port:(1000 + i) ~dst_port:9 "talk")
          done
        in
        send 0 7;
        send 1 3;
        Engine.run engine
          ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 20));
        Sdnctl.Monitor.poll mon ctrl;
        Engine.run engine
          ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 10));
        FC.merge_now fc;
        (* exact side *)
        let tt = Sdnctl.Top_talkers.create () in
        (match Sdnctl.Monitor.poller mon dpid with
        | Some p -> Sdnctl.Top_talkers.attach_poller tt p
        | None -> Alcotest.fail "monitor has no poller after polling");
        let exact_rank =
          List.map
            (fun (a, _) -> Netpkt.Ipv4_addr.to_string a)
            (Sdnctl.Top_talkers.byte_ranking tt)
        in
        (* sampled side: sum the top-k's dport-9 flows by source *)
        let bytes_of src =
          List.fold_left
            (fun acc (key, bytes, err) ->
              check Alcotest.int "no eviction error at rate 1" 0 err;
              let prefix =
                Printf.sprintf "udp %s:"
                  (Netpkt.Ipv4_addr.to_string (Harmless.Deployment.host_ip src))
              in
              if
                String.length key >= String.length prefix
                && String.sub key 0 (String.length prefix) = prefix
                && contains ~needle:":9" key
              then acc + bytes
              else acc)
            0 (FC.top fc)
        in
        let b0 = bytes_of 0 and b1 = bytes_of 1 in
        check Alcotest.bool "both sources sampled" true (b0 > 0 && b1 > 0);
        check Alcotest.bool "7 packets outweigh 3" true (b0 > b1);
        (* same frame size per packet: the byte ratio is exactly 7:3 *)
        check Alcotest.int "exact 7:3 byte ratio" (b0 * 3) (b1 * 7);
        let sampled_rank =
          List.map
            (fun (s, _) -> Netpkt.Ipv4_addr.to_string (Harmless.Deployment.host_ip s))
            (List.sort
               (fun (_, a) (_, b) -> Int.compare b a)
               [ (0, b0); (1, b1) ])
        in
        check
          Alcotest.(list string)
          "rank agreement with byte_ranking" exact_rank sampled_rank);
    tc "sample ranking breaks count ties by address" (fun () ->
        (* satellite fix: equal sample counts must order by source
           address ascending, deterministically *)
        let engine = Engine.create () in
        let ctrl = Sdnctl.Controller.create engine () in
        let tt = Sdnctl.Top_talkers.create () in
        let app = Sdnctl.Top_talkers.app tt in
        let seen src =
          app.Sdnctl.Controller.packet_in ctrl 1L ~in_port:1
            Openflow.Of_message.Action_to_controller
            (pkt ~src ())
        in
        (* feed the higher address first: the tie-break must still put
           the lower address first *)
        ignore (seen 8);
        ignore (seen 2);
        check
          Alcotest.(list (pair string int))
          "count desc, then address asc"
          [ ("10.0.0.2", 1); ("10.0.0.8", 1) ]
          (List.map
             (fun (a, n) -> (Netpkt.Ipv4_addr.to_string a, n))
             (Sdnctl.Top_talkers.ranking tt)));
  ]

let dashboard_tests =
  [
    tc "dashboard flow panel renders the demo's sampled traffic" (fun () ->
        let d =
          match Harmless.Dashboard.demo () with
          | Ok d -> d
          | Error m -> failwith m
        in
        Harmless.Dashboard.advance d (Sim_time.ms 40);
        let fc = Harmless.Dashboard.flow_collector d in
        check Alcotest.bool "merges ticked" true (FC.merges fc > 0);
        check Alcotest.bool "packets observed" true (FC.seen fc > 0);
        let frame = Harmless.Dashboard.render_flows d in
        check_contains "header" ~needle:"harmless flows" frame;
        check_contains "panel" ~needle:"flow telemetry" frame;
        check_contains "hosts line" ~needle:"hosts:" frame;
        (* deterministic: a second demo advanced identically renders the
           same frame *)
        let d2 =
          match Harmless.Dashboard.demo () with
          | Ok d -> d
          | Error m -> failwith m
        in
        Harmless.Dashboard.advance d2 (Sim_time.ms 40);
        check Alcotest.string "byte-identical frame" frame
          (Harmless.Dashboard.render_flows d2));
  ]

let suite =
  [
    ("flowrec.recorder", recorder_tests);
    ("flowrec.collector", collector_tests);
    ("flowrec.rig", rig_tests);
    ("flowrec.agreement", agreement_tests);
    ("flowrec.dashboard", dashboard_tests);
  ]
