(* The resilience machinery in isolation: the retry combinator, the
   fault-script parser and injector, the management fault plan, the
   keepalive/reconnect control channel and the switch fail modes. *)

open Simnet

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let prop ?(count = 200) name gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- Retry ---- *)

let retry_tests =
  [
    tc "gives up after max_attempts and says so" (fun () ->
        let calls = ref 0 in
        let policy = Mgmt.Retry.policy ~max_attempts:4 () in
        let result =
          Mgmt.Retry.run ~policy
            ~registry:(Telemetry.Registry.create ())
            (fun () ->
              incr calls;
              Error "boom")
        in
        check Alcotest.int "tried exactly max_attempts" 4 !calls;
        match result with
        | Ok () -> Alcotest.fail "should not succeed"
        | Error msg ->
            check Alcotest.bool "error names the attempt count" true
              (contains msg "gave up after 4 attempts"));
    tc "stops retrying at the first success" (fun () ->
        let calls = ref 0 in
        let policy = Mgmt.Retry.policy ~max_attempts:5 () in
        let result =
          Mgmt.Retry.run ~policy
            ~registry:(Telemetry.Registry.create ())
            (fun () ->
              incr calls;
              if !calls < 3 then Error "flaky" else Ok !calls)
        in
        check Alcotest.(result int string) "succeeded on attempt 3" (Ok 3) result;
        check Alcotest.int "no extra calls" 3 !calls);
    tc "counts each retry in retries_total" (fun () ->
        let registry = Telemetry.Registry.create () in
        let calls = ref 0 in
        ignore
          (Mgmt.Retry.run
             ~policy:(Mgmt.Retry.policy ~max_attempts:3 ())
             ~registry ~op:"test.op"
             (fun () ->
               incr calls;
               Error "nope"));
        let counter =
          Telemetry.Registry.Counter.v ~registry
            ~labels:[ ("op", "test.op") ]
            "retries_total"
        in
        (* 3 attempts = 2 retries; the final failure is not a retry. *)
        check Alcotest.int "two retries" 2
          (Telemetry.Registry.Counter.value counter));
    tc "run_async elapses the backoff in sim time" (fun () ->
        let engine = Engine.create () in
        let policy =
          Mgmt.Retry.policy ~max_attempts:4 ~base_delay:(Sim_time.ms 10)
            ~multiplier:2.0 ~max_delay:(Sim_time.ms 15) ()
        in
        let finished = ref None in
        Mgmt.Retry.run_async engine ~policy
          ~registry:(Telemetry.Registry.create ())
          (fun () -> Error "always")
          ~on_done:(fun r -> finished := Some (r, Engine.now engine));
        Engine.run engine;
        match !finished with
        | None -> Alcotest.fail "on_done never fired"
        | Some (result, at) ->
            check Alcotest.bool "failed" true (Result.is_error result);
            (* delays: 10ms, then 20ms capped to 15, then 15 = 40ms. *)
            check Alcotest.int "backoff elapsed in sim time"
              (Sim_time.ms 40) (Sim_time.to_ns at));
    prop "backoff schedule is deterministic, nondecreasing and capped"
      QCheck2.Gen.(
        triple (int_range 1 10) (int_range 1 1_000_000) (int_range 0 4))
      ~print:(fun (n, base, m) -> Printf.sprintf "(%d,%d,%d)" n base m)
      (fun (max_attempts, base_ns, mult10) ->
        let multiplier = 1.0 +. (float_of_int mult10 /. 2.0) in
        let policy =
          Mgmt.Retry.policy ~max_attempts ~base_delay:base_ns ~multiplier
            ~max_delay:(base_ns * 64) ()
        in
        let s1 = Mgmt.Retry.backoff_schedule policy in
        let s2 = Mgmt.Retry.backoff_schedule policy in
        let nondecreasing =
          let rec go = function
            | a :: (b :: _ as rest) -> a <= b && go rest
            | [ _ ] | [] -> true
          in
          go s1
        in
        s1 = s2
        && List.length s1 = max_attempts - 1
        && nondecreasing
        && List.for_all (fun d -> d >= 0 && d <= base_ns * 64) s1);
    tc "full jitter is seeded, bounded and reproducible" (fun () ->
        let policy =
          Mgmt.Retry.policy ~max_attempts:6 ~base_delay:(Sim_time.ms 10)
            ~multiplier:2.0 ~max_delay:(Sim_time.ms 60) ~jitter:true ()
        in
        let raw = Mgmt.Retry.backoff_schedule { policy with jitter = false } in
        let j1 = Mgmt.Retry.backoff_schedule ~rng:(Rng.create 7) policy in
        let j2 = Mgmt.Retry.backoff_schedule ~rng:(Rng.create 7) policy in
        let j3 = Mgmt.Retry.backoff_schedule ~rng:(Rng.create 8) policy in
        check Alcotest.(list int) "same seed, same schedule" j1 j2;
        check Alcotest.bool "different seed, different schedule" true (j1 <> j3);
        List.iter2
          (fun jit r ->
            check Alcotest.bool "each delay drawn from [0, raw]" true
              (jit >= 0 && jit <= r))
          j1 raw;
        check
          Alcotest.(list int)
          "no rng falls back to the raw schedule" raw
          (Mgmt.Retry.backoff_schedule policy));
    tc "budget exhaustion fails fast as a deadline, not a give-up" (fun () ->
        let registry = Telemetry.Registry.create () in
        let policy =
          Mgmt.Retry.policy ~max_attempts:10 ~base_delay:(Sim_time.ms 10)
            ~multiplier:2.0 ()
        in
        (* delays 10, 20, 40… a 25 ms budget admits only the first one. *)
        let budget = Mgmt.Retry.budget (Sim_time.ms 25) in
        let calls = ref 0 in
        let result =
          Mgmt.Retry.run ~policy ~registry ~op:"mgmt.test" ~budget (fun () ->
              incr calls;
              Error "still down")
        in
        (match result with
        | Ok () -> Alcotest.fail "should not succeed"
        | Error msg ->
            check Alcotest.bool "deadline error, recognisably" true
              (Mgmt.Retry.is_deadline_error msg);
            check Alcotest.bool "not the give-up wording" false
              (contains msg "gave up"));
        check Alcotest.int "stopped before max_attempts" 2 !calls;
        check Alcotest.bool "budget marked exhausted" true
          (Mgmt.Retry.budget_exhausted budget);
        check Alcotest.int "deadline_exceeded_total counted" 1
          (Telemetry.Registry.Counter.value
             (Telemetry.Registry.Counter.v ~registry
                ~labels:[ ("op", "mgmt.test") ]
                "deadline_exceeded_total"));
        (* an ample budget keeps the per-operation give-up semantics *)
        let roomy = Mgmt.Retry.budget (Sim_time.s 10) in
        match
          Mgmt.Retry.run
            ~policy:(Mgmt.Retry.policy ~max_attempts:3 ())
            ~registry ~budget:roomy
            (fun () -> Error "still down")
        with
        | Ok () -> Alcotest.fail "should not succeed"
        | Error msg ->
            check Alcotest.bool "transient give-up preserved" true
              (contains msg "gave up after 3 attempts");
            check Alcotest.bool "not a deadline" false
              (Mgmt.Retry.is_deadline_error msg));
  ]

(* ---- Fault script parsing and the injector ---- *)

let script_tests =
  [
    tc "parse_span accepts the documented units" (fun () ->
        check
          Alcotest.(result int string)
          "20ms" (Ok (Sim_time.ms 20)) (Fault.parse_span "20ms");
        check
          Alcotest.(result int string)
          "500us" (Ok (Sim_time.us 500)) (Fault.parse_span "500us");
        check
          Alcotest.(result int string)
          "1s" (Ok (Sim_time.s 1)) (Fault.parse_span "1s");
        check
          Alcotest.(result int string)
          "100ns" (Ok (Sim_time.ns 100)) (Fault.parse_span "100ns");
        check Alcotest.bool "garbage rejected" true
          (Result.is_error (Fault.parse_span "fast")));
    tc "parse_script reads events, comments and degrade arguments" (fun () ->
        let script =
          "# a comment\n\
           20ms  channel  down\n\n\
           45ms  mgmt     flaky 2\n\
           90ms  trunk:primary  degrade loss=0.05 jitter=100us\n"
        in
        match Fault.parse_script script with
        | Error e -> Alcotest.fail e
        | Ok events ->
            check Alcotest.int "three events" 3 (List.length events);
            let e3 = List.nth events 2 in
            check Alcotest.string "target" "trunk:primary" e3.Fault.target;
            (match e3.Fault.action with
            | Fault.Degrade { loss; jitter } ->
                check (Alcotest.float 1e-9) "loss" 0.05 loss;
                check Alcotest.int "jitter" (Sim_time.us 100) jitter
            | _ -> Alcotest.fail "expected degrade"));
    tc "parse errors name the line" (fun () ->
        match Fault.parse_script "20ms channel down\nnot-a-time x down\n" with
        | Ok _ -> Alcotest.fail "accepted garbage"
        | Error msg ->
            check Alcotest.bool "line 2 named" true (contains msg "line 2"));
    tc "injector dispatches at sim time and logs unknown targets" (fun () ->
        let engine = Engine.create () in
        let injector = Fault.create engine in
        let hits = ref [] in
        Fault.register injector ~target:"thing" (fun action ->
            hits := (Sim_time.to_ns (Engine.now engine), action) :: !hits;
            Ok ());
        Fault.schedule injector
          [
            { Fault.after = Sim_time.ms 5; target = "thing"; action = Fault.Down };
            { Fault.after = Sim_time.ms 7; target = "ghost"; action = Fault.Up };
          ];
        Engine.run engine;
        check Alcotest.int "handler fired once" 1 (List.length !hits);
        check Alcotest.int "at 5ms" (Sim_time.ms 5) (fst (List.hd !hits));
        let log = Fault.applied injector in
        check Alcotest.int "both logged" 2 (List.length log);
        let ghost = List.nth log 1 in
        check Alcotest.bool "unknown target is an Error outcome" true
          (Result.is_error ghost.Fault.outcome));
    tc "duplicate target registration raises" (fun () ->
        let injector = Fault.create (Engine.create ()) in
        Fault.register injector ~target:"x" (fun _ -> Ok ());
        check Alcotest.bool "raises" true
          (match Fault.register injector ~target:"x" (fun _ -> Ok ()) with
          | () -> false
          | exception Invalid_argument _ -> true));
  ]

(* ---- Fault plan determinism ---- *)

let fault_plan_tests =
  [
    tc "equal seeds give equal failure sequences" (fun () ->
        let sequence seed =
          let plan =
            Mgmt.Fault_plan.create ~seed ~fail_probability:0.3 ()
          in
          List.init 50 (fun i ->
              Mgmt.Fault_plan.should_fail plan
                ~op:(Printf.sprintf "op%d" i))
        in
        check Alcotest.(list bool) "same stream" (sequence 7) (sequence 7);
        check Alcotest.bool "different seed differs somewhere" true
          (sequence 7 <> sequence 8));
    tc "fail_next forces exactly n failures" (fun () ->
        let plan = Mgmt.Fault_plan.create ~seed:1 () in
        Mgmt.Fault_plan.fail_next plan 3;
        let results =
          List.init 5 (fun _ -> Mgmt.Fault_plan.should_fail plan ~op:"x")
        in
        check
          Alcotest.(list bool)
          "three then clean"
          [ true; true; true; false; false ]
          results;
        check Alcotest.int "injected" 3 (Mgmt.Fault_plan.injected plan));
  ]

(* ---- Channel keepalive / reconnect ---- *)

let channel_config =
  {
    Sdnctl.Channel.default_config with
    keepalive_interval = Some (Sim_time.ms 2);
    echo_timeout = Sim_time.ms 5;
    reconnect_base = Sim_time.ms 1;
    reconnect_max = Sim_time.ms 8;
  }

let channel_rig ?(config = channel_config) () =
  let engine = Engine.create () in
  let switch =
    Softswitch.Soft_switch.create engine ~name:"sw" ~ports:2 ()
  in
  let received = ref 0 in
  let ch =
    Sdnctl.Channel.connect engine ~config ~switch
      ~to_controller:(fun _ -> incr received)
      ()
  in
  (engine, switch, ch, received)

let run_until engine ms =
  Engine.run engine ~until:(Sim_time.of_ns (Sim_time.ms ms))

let channel_tests =
  [
    tc "healthy keepalive never disconnects" (fun () ->
        let engine, switch, ch, _ = channel_rig () in
        run_until engine 40;
        check Alcotest.bool "still connected" true
          (Sdnctl.Channel.state ch = Sdnctl.Channel.Connected);
        check Alcotest.int "no reconnects" 0 (Sdnctl.Channel.reconnects ch);
        check Alcotest.bool "switch agrees" true
          (Softswitch.Soft_switch.connected switch));
    tc "echo timeout detects a blackhole and reconnect heals it" (fun () ->
        let engine, switch, ch, _ = channel_rig () in
        run_until engine 10;
        Sdnctl.Channel.set_down ch true;
        run_until engine 30;
        check Alcotest.bool "detected" true
          (Sdnctl.Channel.state ch = Sdnctl.Channel.Disconnected);
        check Alcotest.bool "switch told" false
          (Softswitch.Soft_switch.connected switch);
        Sdnctl.Channel.set_down ch false;
        run_until engine 60;
        check Alcotest.bool "healed" true
          (Sdnctl.Channel.state ch = Sdnctl.Channel.Connected);
        check Alcotest.int "one reconnect" 1 (Sdnctl.Channel.reconnects ch);
        check Alcotest.bool "switch reconnected" true
          (Softswitch.Soft_switch.connected switch));
    tc "reconnect waits for a crashed switch to restart" (fun () ->
        let engine, switch, ch, _ = channel_rig () in
        run_until engine 10;
        Softswitch.Soft_switch.crash switch;
        run_until engine 30;
        check Alcotest.bool "crash detected" true
          (Sdnctl.Channel.state ch = Sdnctl.Channel.Disconnected);
        check Alcotest.int "no premature reconnect" 0
          (Sdnctl.Channel.reconnects ch);
        Softswitch.Soft_switch.restart switch;
        run_until engine 60;
        check Alcotest.bool "reconnected after restart" true
          (Sdnctl.Channel.state ch = Sdnctl.Channel.Connected);
        check Alcotest.int "one reconnect" 1 (Sdnctl.Channel.reconnects ch));
    tc "bounded outbound queue sheds and counts" (fun () ->
        let config = { channel_config with max_in_flight = 4 } in
        let _engine, _switch, ch, _ = channel_rig ~config () in
        (* Ten sends with no engine steps: only 4 fit in flight. *)
        for i = 1 to 10 do
          ignore i;
          Sdnctl.Channel.to_switch ch Openflow.Of_message.Hello
        done;
        check Alcotest.int "six shed" 6 (Sdnctl.Channel.queue_drops ch);
        check Alcotest.int "drops counted" 6
          (Sdnctl.Channel.dropped_to_switch ch));
    tc "messages sent while disconnected are dropped, not queued" (fun () ->
        let engine, _switch, ch, _ = channel_rig () in
        run_until engine 10;
        Sdnctl.Channel.set_down ch true;
        run_until engine 30;
        let before = Sdnctl.Channel.dropped_to_switch ch in
        Sdnctl.Channel.to_switch ch Openflow.Of_message.Hello;
        check Alcotest.int "dropped immediately" (before + 1)
          (Sdnctl.Channel.dropped_to_switch ch));
    tc "lossy channel counts what it eats" (fun () ->
        let config =
          {
            Sdnctl.Channel.default_config with
            loss = 0.5;
            seed = 11;
            latency = Sim_time.us 10;
          }
        in
        let engine, _switch, ch, _ = channel_rig ~config () in
        for _ = 1 to 100 do
          Sdnctl.Channel.to_switch ch Openflow.Of_message.Hello
        done;
        run_until engine 5;
        let dropped = Sdnctl.Channel.dropped_to_switch ch in
        check Alcotest.bool "some lost" true (dropped > 20);
        check Alcotest.bool "not all lost" true (dropped < 80));
  ]

(* ---- Soft-switch fail modes ---- *)

let two_hosts_on_switch mode =
  let engine = Engine.create () in
  let sw =
    Softswitch.Soft_switch.create engine ~name:"edge" ~ports:2
      ~miss:Softswitch.Soft_switch.Send_to_controller ()
  in
  Softswitch.Soft_switch.set_connection_mode sw mode;
  let hosts =
    Array.init 2 (fun i ->
        let h =
          Host.create engine
            ~name:(Printf.sprintf "h%d" i)
            ~mac:(Netpkt.Mac_addr.make_local (i + 1))
            ~ip:(Netpkt.Ipv4_addr.of_octets 10 0 0 (i + 1))
            ()
        in
        ignore (Link.connect (Host.node h, 0) (Softswitch.Soft_switch.node sw, i));
        h)
  in
  (engine, sw, hosts)

let drop_count sw name =
  Stats.Counter.get (Node.counters (Softswitch.Soft_switch.node sw)) name

let fail_mode_tests =
  [
    tc "fail-standalone forwards locally while disconnected" (fun () ->
        let engine, sw, hosts =
          two_hosts_on_switch Softswitch.Soft_switch.Fail_standalone
        in
        Softswitch.Soft_switch.set_connected sw false;
        Host.ping hosts.(0) ~dst_mac:(Host.mac hosts.(1))
          ~dst_ip:(Host.ip hosts.(1)) ~seq:1;
        run_until engine 10;
        check Alcotest.int "ping answered" 1 (Host.echo_replies hosts.(0));
        check Alcotest.bool "standalone path used" true
          (Softswitch.Soft_switch.standalone_forwards sw > 0));
    tc "fail-secure drops would-be punts while disconnected" (fun () ->
        let engine, sw, hosts =
          two_hosts_on_switch Softswitch.Soft_switch.Fail_secure
        in
        Softswitch.Soft_switch.set_connected sw false;
        Host.ping hosts.(0) ~dst_mac:(Host.mac hosts.(1))
          ~dst_ip:(Host.ip hosts.(1)) ~seq:1;
        run_until engine 10;
        check Alcotest.int "no reply" 0 (Host.echo_replies hosts.(0));
        check Alcotest.bool "counted as fail-secure drops" true
          (drop_count sw "drop_fail_secure" > 0));
    tc "crash wipes flow state; restart comes back empty" (fun () ->
        let engine, sw, hosts =
          two_hosts_on_switch Softswitch.Soft_switch.Fail_standalone
        in
        Softswitch.Soft_switch.handle_message sw
          (Openflow.Of_message.Flow_mod
             (Openflow.Of_message.add_flow ~priority:10
                ~match_:Openflow.Of_match.any
                [ Openflow.Flow_entry.Apply_actions [ Openflow.Of_action.Drop ] ]));
        check Alcotest.int "one entry" 1
          (Openflow.Pipeline.total_entries (Softswitch.Soft_switch.pipeline sw));
        Softswitch.Soft_switch.crash sw;
        check Alcotest.bool "dead" false (Softswitch.Soft_switch.alive sw);
        check Alcotest.int "tables wiped" 0
          (Openflow.Pipeline.total_entries (Softswitch.Soft_switch.pipeline sw));
        Host.ping hosts.(0) ~dst_mac:(Host.mac hosts.(1))
          ~dst_ip:(Host.ip hosts.(1)) ~seq:1;
        run_until engine 10;
        check Alcotest.bool "drops while crashed" true
          (drop_count sw "drop_crashed" > 0);
        Softswitch.Soft_switch.restart sw;
        check Alcotest.bool "alive again" true (Softswitch.Soft_switch.alive sw);
        check Alcotest.int "one crash counted" 1
          (Softswitch.Soft_switch.crashes sw));
  ]

let suite =
  [
    ("fault.retry", retry_tests);
    ("fault.script", script_tests);
    ("fault.plan", fault_plan_tests);
    ("fault.channel", channel_tests);
    ("fault.failmodes", fail_mode_tests);
  ]
