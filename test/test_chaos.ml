(* The ISSUE acceptance scenario: a scripted chaos run — controller
   blackout mid-traffic, transient management failures, then a trunk
   failure — against a full redundant-trunk deployment.  Fail-standalone
   keeps intra-switch forwarding alive, the channel reconnects and
   resyncs, the watchdog fails over, the registry shows the recovery
   counters, and the whole thing is deterministic under a fixed seed. *)

open Harmless

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Channel black-holed at 8ms and restored at 20ms; the management plane
   turns flaky just before the primary trunk dies at 32ms, so the
   watchdog's failover has to retry through the faults. *)
let storm_script =
  "8ms   channel        down\n\
   20ms  channel        up\n\
   30ms  mgmt           flaky 2\n\
   32ms  trunk:primary  down\n"

let run_storm ?(mode = Softswitch.Soft_switch.Fail_standalone) ?(seed = 42) ()
    =
  let engine = Simnet.Engine.create () in
  match Chaos.build engine ~num_hosts:3 ~seed ~mode () with
  | Error e -> Alcotest.failf "build: %s" e
  | Ok rig -> (
      match
        Chaos.run rig ~script:storm_script ~duration:(Simnet.Sim_time.ms 60) ()
      with
      | Error e -> Alcotest.failf "run: %s" e
      | Ok report -> (rig, report))

let counter_value ~labels name =
  Telemetry.Registry.Counter.value
    (Telemetry.Registry.Counter.v ~labels name)

let acceptance_tests =
  [
    tc "scripted storm: degrade, reconnect, fail over, recover" (fun () ->
        Telemetry.Registry.reset Telemetry.Registry.default;
        let _rig, r = run_storm () in
        check Alcotest.bool "all four faults applied" true
          (List.for_all
             (fun a -> Result.is_ok a.Simnet.Fault.outcome)
             r.Chaos.faults);
        check Alcotest.int "four faults" 4 (List.length r.Chaos.faults);
        (* Fail-standalone kept intra-switch traffic moving during the
           blackout: some pings were lost while the outage went
           undetected, but not all of them. *)
        check Alcotest.bool "standalone forwarding used" true
          (r.Chaos.standalone_forwards > 0);
        check Alcotest.bool "some pings lost to the storm" true
          (r.Chaos.pings_answered < r.Chaos.pings_sent);
        check Alcotest.bool "most pings still answered" true
          (2 * r.Chaos.pings_answered > r.Chaos.pings_sent);
        (* The channel noticed the blackout, dropped messages, then
           reconnected and the controller replayed its flow state. *)
        check Alcotest.bool "channel dropped control messages" true
          (r.Chaos.channel_dropped > 0);
        check Alcotest.int "one reconnect" 1 r.Chaos.reconnects;
        check Alcotest.bool "flows resynced" true (r.Chaos.resyncs >= 1);
        (* The trunk failure drove exactly one failover, through retries
           caused by the flaky management plane. *)
        check Alcotest.int "one failover" 1 r.Chaos.failovers;
        check Alcotest.bool "on backup" true (r.Chaos.final_active = `Backup);
        check Alcotest.bool "mgmt faults were injected" true
          (r.Chaos.mgmt_faults_injected > 0);
        check Alcotest.bool "recovery exercised the retry path" true
          (r.Chaos.mgmt_retries > 0 || r.Chaos.activation_retries > 0);
        (* Healthy end state: connected, watching or idle, every pair
           reachable again. *)
        check Alcotest.bool "channel connected at the end" true
          r.Chaos.final_connected;
        check Alcotest.bool "watchdog not given up" true
          (match r.Chaos.watchdog with
          | Failover.Gave_up _ -> false
          | _ -> true);
        check Alcotest.bool "recovered" true r.Chaos.recovered;
        (* Same facts via the registry, as the exporters would see them. *)
        check Alcotest.bool "reconnects_total exported" true
          (counter_value
             ~labels:[ ("switch", "chaos-legacy-ss2") ]
             "reconnects_total"
          > 0);
        check Alcotest.bool "failovers_total exported" true
          (counter_value
             ~labels:[ ("direction", "to_backup") ]
             "failovers_total"
          >= 1);
        let retried =
          List.exists
            (fun op ->
              counter_value ~labels:[ ("op", op) ] "retries_total" > 0)
            [
              "manager.load_candidate";
              "manager.commit";
              "manager.verify";
              "manager.rollback";
              "failover.activate_backup";
              "failover.activate_primary";
            ]
        in
        check Alcotest.bool "retries_total exported" true retried);
    tc "fail-secure contrast: no standalone forwarding" (fun () ->
        Telemetry.Registry.reset Telemetry.Registry.default;
        let _rig, r = run_storm ~mode:Softswitch.Soft_switch.Fail_secure () in
        check Alcotest.int "no standalone forwards" 0
          r.Chaos.standalone_forwards;
        check Alcotest.bool "blackout costs more pings than standalone" true
          (r.Chaos.pings_answered < r.Chaos.pings_sent);
        (* Recovery does not depend on the degraded mode — once the
           channel is back and the trunk failed over, service returns. *)
        check Alcotest.bool "still recovers" true r.Chaos.recovered);
    tc "identical seeds give identical reports" (fun () ->
        let snapshot () =
          Telemetry.Registry.reset Telemetry.Registry.default;
          let _rig, r = run_storm () in
          ( r.Chaos.pings_sent,
            r.Chaos.pings_answered,
            r.Chaos.probe_answered,
            r.Chaos.reconnects,
            r.Chaos.resyncs,
            r.Chaos.mgmt_retries,
            r.Chaos.activation_retries,
            r.Chaos.failovers,
            r.Chaos.standalone_forwards,
            r.Chaos.channel_dropped,
            r.Chaos.mgmt_faults_injected )
        in
        let a = snapshot () and b = snapshot () in
        check Alcotest.bool "bit-identical recovery reports" true (a = b));
    tc "watchdog surfaces a terminal activation failure" (fun () ->
        Telemetry.Registry.reset Telemetry.Registry.default;
        let engine = Simnet.Engine.create () in
        let rig =
          match
            Chaos.build engine ~num_hosts:2 ~seed:7
              ~retry:
                (Mgmt.Retry.policy ~max_attempts:2
                   ~base_delay:(Simnet.Sim_time.ms 1) ())
              ()
          with
          | Ok rig -> rig
          | Error e -> Alcotest.failf "build: %s" e
        in
        (* Enough forced faults that both activation attempts (and all
           their management ops) fail: the watchdog must give up and say
           so, not retry forever or swallow the error. *)
        let script = "2ms mgmt flaky 100\n4ms trunk:primary down\n" in
        let r =
          match
            Chaos.run rig ~script ~duration:(Simnet.Sim_time.ms 40) ()
          with
          | Ok r -> r
          | Error e -> Alcotest.failf "run: %s" e
        in
        check Alcotest.int "no failover happened" 0 r.Chaos.failovers;
        (match r.Chaos.watchdog with
        | Failover.Gave_up msg ->
            check Alcotest.bool "terminal error names the give-up" true
              (contains msg "gave up after 2 attempts")
        | s ->
            Alcotest.failf "expected Gave_up, got %s"
              (match s with
              | Failover.Idle -> "Idle"
              | Failover.Watching -> "Watching"
              | Failover.Activating -> "Activating"
              | Failover.Gave_up _ -> "Gave_up"));
        check Alcotest.bool "last_error recorded" true
          (Failover.last_error (Chaos.failover rig) <> None));
  ]

let suite = [ ("chaos", acceptance_tests) ]
