open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- MAC addresses ---- *)

let mac_tests =
  [
    tc "parse/print round-trip" (fun () ->
        let s = "de:ad:be:ef:00:2a" in
        check Alcotest.string "same" s (Mac_addr.to_string (Mac_addr.of_string s)));
    tc "dash separators accepted" (fun () ->
        check Alcotest.string "same" "01:02:03:04:05:06"
          (Mac_addr.to_string (Mac_addr.of_string "01-02-03-04-05-06")));
    tc "bad input rejected" (fun () ->
        check Alcotest.bool "short" true (Mac_addr.of_string_opt "de:ad" = None);
        check Alcotest.bool "junk" true
          (Mac_addr.of_string_opt "zz:zz:zz:zz:zz:zz" = None);
        check Alcotest.bool "bad sep" true
          (Mac_addr.of_string_opt "01020304:05:06aa" = None));
    tc "broadcast is multicast, not unicast" (fun () ->
        check Alcotest.bool "bcast" true (Mac_addr.is_broadcast Mac_addr.broadcast);
        check Alcotest.bool "mcast" true (Mac_addr.is_multicast Mac_addr.broadcast);
        check Alcotest.bool "ucast" false (Mac_addr.is_unicast Mac_addr.broadcast));
    tc "make_local is unicast and distinct" (fun () ->
        let a = Mac_addr.make_local 1 and b = Mac_addr.make_local 2 in
        check Alcotest.bool "unicast" true (Mac_addr.is_unicast a);
        check Alcotest.bool "distinct" false (Mac_addr.equal a b));
    prop "int64 round-trip" Gen.mac_gen ~print:Mac_addr.to_string (fun mac ->
        Mac_addr.equal mac (Mac_addr.of_int64 (Mac_addr.to_int64 mac)));
    prop "string round-trip" Gen.mac_gen ~print:Mac_addr.to_string (fun mac ->
        Mac_addr.equal mac (Mac_addr.of_string (Mac_addr.to_string mac)));
  ]

(* ---- IPv4 addresses and prefixes ---- *)

let ip = Ipv4_addr.of_string

let ipv4_tests =
  [
    tc "parse/print round-trip" (fun () ->
        check Alcotest.string "same" "10.1.2.3" (Ipv4_addr.to_string (ip "10.1.2.3")));
    tc "bad input rejected" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true (Ipv4_addr.of_string_opt s = None))
          [ "10.0.0"; "256.0.0.1"; "1.2.3.4.5"; "a.b.c.d"; "" ]);
    tc "succ wraps octets" (fun () ->
        check Alcotest.string "carry" "10.0.1.0"
          (Ipv4_addr.to_string (Ipv4_addr.succ (ip "10.0.0.255"))));
    tc "multicast detection" (fun () ->
        check Alcotest.bool "224" true (Ipv4_addr.is_multicast (ip "224.0.0.1"));
        check Alcotest.bool "239" true (Ipv4_addr.is_multicast (ip "239.255.255.255"));
        check Alcotest.bool "10" false (Ipv4_addr.is_multicast (ip "10.0.0.1")));
    tc "prefix membership" (fun () ->
        let p = Ipv4_addr.Prefix.of_string "10.0.0.0/8" in
        check Alcotest.bool "in" true (Ipv4_addr.Prefix.mem (ip "10.255.0.1") p);
        check Alcotest.bool "out" false (Ipv4_addr.Prefix.mem (ip "11.0.0.1") p));
    tc "prefix normalizes host bits" (fun () ->
        let p = Ipv4_addr.Prefix.make (ip "10.1.2.3") 16 in
        check Alcotest.string "base" "10.1.0.0"
          (Ipv4_addr.to_string (Ipv4_addr.Prefix.base p)));
    tc "prefix /0 contains everything" (fun () ->
        let p = Ipv4_addr.Prefix.make Ipv4_addr.any 0 in
        check Alcotest.bool "bcast" true (Ipv4_addr.Prefix.mem Ipv4_addr.broadcast p));
    tc "prefix nth and size" (fun () ->
        let p = Ipv4_addr.Prefix.of_string "192.168.1.0/30" in
        check Alcotest.int "size" 4 (Ipv4_addr.Prefix.size p);
        check Alcotest.string "nth 3" "192.168.1.3"
          (Ipv4_addr.to_string (Ipv4_addr.Prefix.nth p 3));
        check Alcotest.bool "nth 4 rejected" true
          (try ignore (Ipv4_addr.Prefix.nth p 4); false
           with Invalid_argument _ -> true));
    prop "subsumes implies membership"
      (QCheck2.Gen.triple Gen.prefix_gen Gen.prefix_gen Gen.ip_gen)
      ~print:(fun (a, b, x) ->
        Printf.sprintf "%s %s %s"
          (Ipv4_addr.Prefix.to_string a)
          (Ipv4_addr.Prefix.to_string b)
          (Ipv4_addr.to_string x))
      (fun (a, b, x) ->
        (not (Ipv4_addr.Prefix.subsumes a b))
        || (not (Ipv4_addr.Prefix.mem x b))
        || Ipv4_addr.Prefix.mem x a);
    prop "bytes round-trip" Gen.ip_gen ~print:Ipv4_addr.to_string (fun a ->
        Ipv4_addr.equal a (Ipv4_addr.of_bytes (Ipv4_addr.to_bytes a)));
  ]

(* ---- Checksums ---- *)

let checksum_tests =
  [
    tc "rfc1071 example" (fun () ->
        (* 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 -> ~ = 0x220d *)
        let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
        check Alcotest.int "sum" 0x220d (Checksum.checksum data));
    tc "verify accepts correct checksum inline" (fun () ->
        let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7\x22\x0d" in
        check Alcotest.bool "ok" true (Checksum.verify data));
    tc "odd length padded" (fun () ->
        check Alcotest.int "sum" (Checksum.checksum "\xab\xcd\xef")
          (Checksum.checksum "\xab\xcd\xef\x00"));
    prop "verify(data ^ checksum) holds"
      (QCheck2.Gen.map
         (fun chars -> String.init (List.length chars) (List.nth chars))
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 2 64) QCheck2.Gen.char))
      ~print:String.escaped
      (fun data ->
        (* append the checksum as the final 16-bit word; sum must verify *)
        let c = Checksum.checksum data in
        let padded = if String.length data land 1 = 1 then data ^ "\x00" else data in
        Checksum.verify
          (padded ^ String.init 2 (fun i -> Char.chr ((c lsr ((1 - i) * 8)) land 0xff))));
  ]

(* ---- ARP ---- *)

let arp_tests =
  [
    tc "request/reply round-trip" (fun () ->
        let req =
          Arp.request ~sha:(Mac_addr.make_local 1) ~spa:(ip "10.0.0.1")
            ~tpa:(ip "10.0.0.2")
        in
        let reply = Arp.reply_to req ~sha:(Mac_addr.make_local 2) in
        check Alcotest.bool "req rt" true (Arp.equal req (Arp.decode (Arp.encode req)));
        check Alcotest.bool "rep rt" true
          (Arp.equal reply (Arp.decode (Arp.encode reply)));
        check Alcotest.bool "answers" true
          (Ipv4_addr.equal reply.Arp.tpa req.Arp.spa));
    tc "encoded size is 28" (fun () ->
        let req =
          Arp.request ~sha:Mac_addr.zero ~spa:Ipv4_addr.any ~tpa:Ipv4_addr.any
        in
        check Alcotest.int "size" Arp.size (String.length (Arp.encode req)));
    tc "malformed rejected" (fun () ->
        check Alcotest.bool "truncated" true
          (try ignore (Arp.decode "\x00\x01"); false with Wire.Truncated _ -> true);
        let bad = "\x00\x02" ^ String.make 26 '\x00' in
        check Alcotest.bool "bad htype" true
          (try ignore (Arp.decode bad); false with Wire.Malformed _ -> true));
  ]

(* ---- UDP / TCP / ICMP ---- *)

let src = ip "10.0.0.1"
let dst = ip "10.0.0.2"

let l4_tests =
  [
    tc "udp round-trip" (fun () ->
        let d = Udp.make ~src_port:1234 ~dst_port:80 "hello" in
        check Alcotest.bool "rt" true
          (Udp.equal d (Udp.decode ~src ~dst (Udp.encode ~src ~dst d))));
    tc "udp corrupted checksum rejected" (fun () ->
        let raw = Bytes.of_string (Udp.encode ~src ~dst (Udp.make ~src_port:1 ~dst_port:2 "payload")) in
        Bytes.set raw 9 (Char.chr (Char.code (Bytes.get raw 9) lxor 0xff));
        check Alcotest.bool "rejected" true
          (try ignore (Udp.decode ~src ~dst (Bytes.to_string raw)); false
           with Wire.Malformed _ -> true));
    tc "udp wrong pseudo-header rejected" (fun () ->
        let raw = Udp.encode ~src ~dst (Udp.make ~src_port:1 ~dst_port:2 "payload") in
        check Alcotest.bool "rejected" true
          (try ignore (Udp.decode ~src ~dst:(ip "10.0.0.9") raw); false
           with Wire.Malformed _ -> true));
    tc "udp bad port rejected" (fun () ->
        check Alcotest.bool "neg" true
          (try ignore (Udp.make ~src_port:(-1) ~dst_port:0 ""); false
           with Invalid_argument _ -> true));
    tc "tcp round-trip with flags" (fun () ->
        let seg =
          Tcp.make ~src_port:4321 ~dst_port:443 ~seq:17l ~ack_no:42l
            ~flags:Tcp.syn_ack ~window:1000 "data"
        in
        check Alcotest.bool "rt" true
          (Tcp.equal seg (Tcp.decode ~src ~dst (Tcp.encode ~src ~dst seg))));
    tc "tcp corrupted payload rejected" (fun () ->
        let raw =
          Bytes.of_string (Tcp.encode ~src ~dst (Tcp.make ~src_port:1 ~dst_port:2 "payload"))
        in
        Bytes.set raw (Bytes.length raw - 1) 'X';
        check Alcotest.bool "rejected" true
          (try ignore (Tcp.decode ~src ~dst (Bytes.to_string raw)); false
           with Wire.Malformed _ -> true));
    tc "icmp echo round-trip and reply" (fun () ->
        let req = Icmp.echo_request ~payload:"abc" ~id:7 ~seq:9 () in
        check Alcotest.bool "rt" true
          (Icmp.equal req (Icmp.decode (Icmp.encode req)));
        match Icmp.reply_to req with
        | Some (Icmp.Echo_reply { id = 7; seq = 9; payload = "abc" }) -> ()
        | Some _ | None -> Alcotest.fail "wrong reply");
    tc "icmp unreachable round-trip" (fun () ->
        let m = Icmp.Dest_unreachable { code = 3; context = "ctx" } in
        check Alcotest.bool "rt" true (Icmp.equal m (Icmp.decode (Icmp.encode m))));
    tc "icmp bad checksum rejected" (fun () ->
        let raw = Bytes.of_string (Icmp.encode (Icmp.echo_request ~id:1 ~seq:1 ())) in
        Bytes.set raw 0 '\x0f';
        check Alcotest.bool "rejected" true
          (try ignore (Icmp.decode (Bytes.to_string raw)); false
           with Wire.Malformed _ -> true));
  ]

(* ---- HTTP ---- *)

let http_tests =
  [
    tc "request render/parse round-trip" (fun () ->
        let req =
          Http_lite.get ~headers:[ ("User-Agent", "test") ]
            ~host:"www.example.com" "/index.html"
        in
        match Http_lite.parse_request (Http_lite.render_request req) with
        | Some r ->
            check Alcotest.string "host" "www.example.com" r.Http_lite.host;
            check Alcotest.string "path" "/index.html" r.Http_lite.path;
            check Alcotest.string "ua" "test" (List.assoc "User-Agent" r.Http_lite.headers)
        | None -> Alcotest.fail "did not parse");
    tc "response render/parse round-trip" (fun () ->
        let resp = Http_lite.ok "body text" in
        match Http_lite.parse_response (Http_lite.render_response resp) with
        | Some r ->
            check Alcotest.int "status" 200 r.Http_lite.status;
            check Alcotest.string "body" "body text" r.Http_lite.resp_body
        | None -> Alcotest.fail "did not parse");
    tc "host sniffing" (fun () ->
        let raw = Http_lite.render_request (Http_lite.get ~host:"evil.example" "/") in
        check Alcotest.(option string) "host" (Some "evil.example")
          (Http_lite.host_of_payload raw);
        check Alcotest.(option string) "garbage" None
          (Http_lite.host_of_payload "not http at all"));
    tc "request without Host rejected" (fun () ->
        check Alcotest.bool "no host" true
          (Http_lite.parse_request "GET / HTTP/1.1\r\n\r\n" = None));
    tc "incomplete request rejected" (fun () ->
        check Alcotest.bool "no blank line" true
          (Http_lite.parse_request "GET / HTTP/1.1\r\nHost: x\r\n" = None));
  ]

(* ---- Frames ---- *)

let packet_tests =
  [
    prop "encode/decode round-trip" Gen.packet_gen ~print:Gen.packet_print
      (fun pkt -> Packet.equal pkt (Packet.decode (Packet.encode pkt)));
    prop "push then pop restores" (QCheck2.Gen.pair Gen.packet_gen Gen.vlan_gen)
      ~print:(fun (pkt, _) -> Gen.packet_print pkt)
      (fun (pkt, tag) ->
        match Packet.pop_vlan (Packet.push_vlan tag pkt) with
        | Some (tag', rest) -> Vlan.equal tag tag' && Packet.equal rest pkt
        | None -> false);
    prop "wire size >= 64" Gen.packet_gen ~print:Gen.packet_print (fun pkt ->
        Packet.wire_size pkt >= 64);
    prop "pad_to reaches target" Gen.packet_gen ~print:Gen.packet_print
      (fun pkt ->
        let padded = Packet.pad_to 200 pkt in
        match pkt.Packet.l3 with
        | Packet.Ip { Ipv4.payload = Ipv4.Udp _ | Ipv4.Tcp _; _ } ->
            Packet.wire_size padded >= 200
        | _ -> true);
    tc "outer vid and set_outer_vid" (fun () ->
        let pkt =
          Packet.udp ~vlans:[ Vlan.make 101 ] ~dst:(Mac_addr.make_local 1)
            ~src:(Mac_addr.make_local 2) ~ip_src:src ~ip_dst:dst ~src_port:1
            ~dst_port:2 "x"
        in
        check Alcotest.(option int) "vid" (Some 101) (Packet.outer_vid pkt);
        check Alcotest.(option int) "set" (Some 999)
          (Packet.outer_vid (Packet.set_outer_vid 999 pkt)));
    tc "set_outer_vid on untagged rejected" (fun () ->
        let pkt =
          Packet.udp ~dst:(Mac_addr.make_local 1) ~src:(Mac_addr.make_local 2)
            ~ip_src:src ~ip_dst:dst ~src_port:1 ~dst_port:2 "x"
        in
        check Alcotest.bool "raises" true
          (try ignore (Packet.set_outer_vid 5 pkt); false
           with Invalid_argument _ -> true));
    tc "fields extraction for tcp" (fun () ->
        let pkt =
          Packet.tcp ~vlans:[ Vlan.make ~pcp:3 7 ] ~dst:(Mac_addr.make_local 1)
            ~src:(Mac_addr.make_local 2) ~ip_src:src ~ip_dst:dst ~src_port:1111
            ~dst_port:80 "x"
        in
        let f = Packet.Fields.of_packet pkt in
        check Alcotest.int "ethertype" 0x0800 f.Packet.Fields.eth_type;
        check Alcotest.(option int) "vid" (Some 7) f.Packet.Fields.vlan_vid;
        check Alcotest.(option int) "pcp" (Some 3) f.Packet.Fields.vlan_pcp;
        check Alcotest.(option int) "proto" (Some 6) f.Packet.Fields.ip_proto;
        check Alcotest.(option int) "sport" (Some 1111) f.Packet.Fields.l4_src;
        check Alcotest.(option int) "dport" (Some 80) f.Packet.Fields.l4_dst);
    tc "fields extraction for arp has no ip fields" (fun () ->
        let pkt =
          Packet.arp_request ~src_mac:(Mac_addr.make_local 2) ~src_ip:src
            ~target_ip:dst
        in
        let f = Packet.Fields.of_packet pkt in
        check Alcotest.int "ethertype" 0x0806 f.Packet.Fields.eth_type;
        check Alcotest.bool "no ip" true (f.Packet.Fields.ip_src = None));
    tc "decode truncated frame fails" (fun () ->
        check Alcotest.bool "truncated" true
          (try ignore (Packet.decode "\x01\x02\x03"); false
           with Wire.Truncated _ -> true));
    tc "ipv4 ttl decrement" (fun () ->
        let hdr = Ipv4.make ~ttl:2 ~src ~dst (Ipv4.Udp (Udp.make ~src_port:1 ~dst_port:2 "")) in
        match Ipv4.decrement_ttl hdr with
        | Some h ->
            check Alcotest.int "ttl" 1 h.Ipv4.ttl;
            check Alcotest.bool "dies" true (Ipv4.decrement_ttl h = None)
        | None -> Alcotest.fail "should survive");
  ]

(* ---- Flow identity ---- *)

let flow_tests =
  [
    prop "flow_hash equals Flow_key.hash of flow_key" Gen.packet_gen
      ~print:Gen.packet_print (fun pkt ->
        let key = Packet.flow_key pkt in
        Packet.flow_hash pkt = Packet.Flow_key.hash key
        && Packet.flow_hash ~seed:7 pkt = Packet.Flow_key.hash ~seed:7 key
        && Packet.flow_hash pkt >= 0);
    prop "flow identity survives encode/decode" Gen.packet_gen
      ~print:Gen.packet_print (fun pkt ->
        let pkt' = Packet.decode (Packet.encode pkt) in
        Packet.Flow_key.equal (Packet.flow_key pkt) (Packet.flow_key pkt')
        && Packet.flow_hash pkt = Packet.flow_hash pkt');
    prop "vlan push and pop never change the flow"
      (QCheck2.Gen.pair Gen.packet_gen Gen.vlan_gen)
      ~print:(fun (pkt, _) -> Gen.packet_print pkt)
      (fun (pkt, tag) ->
        Packet.Flow_key.equal (Packet.flow_key pkt)
          (Packet.flow_key (Packet.push_vlan tag pkt)));
    prop "equal keys agree with compare and hash equal"
      (QCheck2.Gen.pair Gen.packet_gen Gen.packet_gen)
      ~print:(fun (a, _) -> Gen.packet_print a)
      (fun (a, b) ->
        let ka = Packet.flow_key a and kb = Packet.flow_key b in
        Packet.Flow_key.equal ka kb = (Packet.Flow_key.compare ka kb = 0)
        && ((not (Packet.Flow_key.equal ka kb))
           || Packet.Flow_key.hash ka = Packet.Flow_key.hash kb));
    tc "to_string names the protocol and endpoints" (fun () ->
        let udp =
          Packet.udp ~dst:(Mac_addr.make_local 1) ~src:(Mac_addr.make_local 2)
            ~ip_src:src ~ip_dst:dst ~src_port:4242 ~dst_port:80 "x"
        in
        check Alcotest.string "udp" "udp 10.0.0.1:4242>10.0.0.2:80"
          (Packet.Flow_key.to_string (Packet.flow_key udp));
        let tcp =
          Packet.tcp ~dst:(Mac_addr.make_local 1) ~src:(Mac_addr.make_local 2)
            ~ip_src:src ~ip_dst:dst ~src_port:1 ~dst_port:443 "x"
        in
        check Alcotest.string "tcp" "tcp 10.0.0.1:1>10.0.0.2:443"
          (Packet.Flow_key.to_string (Packet.flow_key tcp)));
    tc "non-IP frames key on the ethertype alone" (fun () ->
        let arp =
          Packet.arp_request ~src_mac:(Mac_addr.make_local 2) ~src_ip:src
            ~target_ip:dst
        in
        let k = Packet.flow_key arp in
        check Alcotest.int "ethertype" 0x0806 k.Packet.Flow_key.fk_ety;
        check Alcotest.int "no protocol" (-1) k.Packet.Flow_key.fk_proto;
        check Alcotest.bool "any src" true
          (Ipv4_addr.equal k.Packet.Flow_key.fk_src Ipv4_addr.any);
        check Alcotest.int "no sport" 0 k.Packet.Flow_key.fk_sport;
        check Alcotest.string "rendered" "ety:0x0806"
          (Packet.Flow_key.to_string k));
  ]

let suite =
  [
    ("netpkt.mac", mac_tests);
    ("netpkt.ipv4", ipv4_tests);
    ("netpkt.checksum", checksum_tests);
    ("netpkt.arp", arp_tests);
    ("netpkt.l4", l4_tests);
    ("netpkt.http", http_tests);
    ("netpkt.packet", packet_tests);
    ("netpkt.flow", flow_tests);
  ]
