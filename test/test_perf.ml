(* The profiling plane: causal span derivation (the tiling invariant
   behind cost attribution), per-stage profiles, the three trace export
   formats (golden-pinned), the bench-history regression gate, and the
   deterministic perf rig with the ISSUE's 10%-attribution acceptance
   bound. *)

open Telemetry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- a hand-authored HARMLESS-ish walk: host -> legacy (tag) ->
   soft switch -> host, with wire gaps between the visits ---- *)

let hop ~seq ~ts ~component ~layer ~stage ?port ?(cycles = 0) ?(detail = "") ()
    : Trace.hop =
  {
    Trace.seq;
    ts_ns = ts;
    component;
    layer;
    stage;
    port;
    trace_key = 48879;
    packet = "icmp h0->h1";
    bytes = 64;
    cycles;
    words = 0;
    detail;
  }

let walk_hops =
  [
    hop ~seq:1 ~ts:0 ~component:"h0" ~layer:Trace.Host ~stage:"tx" ();
    hop ~seq:2 ~ts:1000 ~component:"legacy0" ~layer:Trace.Legacy
      ~stage:"ingress" ~port:1 ~cycles:90 ();
    hop ~seq:3 ~ts:1400 ~component:"legacy0" ~layer:Trace.Legacy
      ~stage:"tag_push" ~port:5 ~cycles:12 ~detail:"vlan 101" ();
    hop ~seq:4 ~ts:2600 ~component:"sw-ss1" ~layer:Trace.Switch
      ~stage:"pipeline" ~port:0 ~cycles:300 ();
    hop ~seq:5 ~ts:4100 ~component:"h1" ~layer:Trace.Host ~stage:"rx" ();
  ]

let walk = { Trace.key = 48879; hops = walk_hops }

(* Leaves of a span forest: spans no other span names as parent. *)
let leaves spans =
  let parents = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
      match s.Span.parent with
      | Some p -> Hashtbl.replace parents p ()
      | None -> ())
    spans;
  List.filter (fun (s : Span.t) -> not (Hashtbl.mem parents s.Span.id)) spans

let span_tests =
  [
    tc "stage + transit spans exactly tile the packet span" (fun () ->
        match Span.of_trace walk with
        | [] -> Alcotest.fail "no spans"
        | root :: _ as spans ->
            check Alcotest.string "root is the packet span" "packet"
              root.Span.name;
            let leaf_sum =
              List.fold_left
                (fun acc s -> acc + Span.duration_ns s)
                0 (leaves spans)
            in
            check Alcotest.int "leaves tile the root" (Span.duration_ns root)
              leaf_sum;
            check Alcotest.int "e2e duration" 4100 (Span.duration_ns root));
    tc "span tree shape: ids, parents, visits, cycles" (fun () ->
        let spans = Span.of_trace walk in
        (* 1 root + 4 visits + 5 stages + 3 transits *)
        check Alcotest.int "span count" 13 (List.length spans);
        List.iteri
          (fun i (s : Span.t) ->
            check Alcotest.int "ids are 1-based and dense" (i + 1) s.Span.id)
          spans;
        let root = List.hd spans in
        check (Alcotest.option Alcotest.int) "root has no parent" None
          root.Span.parent;
        check Alcotest.int "root sums all modelled cycles" 402 root.Span.cycles;
        let names = List.map (fun (s : Span.t) -> s.Span.name) spans in
        check (Alcotest.list Alcotest.string) "preorder names"
          [
            "packet"; "h0"; "host.tx"; "transit:host->legacy0"; "legacy0";
            "legacy.ingress"; "legacy.tag_push"; "transit:legacy0->sw-ss1";
            "sw-ss1"; "switch.pipeline"; "transit:sw-ss1->host"; "h1";
            "host.rx";
          ]
          names);
    tc "host endpoints collapse to \"host\" in transit names" (fun () ->
        let names =
          List.map (fun (s : Span.t) -> s.Span.name) (Span.of_trace walk)
        in
        check Alcotest.bool "first transit uses the role name" true
          (List.mem "transit:host->legacy0" names);
        check Alcotest.bool "last transit uses the role name" true
          (List.mem "transit:sw-ss1->host" names);
        check Alcotest.bool "no per-host transit key" false
          (List.exists (fun n -> contains n "h0" && contains n "transit") names));
    tc "empty trace yields no spans, of_traces keeps ids unique" (fun () ->
        check Alcotest.int "empty" 0
          (List.length (Span.of_trace { Trace.key = 1; hops = [] }));
        let two = Span.of_traces [ walk; { walk with Trace.key = 7 } ] in
        let ids = List.map (fun (s : Span.t) -> s.Span.id) two in
        check Alcotest.int "all ids distinct" (List.length two)
          (List.length (List.sort_uniq compare ids)));
    prop "tiling invariant holds for arbitrary hop sequences"
      ~print:QCheck2.Print.(list (pair int int))
      QCheck2.Gen.(list_size (int_range 1 20) (pair (int_bound 2) (int_bound 100)))
      (fun steps ->
        let ts = ref 0 in
        let hops =
          List.mapi
            (fun i (comp, dt) ->
              ts := !ts + dt;
              hop ~seq:(i + 1) ~ts:!ts
                ~component:(String.make 1 (Char.chr (Char.code 'a' + comp)))
                ~layer:Trace.Switch ~stage:"s" ())
            steps
        in
        match Span.of_trace { Trace.key = 3; hops } with
        | [] -> false
        | root :: _ as spans ->
            let leaf_sum =
              List.fold_left
                (fun acc s -> acc + Span.duration_ns s)
                0 (leaves spans)
            in
            leaf_sum = Span.duration_ns root);
  ]

(* ---- golden renderings: one per `harmlessctl trace --format` ---- *)

let text_golden =
  "packet 0000beef: icmp h0->h1 (5 hops)\n\
  \        0ns  h0                                 host NIC out\n\
  \    1.000us  legacy0      port 1       90 cyc  ingress\n\
  \    1.400us  legacy0      port 5       12 cyc  legacy: push 802.1Q tag, up \
   the trunk  [vlan 101]\n\
  \    2.600us  sw-ss1       port 0      300 cyc  switch-pipeline\n\
  \    4.100us  h1                                 host NIC in — delivered\n"

let collapsed_golden =
  "packet;legacy0;legacy.ingress 400\n\
   packet;transit:host->legacy0 1000\n\
   packet;transit:legacy0->sw-ss1 1200\n\
   packet;transit:sw-ss1->host 1500\n"

let chrome_golden =
  {|[
 {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"h0"}},
 {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"legacy0"}},
 {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":3,"args":{"name":"sw-ss1"}},
 {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":4,"args":{"name":"h1"}},
 {"name":"host.tx","cat":"host","ph":"X","ts":0,"dur":0.001,"pid":1,"tid":1,"args":{"packet":"icmp h0->h1","trace_key":"0000beef","bytes":64}},
 {"name":"legacy.ingress","cat":"legacy","ph":"X","ts":1,"dur":0.0375,"pid":1,"tid":2,"args":{"packet":"icmp h0->h1","trace_key":"0000beef","bytes":64,"port":1,"cycles":90}},
 {"name":"legacy.tag_push","cat":"legacy","ph":"X","ts":1.4,"dur":0.005,"pid":1,"tid":2,"args":{"packet":"icmp h0->h1","trace_key":"0000beef","bytes":64,"port":5,"cycles":12,"detail":"vlan 101"}},
 {"name":"switch.pipeline","cat":"switch","ph":"X","ts":2.6,"dur":0.125,"pid":1,"tid":3,"args":{"packet":"icmp h0->h1","trace_key":"0000beef","bytes":64,"port":0,"cycles":300}},
 {"name":"host.rx","cat":"host","ph":"X","ts":4.1,"dur":0.001,"pid":1,"tid":4,"args":{"packet":"icmp h0->h1","trace_key":"0000beef","bytes":64}},
 {"name":"packet","cat":"packet","ph":"b","ts":0,"pid":1,"tid":1,"id":"0x0000beef","args":{"cycles":402,"detail":"icmp h0->h1"}},
 {"name":"packet","cat":"packet","ph":"e","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"h0","cat":"packet","ph":"b","ts":0,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"h0"}},
 {"name":"h0","cat":"packet","ph":"e","ts":0,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"host.tx","cat":"packet","ph":"b","ts":0,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"h0"}},
 {"name":"host.tx","cat":"packet","ph":"e","ts":0,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:host->legacy0","cat":"packet","ph":"b","ts":0,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:host->legacy0","cat":"packet","ph":"e","ts":1,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"legacy0","cat":"packet","ph":"b","ts":1,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"legacy0","cycles":102}},
 {"name":"legacy0","cat":"packet","ph":"e","ts":1.4,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"legacy.ingress","cat":"packet","ph":"b","ts":1,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"legacy0","cycles":90}},
 {"name":"legacy.ingress","cat":"packet","ph":"e","ts":1.4,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"legacy.tag_push","cat":"packet","ph":"b","ts":1.4,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"legacy0","cycles":12,"detail":"vlan 101"}},
 {"name":"legacy.tag_push","cat":"packet","ph":"e","ts":1.4,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:legacy0->sw-ss1","cat":"packet","ph":"b","ts":1.4,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:legacy0->sw-ss1","cat":"packet","ph":"e","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"sw-ss1","cat":"packet","ph":"b","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"sw-ss1","cycles":300}},
 {"name":"sw-ss1","cat":"packet","ph":"e","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"switch.pipeline","cat":"packet","ph":"b","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"sw-ss1","cycles":300}},
 {"name":"switch.pipeline","cat":"packet","ph":"e","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:sw-ss1->host","cat":"packet","ph":"b","ts":2.6,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"transit:sw-ss1->host","cat":"packet","ph":"e","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"h1","cat":"packet","ph":"b","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"h1"}},
 {"name":"h1","cat":"packet","ph":"e","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef"},
 {"name":"host.rx","cat":"packet","ph":"b","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef","args":{"component":"h1"}},
 {"name":"host.rx","cat":"packet","ph":"e","ts":4.1,"pid":1,"tid":1,"id":"0x0000beef"}
]|}

let golden_tests =
  [
    tc "trace --format text (Trace_view.pp_trace)" (fun () ->
        check Alcotest.string "text golden" text_golden
          (Format.asprintf "%a"
             (Harmless.Trace_view.pp_trace Harmless.Trace_view.plain)
             walk));
    tc "trace --format chrome (Chrome_trace.to_string with spans)" (fun () ->
        check Alcotest.string "chrome golden" chrome_golden
          (Chrome_trace.to_string ~spans:(Span.of_trace walk) walk_hops));
    tc "trace --format collapsed (Span.to_collapsed)" (fun () ->
        check Alcotest.string "collapsed golden" collapsed_golden
          (Span.to_collapsed (Span.of_trace walk));
        check Alcotest.string "empty forest renders empty" ""
          (Span.to_collapsed []));
  ]

(* ---- Profile: attribution over the span leaves ---- *)

let profile_tests =
  [
    tc "per-stage p50s sum exactly to the e2e p50" (fun () ->
        let p = Profile.create () in
        Profile.record_trace p walk;
        check Alcotest.int "one trace" 1 (Profile.traces_recorded p);
        (match Profile.e2e p with
        | None -> Alcotest.fail "no e2e stats"
        | Some e ->
            check Alcotest.int "e2e p50" 4100 e.Profile.p50;
            check Alcotest.int "p50 sum attributes everything" e.Profile.p50
              (Profile.p50_sum_ns p));
        check (Alcotest.list Alcotest.string) "stages in appearance order"
          [
            "host.tx"; "transit:host->legacy0"; "legacy.ingress";
            "legacy.tag_push"; "transit:legacy0->sw-ss1"; "switch.pipeline";
            "transit:sw-ss1->host"; "host.rx";
          ]
          (Profile.stages p);
        let table = Profile.attribution_table p in
        check Alcotest.bool "table reports full attribution" true
          (contains table "attributes 100.0% of the measured e2e p50"));
    tc "cycles are sampled only where the model charges them" (fun () ->
        let p = Profile.create () in
        Profile.record_trace p walk;
        (match Profile.stage_cycles p ~stage:"legacy.ingress" with
        | Some s -> check Alcotest.int "ingress cycles p50" 90 s.Profile.p50
        | None -> Alcotest.fail "ingress cycles missing");
        check Alcotest.bool "explicit-0 stages have no cycle samples" true
          (Profile.stage_cycles p ~stage:"host.tx" = None));
    tc "a revisited component gets an occurrence-suffixed key" (fun () ->
        let hops =
          [
            hop ~seq:1 ~ts:0 ~component:"h0" ~layer:Trace.Host ~stage:"tx" ();
            hop ~seq:2 ~ts:1000 ~component:"sw-ss1" ~layer:Trace.Switch
              ~stage:"pipeline" ~cycles:100 ();
            hop ~seq:3 ~ts:2000 ~component:"legacy0" ~layer:Trace.Legacy
              ~stage:"ingress" ~cycles:90 ();
            hop ~seq:4 ~ts:3000 ~component:"sw-ss1" ~layer:Trace.Switch
              ~stage:"pipeline" ~cycles:100 ();
            hop ~seq:5 ~ts:4000 ~component:"h1" ~layer:Trace.Host ~stage:"rx" ();
          ]
        in
        let p = Profile.create () in
        Profile.record_trace p { Trace.key = 5; hops };
        let stages = Profile.stages p in
        check Alcotest.bool "first crossing" true
          (List.mem "switch.pipeline" stages);
        check Alcotest.bool "second crossing is #2" true
          (List.mem "switch.pipeline#2" stages);
        match Profile.e2e p with
        | None -> Alcotest.fail "no e2e"
        | Some e ->
            check Alcotest.int "suffixing keeps the sum exact" e.Profile.p50
              (Profile.p50_sum_ns p));
    tc "publish mirrors the distributions into registry histograms" (fun () ->
        let p = Profile.create () in
        Profile.record_trace p walk;
        let registry = Registry.create () in
        Profile.publish ~registry ~prefix:"t" p;
        let h name labels = Registry.Histogram.v ~registry ~labels name in
        check Alcotest.int "stage latency samples" 1
          (Registry.Histogram.count
             (h "t_stage_latency_ns" [ ("stage", "legacy.ingress") ]));
        check Alcotest.int "e2e samples" 1
          (Registry.Histogram.count
             (Registry.Histogram.v ~registry "t_e2e_latency_ns")));
  ]

(* ---- the perf rig: the ISSUE acceptance bounds ---- *)

let within_10pct (p : Profile.t) =
  match Profile.e2e p with
  | None -> false
  | Some e ->
      let sum = Profile.p50_sum_ns p in
      abs (sum - e.Profile.p50) * 10 <= e.Profile.p50

let perf_rig_tests =
  [
    tc "per-stage p50s attribute the measured e2e p50 within 10%" (fun () ->
        match Harmless.Perf_rig.run ~num_hosts:3 ~pings:12 () with
        | Error e -> Alcotest.failf "rig: %s" e
        | Ok r ->
            check Alcotest.bool "HARMLESS path attribution" true
              (within_10pct r.Harmless.Perf_rig.harmless);
            check Alcotest.bool "direct path attribution" true
              (within_10pct r.Harmless.Perf_rig.plain);
            (match Harmless.Perf_rig.overhead_ratio r with
            | None -> Alcotest.fail "no overhead ratio"
            | Some ratio ->
                check Alcotest.bool "the detour costs something" true
                  (ratio > 1.0));
            let table = Harmless.Perf_rig.attribution r in
            check Alcotest.bool "attribution names the tag stage" true
              (contains table "tag-push");
            check Alcotest.bool "attribution reports the ratio" true
              (contains table "overhead ratio"));
    tc "the rig is deterministic: same parameters, same report" (fun () ->
        let attr () =
          match Harmless.Perf_rig.run ~num_hosts:3 ~pings:8 () with
          | Error e -> Alcotest.failf "rig: %s" e
          | Ok r -> Harmless.Perf_rig.attribution r
        in
        check Alcotest.string "byte-identical" (attr ()) (attr ()));
  ]

(* ---- bench history: parse, store, compare, gate ---- *)

let snapshot_doc =
  {|{"schema":"harmless-bench/1","quick":true,"results":[
      {"name":"lookup/eswitch-64","ns_per_run":120.5,"r_square":0.99,"runs":40},
      {"name":"lookup/naive-64","ns_per_run":890.0,"r_square":null,"runs":40},
      {"name":"fuzz/oracle-step","ns_per_run":null,"r_square":null,"runs":0}]}|}

let snap_exn s =
  match Bench_history.snapshot_of_string s with
  | Ok s -> s
  | Error e -> Alcotest.failf "snapshot: %s" e

let row ?words name ns : Bench_history.row =
  { Bench_history.name; ns_per_run = ns; minor_words_per_run = words;
    r_square = None; runs = 10 }

let snap rows : Bench_history.snapshot =
  { Bench_history.quick = false; label = ""; rows }

let verdict : Bench_history.verdict Alcotest.testable =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Bench_history.Steady -> "Steady"
        | Regressed -> "Regressed"
        | Improved -> "Improved"
        | Added -> "Added"
        | Removed -> "Removed"
        | No_data -> "No_data"))
    ( = )

let verdict_of comparisons name =
  match
    List.find_opt
      (fun c -> c.Bench_history.cname = name)
      comparisons
  with
  | Some c -> c.Bench_history.cverdict
  | None -> Alcotest.failf "no comparison row for %s" name

let bench_history_tests =
  [
    tc "snapshot parsing and history-line round trip" (fun () ->
        let s = snap_exn snapshot_doc in
        check Alcotest.bool "quick" true s.Bench_history.quick;
        check Alcotest.int "rows" 3 (List.length s.Bench_history.rows);
        (match s.Bench_history.rows with
        | first :: _ ->
            check Alcotest.string "name" "lookup/eswitch-64"
              first.Bench_history.name;
            check (Alcotest.option (Alcotest.float 1e-9)) "estimate"
              (Some 120.5) first.Bench_history.ns_per_run
        | [] -> Alcotest.fail "no rows");
        let line = Bench_history.snapshot_to_history_line ~label:"ci" s in
        let back = snap_exn line in
        check Alcotest.string "label survives" "ci" back.Bench_history.label;
        check Alcotest.int "rows survive" 3 (List.length back.Bench_history.rows);
        check Alcotest.bool "null estimate survives" true
          (List.exists
             (fun (r : Bench_history.row) -> r.Bench_history.ns_per_run = None)
             back.Bench_history.rows));
    tc "unknown schema and shapeless documents are rejected" (fun () ->
        check Alcotest.bool "bad schema" true
          (Result.is_error
             (Bench_history.snapshot_of_string
                {|{"schema":"nope/9","results":[]}|}));
        check Alcotest.bool "no results" true
          (Result.is_error
             (Bench_history.snapshot_of_string
                {|{"schema":"harmless-bench/1"}|}));
        check Alcotest.bool "row without name" true
          (Result.is_error
             (Bench_history.snapshot_of_string
                {|{"schema":"harmless-bench/1","results":[{"ns_per_run":1}]}|})));
    tc "append builds a loadable JSONL trajectory" (fun () ->
        let path = Filename.temp_file "bench_history" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sys.remove path;
            Bench_history.append ~path ~label:"run-1" (snap_exn snapshot_doc);
            Bench_history.append ~path ~label:"run-2" (snap_exn snapshot_doc);
            (match Bench_history.load_history ~path with
            | Error e -> Alcotest.failf "history: %s" e
            | Ok entries ->
                check Alcotest.int "two entries" 2 (List.length entries);
                check
                  (Alcotest.list Alcotest.string)
                  "oldest first"
                  [ "run-1"; "run-2" ]
                  (List.map
                     (fun (s : Bench_history.snapshot) -> s.Bench_history.label)
                     entries));
            (* load_snapshot on a history file takes the newest entry *)
            match Bench_history.load_snapshot ~path with
            | Error e -> Alcotest.failf "snapshot: %s" e
            | Ok s ->
                check Alcotest.string "newest wins" "run-2"
                  s.Bench_history.label));
    tc "verdict matrix under the default thresholds" (fun () ->
        let baseline =
          snap
            [
              row "a/steady" (Some 100.0); row "b/regressed" (Some 100.0);
              row "c/improved" (Some 100.0); row "d/gone" (Some 5.0);
              row "e/no-data" None; row "f/tiny" (Some 0.5);
            ]
        in
        let current =
          snap
            [
              row "a/steady" (Some 110.0); row "b/regressed" (Some 200.0);
              row "c/improved" (Some 50.0); row "e/no-data" (Some 5.0);
              row "f/tiny" (Some 2.0); row "g/new" (Some 1.0);
            ]
        in
        let d = Bench_history.diff ~baseline ~current () in
        check (Alcotest.list Alcotest.string) "sorted by name"
          [ "a/steady"; "b/regressed"; "c/improved"; "d/gone"; "e/no-data";
            "f/tiny"; "g/new" ]
          (List.map (fun c -> c.Bench_history.cname) d);
        check verdict "within the band" Bench_history.Steady
          (verdict_of d "a/steady");
        check verdict "over the band" Bench_history.Regressed
          (verdict_of d "b/regressed");
        check verdict "under the band" Bench_history.Improved
          (verdict_of d "c/improved");
        check verdict "missing current" Bench_history.Removed
          (verdict_of d "d/gone");
        check verdict "null baseline estimate" Bench_history.No_data
          (verdict_of d "e/no-data");
        (* 0.5ns -> 2.0ns is 4x but inside the 2ns absolute floor *)
        check verdict "absolute floor absorbs sub-ns jitter"
          Bench_history.Steady (verdict_of d "f/tiny");
        check verdict "missing baseline" Bench_history.Added
          (verdict_of d "g/new");
        check Alcotest.int "one regression" 1
          (List.length (Bench_history.regressions d)));
    tc "a synthetic 2x slowdown in one stage trips the gate" (fun () ->
        let baseline =
          snap [ row "lookup/eswitch-64" (Some 1000.0); row "x/y" (Some 40.0) ]
        in
        let doctored =
          snap [ row "lookup/eswitch-64" (Some 2000.0); row "x/y" (Some 40.0) ]
        in
        (* even the --quick-tolerant thresholds catch a 2x step *)
        List.iter
          (fun thresholds ->
            let d = Bench_history.diff ~thresholds ~baseline ~current:doctored () in
            let regs = Bench_history.regressions d in
            check Alcotest.int "exactly the doctored bench" 1 (List.length regs);
            check Alcotest.string "which one" "lookup/eswitch-64"
              (List.hd regs).Bench_history.cname)
          [ Bench_history.default_thresholds; Bench_history.quick_tolerant ];
        (* and the unchanged run does not *)
        let clean =
          Bench_history.diff ~baseline ~current:baseline ()
        in
        check Alcotest.int "no false positive" 0
          (List.length (Bench_history.regressions clean)));
    tc "render_table is deterministic and flags regressions" (fun () ->
        let baseline = snap [ row "a/a" (Some 100.0) ] in
        let current = snap [ row "a/a" (Some 300.0) ] in
        let d = Bench_history.diff ~baseline ~current () in
        let t1 = Bench_history.render_table d in
        check Alcotest.string "stable output" t1 (Bench_history.render_table d);
        check Alcotest.bool "flags the regression" true
          (contains t1 "REGRESSED");
        check Alcotest.bool "summary line" true (contains t1 "1 regressed"));
  ]

(* ---- the Json parser the history store depends on ---- *)

let json_tests =
  [
    tc "numbers: int vs float classification" (fun () ->
        check Alcotest.bool "int" true (Json.of_string "42" = Ok (Json.Int 42));
        check Alcotest.bool "negative int" true
          (Json.of_string "-7" = Ok (Json.Int (-7)));
        check Alcotest.bool "decimal is float" true
          (Json.of_string "1.5" = Ok (Json.Float 1.5));
        check Alcotest.bool "exponent is float" true
          (Json.of_string "1e3" = Ok (Json.Float 1000.0)));
    tc "documents round-trip through to_string" (fun () ->
        let doc =
          Json.Obj
            [
              ("s", Json.Str "a\"b\\c\n");
              ("xs", Json.Arr [ Json.Int 1; Json.Null; Json.Bool false ]);
              ("f", Json.Float 2.5);
            ]
        in
        check Alcotest.bool "round trip" true
          (Json.of_string (Json.to_string doc) = Ok doc));
    tc "unicode escapes re-encode as UTF-8" (fun () ->
        check Alcotest.bool "2-byte" true
          (Json.of_string {|"é"|} = Ok (Json.Str "\xc3\xa9"));
        check Alcotest.bool "3-byte" true
          (Json.of_string {|"€"|} = Ok (Json.Str "\xe2\x82\xac")));
    tc "malformed input is an error, not an exception" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true (Result.is_error (Json.of_string s)))
          [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "nul"; "\"open"; "" ]);
    tc "accessors are shallow and shape-checked" (fun () ->
        let doc = Json.Obj [ ("n", Json.Int 3); ("s", Json.Str "x") ] in
        check (Alcotest.option Alcotest.int) "int member" (Some 3)
          (Option.bind (Json.member "n" doc) Json.to_int_opt);
        check (Alcotest.option Alcotest.int) "wrong shape" None
          (Option.bind (Json.member "s" doc) Json.to_int_opt);
        check (Alcotest.option Alcotest.int) "missing" None
          (Option.bind (Json.member "z" doc) Json.to_int_opt));
  ]

(* ---- surfaces: chaos stage SLIs and the dashboard frame ---- *)

let surface_tests =
  [
    tc "chaos reports recovery-probe stage SLIs" (fun () ->
        Registry.reset Registry.default;
        let engine = Simnet.Engine.create () in
        match Harmless.Chaos.build engine ~num_hosts:3 ~seed:42 () with
        | Error e -> Alcotest.failf "build: %s" e
        | Ok rig -> (
            match
              Harmless.Chaos.run rig
                ~script:"2ms channel down\n6ms channel up\n"
                ~duration:(Simnet.Sim_time.ms 15) ()
            with
            | Error e -> Alcotest.failf "run: %s" e
            | Ok r ->
                check Alcotest.bool "stage SLIs present" true
                  (r.Harmless.Chaos.stage_slis <> []);
                List.iter
                  (fun (stage, (s : Profile.stats)) ->
                    if s.Profile.count <= 0 then
                      Alcotest.failf "stage %s has no samples" stage)
                  r.Harmless.Chaos.stage_slis;
                let rendered =
                  Format.asprintf "%a" Harmless.Chaos.pp_report r
                in
                check Alcotest.bool "report renders the SLIs" true
                  (contains rendered "recovery-probe stage SLIs")));
    tc "dashboard render_stages: empty frame, then the attribution table"
      (fun () ->
        Registry.reset Registry.default;
        match Harmless.Dashboard.demo () with
        | Error e -> Alcotest.failf "demo: %s" e
        | Ok d ->
            check Alcotest.bool "before traffic" true
              (contains
                 (Harmless.Dashboard.render_stages d)
                 "no traced traffic yet");
            Harmless.Dashboard.advance d (Simnet.Sim_time.ms 6);
            let frame = Harmless.Dashboard.render_stages d in
            check Alcotest.bool "has the table header" true
              (contains frame "stage");
            check Alcotest.bool "has the measured e2e row" true
              (contains frame "end-to-end (measured)"));
  ]

let suite =
  [
    ("perf_spans", span_tests);
    ("perf_trace_goldens", golden_tests);
    ("perf_profile", profile_tests);
    ("perf_rig", perf_rig_tests);
    ("perf_bench_history", bench_history_tests);
    ("perf_json", json_tests);
    ("perf_surfaces", surface_tests);
  ]
