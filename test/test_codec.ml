open Openflow
open Netpkt

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 300) gen ~print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ---- generators ---- *)

let match_gen =
  let open QCheck2.Gen in
  let maybe g = oneof [ return (fun m -> m); g ] in
  let chain fs m = List.fold_left (fun acc f -> f acc) m fs in
  map
    (fun fs -> chain fs Of_match.any)
    (flatten_l
       [
         maybe (map Of_match.in_port (int_bound 255));
         maybe (map (fun m -> Of_match.eth_dst m) Gen.unicast_mac_gen);
         maybe
           (map
              (fun m ->
                Of_match.eth_src ~mask:(Mac_addr.of_string "ff:ff:ff:00:00:00") m)
              Gen.unicast_mac_gen);
         maybe (map Of_match.eth_type (oneofl [ 0x0800; 0x0806 ]));
         maybe
           (oneof
              [
                return Of_match.vlan_absent;
                return Of_match.vlan_present;
                map Of_match.vid (int_range 1 4094);
              ]);
         maybe (map Of_match.vlan_pcp (int_range 0 7));
         maybe (map Of_match.ip_tos (int_bound 63));
         maybe (map Of_match.ip_proto (oneofl [ 1; 6; 17 ]));
         maybe (map Of_match.ip_src Gen.prefix_gen);
         maybe (map Of_match.ip_dst Gen.prefix_gen);
         maybe (map Of_match.l4_src Gen.port_gen);
         maybe (map Of_match.l4_dst Gen.port_gen);
       ])

let action_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun p -> Of_action.output p) (int_bound 255);
      return (Of_action.Output Of_action.In_port);
      return (Of_action.Output Of_action.Flood);
      return (Of_action.Output Of_action.All);
      map (fun n -> Of_action.Output (Of_action.Controller n)) (int_bound 0xffff);
      map (fun g -> Of_action.Group g) (int_range 1 1000);
      return Of_action.Push_vlan;
      return Of_action.Pop_vlan;
      map (fun v -> Of_action.Set_vlan_vid v) (int_range 1 4094);
      map (fun p -> Of_action.Set_vlan_pcp p) (int_range 0 7);
      map (fun m -> Of_action.Set_eth_src m) Gen.unicast_mac_gen;
      map (fun m -> Of_action.Set_eth_dst m) Gen.unicast_mac_gen;
      map (fun ip -> Of_action.Set_ip_src ip) Gen.ip_gen;
      map (fun ip -> Of_action.Set_ip_dst ip) Gen.ip_gen;
      map (fun v -> Of_action.Set_ip_tos v) (int_bound 255);
      map (fun p -> Of_action.Set_l4_src p) Gen.port_gen;
      map (fun p -> Of_action.Set_l4_dst p) Gen.port_gen;
      return Of_action.Drop;
    ]

let instruction_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun acts -> Flow_entry.Apply_actions acts) (list_size (int_bound 4) action_gen);
      map (fun acts -> Flow_entry.Write_actions acts) (list_size (int_bound 4) action_gen);
      return Flow_entry.Clear_actions;
      map (fun n -> Flow_entry.Goto_table n) (int_range 1 3);
      map (fun id -> Flow_entry.Meter id) (int_range 1 100);
    ]

let flow_mod_gen =
  let open QCheck2.Gen in
  map3
    (fun (m, instrs) (priority, table_id) (idle, hard) ->
      {
        Of_message.table_id;
        command = Of_message.Add;
        priority;
        match_ = m;
        instructions = instrs;
        cookie = 42L;
        idle_timeout_s = (if idle = 0 then None else Some idle);
        hard_timeout_s = (if hard = 0 then None else Some hard);
        out_port = None;
      })
    (pair match_gen (list_size (int_bound 3) instruction_gen))
    (pair (int_bound 0xffff) (int_bound 3))
    (pair (int_bound 100) (int_bound 100))

let message_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Of_message.Hello;
      map (fun s -> Of_message.Echo_request s) string_printable;
      map (fun s -> Of_message.Echo_reply s) string_printable;
      return Of_message.Features_request;
      map
        (fun (d, (p, t)) ->
          Of_message.Features_reply
            { datapath_id = Int64.of_int d; num_ports = p; num_tables = t })
        (pair (int_bound 1000000) (pair (int_bound 255) (int_range 1 254)));
      map (fun fm -> Of_message.Flow_mod fm) flow_mod_gen;
      map
        (fun (id, buckets) ->
          Of_message.Group_mod
            (Of_message.Add_group { id; gtype = Group_table.Select; buckets }))
        (pair (int_range 1 100)
           (list_size (int_range 1 3)
              (map
                 (fun (w, acts) -> { Group_table.weight = 1 + w; actions = acts })
                 (pair (int_bound 10) (list_size (int_bound 3) action_gen)))));
      map
        (fun (id, (rate, burst)) ->
          Of_message.Meter_mod
            (Of_message.Add_meter
               {
                 id;
                 band = { Meter_table.rate_kbps = 1 + rate; burst_kb = 1 + burst };
               }))
        (pair (int_range 1 100) (pair (int_bound 1000000) (int_bound 1000)));
      map
        (fun (port, pkt) ->
          Of_message.Packet_in
            { in_port = port; reason = Of_message.No_match; packet = pkt })
        (pair (int_bound 255) Gen.packet_gen);
      map
        (fun ((port, acts), pkt) ->
          Of_message.Packet_out
            {
              in_port = (if port = 0 then None else Some port);
              actions = acts;
              packet = pkt;
            })
        (pair (pair (int_bound 255) (list_size (int_bound 4) action_gen)) Gen.packet_gen);
      map (fun t -> Of_message.Flow_stats_request { table_id = t })
        (oneof [ return None; map Option.some (int_bound 3) ]);
      return Of_message.Port_stats_request;
      map
        (fun stats ->
          Of_message.Flow_stats_reply
            (List.map
               (fun (m, (p, b)) ->
                 {
                   Of_message.stat_table_id = 0;
                   stat_priority = 1000;
                   stat_match = m;
                   stat_packets = p;
                   stat_bytes = b;
                 })
               stats))
        (list_size (int_bound 4)
           (pair match_gen (pair (int_bound 100000) (int_bound 10000000))));
      map
        (fun stats ->
          Of_message.Port_stats_reply
            (List.map
               (fun (n, ((rx, tx), (rxb, txb))) ->
                 {
                   Of_message.port_no = n;
                   rx_packets = rx;
                   tx_packets = tx;
                   rx_bytes = rxb;
                   tx_bytes = txb;
                 })
               stats))
        (list_size (int_bound 4)
           (pair (int_bound 48)
              (pair
                 (pair (int_bound 100000) (int_bound 100000))
                 (pair (int_bound 100000000) (int_bound 100000000)))));
      map (fun n -> Of_message.Barrier_request n) (int_bound 1000);
      map (fun n -> Of_message.Barrier_reply n) (int_bound 1000);
      map (fun s -> Of_message.Error s) string_printable;
    ]

let print_message m = Format.asprintf "%a" Of_message.pp m

(* Structural equality is fine: messages contain no closures. *)
let messages_equal a b = a = b

let roundtrip_tests =
  [
    prop "every message round-trips through the wire" message_gen
      ~print:print_message
      (fun m ->
        let m', xid = Of_codec.decode (Of_codec.encode ~xid:77l m) in
        messages_equal m m' && Int32.equal xid 77l);
    prop "streams of frames split and decode" (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5) message_gen)
      ~print:(fun ms -> String.concat "; " (List.map print_message ms))
      (fun ms ->
        let stream = String.concat "" (List.map (Of_codec.encode ~xid:1l) ms) in
        let decoded = List.map fst (Of_codec.decode_stream stream) in
        List.length decoded = List.length ms && List.for_all2 messages_equal ms decoded);
  ]

let error_tests =
  [
    tc "bad version rejected" (fun () ->
        let frame = Of_codec.encode Of_message.Hello in
        let bad = Bytes.of_string frame in
        Bytes.set bad 0 '\x01';
        check Alcotest.bool "raises" true
          (try ignore (Of_codec.decode (Bytes.to_string bad)); false
           with Of_codec.Decode_error _ -> true));
    tc "length mismatch rejected" (fun () ->
        let frame = Of_codec.encode Of_message.Hello in
        check Alcotest.bool "raises" true
          (try ignore (Of_codec.decode (frame ^ "garbage")); false
           with Of_codec.Decode_error _ -> true));
    tc "truncated frame rejected" (fun () ->
        let frame =
          Of_codec.encode
            (Of_message.Flow_mod (Of_message.add_flow ~match_:Of_match.any []))
        in
        check Alcotest.bool "raises" true
          (try
             ignore (Of_codec.decode (String.sub frame 0 (String.length frame - 3)));
             false
           with Of_codec.Decode_error _ -> true));
    tc "stream with trailing junk rejected" (fun () ->
        let stream = Of_codec.encode Of_message.Hello ^ "\x04" in
        check Alcotest.bool "raises" true
          (try ignore (Of_codec.decode_stream stream); false
           with Of_codec.Decode_error _ -> true));
    tc "unknown message type rejected" (fun () ->
        let frame = Bytes.of_string (Of_codec.encode Of_message.Hello) in
        Bytes.set frame 1 '\x63';
        check Alcotest.bool "raises" true
          (try ignore (Of_codec.decode (Bytes.to_string frame)); false
           with Of_codec.Decode_error _ -> true));
    tc "header type codes are the spec's" (fun () ->
        check Alcotest.int "hello" 0 (Of_codec.message_type_code Of_message.Hello);
        check Alcotest.int "flow-mod" 14
          (Of_codec.message_type_code
             (Of_message.Flow_mod (Of_message.add_flow ~match_:Of_match.any [])));
        check Alcotest.int "packet-out" 13
          (Of_codec.message_type_code
             (Of_message.Packet_out
                {
                  in_port = None;
                  actions = [];
                  packet =
                    Packet.arp_request
                      ~src_mac:(Mac_addr.make_local 1)
                      ~src_ip:(Ipv4_addr.of_string "10.0.0.1")
                      ~target_ip:(Ipv4_addr.of_string "10.0.0.2");
                }));
        check Alcotest.int "meter-mod" 29
          (Of_codec.message_type_code
             (Of_message.Meter_mod (Of_message.Delete_meter { id = 1 }))));
  ]



(* ---- fuzzing: decode must never escape Decode_error ---- *)

let total_by_fuzz frame =
  match Of_codec.decode frame with
  | _ -> true (* decoding successfully is fine *)
  | exception Of_codec.Decode_error _ -> true
  | exception _ -> false

let fuzz_tests =
  [
    prop "random bytes never crash the decoder" ~count:500
      (QCheck2.Gen.map
         (fun chars -> String.init (List.length chars) (List.nth chars))
         (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 64) QCheck2.Gen.char))
      ~print:String.escaped total_by_fuzz;
    prop "bit-flipped valid frames never crash the decoder" ~count:500
      (QCheck2.Gen.triple message_gen (QCheck2.Gen.int_bound 10000)
         (QCheck2.Gen.int_bound 255))
      ~print:(fun (m, _, _) -> print_message m)
      (fun (m, pos_seed, byte) ->
        let frame = Bytes.of_string (Of_codec.encode m) in
        let pos = pos_seed mod Bytes.length frame in
        Bytes.set frame pos (Char.chr byte);
        total_by_fuzz (Bytes.to_string frame));
    prop "truncations never crash the decoder" ~count:300
      (QCheck2.Gen.pair message_gen (QCheck2.Gen.int_bound 10000))
      ~print:(fun (m, _) -> print_message m)
      (fun (m, cut_seed) ->
        let frame = Of_codec.encode m in
        let cut = cut_seed mod String.length frame in
        total_by_fuzz (String.sub frame 0 cut));
  ]

(* ---- pinned fuzzer findings: the result API must return Error ---- *)

(* Each hex frame below is a class of input the differential/codec
   fuzzing campaign threw at the decoder: truncated bodies, length
   fields that lie (header and interior), unknown types, garbage.  The
   contract is [decode_result]: a clean [Error _], never an exception. *)
let rejected_frames =
  [
    ("empty input", "");
    ("header cut to 4 bytes", "040c001c");
    ("bare minimal header, body missing", "040e0048000000ff");
    ( "oversized header length on a real echo",
      "040cffff000000000200000000000000000000130000000000000000" );
    ( "header length below the 8-byte minimum",
      "04130004000000050004000000000000" );
    ( "header length one short of the body",
      "040c001b000000000200000000000000000000130000000000000000" );
    ( "valid echo frame plus trailing garbage",
      "040c001c00000000020000000000000000000013000000000000000000000000" );
    ("all-ones header", "ffffffffffffffff");
    ("unknown message type 0x63", "0463000800000001");
    ( "interior stats length blown up to 0xffff",
      "04130080000000050004ffff000000000000003300000000000000000000000000\
       00000000000000000000000000000000000000000000000000000000000000000000\
       00000000000000000000000000000000000000000000000000000000000000000000\
       0000000000000000000000000000000000000000000000000000" );
    ( "packet-out whose inner frame is truncated",
      "040d0010fffffffdffffffff00200000" );
  ]

let result_api_tests =
  List.map
    (fun (name, hex) ->
      tc name (fun () ->
          let frame =
            match Check.Hex.decode hex with
            | Ok f -> f
            | Error e -> Alcotest.failf "bad test hex: %s" e
          in
          match Of_codec.decode_result frame with
          | Error _ -> ()
          | Ok (m, _) ->
              Alcotest.failf "unexpectedly decoded: %a" Of_message.pp m
          | exception e ->
              Alcotest.failf "decode_result raised %s" (Printexc.to_string e)))
    rejected_frames
  @ [
      tc "decode_result accepts what decode accepts" (fun () ->
          let frame = Of_codec.encode ~xid:9l Of_message.Hello in
          match Of_codec.decode_result frame with
          | Ok (Of_message.Hello, 9l) -> ()
          | Ok _ -> Alcotest.fail "wrong message"
          | Error e -> Alcotest.failf "rejected a valid frame: %s" e);
      tc "decode_stream_result rejects a torn stream" (fun () ->
          let stream = Of_codec.encode Of_message.Hello ^ "\x04" in
          match Of_codec.decode_stream_result stream with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "accepted a torn stream"
          | exception e ->
              Alcotest.failf "decode_stream_result raised %s"
                (Printexc.to_string e));
    ]

let suite =
  [
    ("codec.roundtrip", roundtrip_tests);
    ("codec.errors", error_tests);
    ("codec.fuzz", fuzz_tests);
    ("codec.result-api", result_api_tests);
  ]
