(* The memory-telemetry plane: alloc probes and their zero-cost-when-off
   contract, GC time series and alloc-rate alerting, engine queue
   telemetry, the alloc tiling invariant through profiles, and the
   alloc axis of the bench-regression gate. *)

open Telemetry

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_contains what ~needle hay =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle hay

let words () = int_of_float (Gc.minor_words ())

let test_pkt =
  Netpkt.Packet.udp
    ~dst:(Netpkt.Mac_addr.make_local 2)
    ~src:(Netpkt.Mac_addr.make_local 1)
    ~ip_src:(Netpkt.Ipv4_addr.of_string "10.8.0.1")
    ~ip_dst:(Netpkt.Ipv4_addr.of_string "10.8.0.2")
    ~src_port:1 ~dst_port:2 "x"

(* ---- the disabled fast paths must cost exactly nothing ---- *)

let zero_alloc_tests =
  [
    tc "disabled probe brackets allocate exactly zero minor words" (fun () ->
        check Alcotest.bool "no recorder" false (Allocprof.enabled ());
        let section () =
          let m = Allocprof.mark () in
          Allocprof.record "memtel.noop" m
        in
        section ();
        let before = words () in
        for _ = 1 to 10_000 do
          section ()
        done;
        check Alcotest.int "minor words delta over 10k brackets" 0
          (words () - before));
    tc "guarded no-op Trace.emit allocates exactly zero minor words"
      (fun () ->
        check Alcotest.bool "no sink" false (Trace.enabled ());
        let emit_guarded () =
          if Trace.enabled () then
            Trace.emit ~ts_ns:0 ~component:"memtel" ~layer:Trace.Host
              ~stage:"noop" test_pkt
        in
        emit_guarded ();
        let before = words () in
        for _ = 1 to 10_000 do
          emit_guarded ()
        done;
        check Alcotest.int "minor words delta over 10k emits" 0
          (words () - before));
  ]

(* ---- recorder: per-site folding and the table ---- *)

let allocprof_tests =
  [
    tc "with_recorder folds sections into per-site stats" (fun () ->
        let (), recorder =
          Allocprof.with_recorder (fun () ->
              for _ = 1 to 5 do
                let m = Allocprof.mark () in
                ignore (Sys.opaque_identity (Array.make 16 0));
                Allocprof.record "memtel.array" m
              done;
              let m = Allocprof.mark () in
              Allocprof.record "memtel.empty" m)
        in
        check Alcotest.bool "uninstalled afterwards" false
          (Allocprof.enabled ());
        check
          (Alcotest.list Alcotest.string)
          "sites in first-appearance order"
          [ "memtel.array"; "memtel.empty" ]
          (Allocprof.sites recorder);
        check Alcotest.int "total samples" 6 (Allocprof.count recorder);
        (match Allocprof.stats recorder "memtel.array" with
        | None -> Alcotest.fail "no stats for memtel.array"
        | Some s ->
            check Alcotest.int "count" 5 s.Allocprof.count;
            (* Array.make 16 is at least 17 words; the bracket may tax a
               few more *)
            check Alcotest.bool "p50 covers the array" true
              (s.Allocprof.p50 >= 17);
            check Alcotest.bool "total >= 5 * p50-ish" true
              (s.Allocprof.total >= 5 * 17));
        (match Allocprof.stats recorder "memtel.empty" with
        | None -> Alcotest.fail "no stats for memtel.empty"
        | Some s -> check Alcotest.int "empty section" 0 s.Allocprof.p50);
        check (Alcotest.option Alcotest.reject) "unknown site" None
          (Option.map ignore (Allocprof.stats recorder "memtel.nope"));
        let table = Allocprof.table recorder in
        check_contains "table row" ~needle:"memtel.array" table;
        check_contains "table footer" ~needle:"6 probe samples" table;
        check Alcotest.string "table is deterministic" table
          (Allocprof.table recorder));
    tc "instrumented wire codec reports under a recorder" (fun () ->
        let raw = Netpkt.Packet.encode test_pkt in
        let (), recorder =
          Allocprof.with_recorder (fun () ->
              for _ = 1 to 8 do
                ignore (Sys.opaque_identity (Netpkt.Packet.encode test_pkt));
                ignore (Sys.opaque_identity (Netpkt.Packet.decode raw));
                ignore
                  (Sys.opaque_identity (Netpkt.Packet.Fields.of_packet test_pkt))
              done)
        in
        List.iter
          (fun site ->
            match Allocprof.stats recorder site with
            | None -> Alcotest.failf "site %s never reported" site
            | Some s ->
                check Alcotest.int (site ^ " count") 8 s.Allocprof.count;
                check Alcotest.bool (site ^ " allocates") true
                  (s.Allocprof.p50 > 0))
          [ "wire.encode"; "wire.decode"; "wire.fields" ]);
  ]

(* ---- GC series: deterministic observe feed, rate, alerting ---- *)

let ms = Simnet.Sim_time.ms

let gcstats_tests =
  [
    tc "observe feeds the series and alloc_rate reads them back" (fun () ->
        let g = Gcstats.create () in
        let feed ts_ns allocated =
          Gcstats.observe g ~ts_ns ~minor_collections:1 ~major_collections:0
            ~promoted_words:10.0 ~heap_words:50_000
            ~allocated_words:allocated
        in
        feed 0 0.0;
        feed 1_000_000_000 1_000_000.0;
        check Alcotest.int "samples" 2 (Gcstats.samples g);
        (match
           Gcstats.alloc_rate g ~now_ns:1_000_000_000 ~window:2_000_000_000
         with
        | None -> Alcotest.fail "no rate"
        | Some r ->
            check (Alcotest.float 1.0) "1e6 words over 1 s" 1_000_000.0 r);
        check Alcotest.int "allocated series sees both points" 2
          (Timeseries.length (Gcstats.allocated_words_series g));
        let panel =
          Gcstats.panel g ~now_ns:1_000_000_000 ~window:2_000_000_000
        in
        check_contains "panel" ~needle:"gc: 2 samples" panel;
        check_contains "panel rate" ~needle:"1.0Mw/s" panel);
    tc "live sampling records monotone allocated-words" (fun () ->
        let g = Gcstats.create () in
        Gcstats.sample g ~ts_ns:0;
        ignore (Sys.opaque_identity (Array.make 1000 0));
        Gcstats.sample g ~ts_ns:1000;
        match Timeseries.to_list (Gcstats.allocated_words_series g) with
        | [ (_, a); (_, b) ] ->
            check Alcotest.bool "allocation counter grew" true (b > a)
        | pts -> Alcotest.failf "expected 2 points, got %d" (List.length pts));
    tc "alloc-rate rule walks ok -> pending -> firing -> resolved" (fun () ->
        let g = Gcstats.create () in
        let alerts = Alert.create () in
        Gcstats.add_alloc_rate_rule g alerts ~name:"memtel-alloc-rate"
          ~for_:(ms 2) ~words_per_second:1000.0 ~window:(ms 2) ();
        check (Alcotest.list Alcotest.string) "registered"
          [ "memtel-alloc-rate" ] (Alert.rules alerts);
        let feed ts_ns allocated =
          Gcstats.observe g ~ts_ns ~minor_collections:0 ~major_collections:0
            ~promoted_words:0.0 ~heap_words:1000 ~allocated_words:allocated
        in
        let state_at () =
          match Alert.state alerts "memtel-alloc-rate" with
          | Alert.Ok -> "ok"
          | Alert.Pending _ -> "pending"
          | Alert.Firing _ -> "firing"
        in
        (* a sustained 1e8 w/s burn, then flat *)
        feed 0 0.0;
        Alert.eval alerts ~now_ns:0;
        check Alcotest.string "quiet start" "ok" (state_at ());
        feed (ms 1) 100_000.0;
        Alert.eval alerts ~now_ns:(ms 1);
        check Alcotest.string "breach enters pending" "pending" (state_at ());
        feed (ms 2) 200_000.0;
        Alert.eval alerts ~now_ns:(ms 2);
        feed (ms 3) 300_000.0;
        Alert.eval alerts ~now_ns:(ms 3);
        check Alcotest.string "held past for_ fires" "firing" (state_at ());
        (* allocation goes flat: the windowed rate collapses to zero *)
        feed (ms 5) 300_000.0;
        Alert.eval alerts ~now_ns:(ms 5);
        feed (ms 7) 300_000.0;
        Alert.eval alerts ~now_ns:(ms 7);
        check Alcotest.string "flat allocation resolves" "ok" (state_at ());
        check
          (Alcotest.list Alcotest.string)
          "transition golden"
          [ "ok->pending"; "pending->firing"; "firing->ok" ]
          (List.map
             (fun (t : Alert.transition) ->
               t.Alert.from_state ^ "->" ^ t.Alert.to_state)
             (Alert.log alerts));
        check Alcotest.int "one closed breach window" 1
          (List.length (Alert.breaches alerts "memtel-alloc-rate")));
  ]

(* ---- engine queue-depth and scheduling-lag series ---- *)

let engine_telemetry_tests =
  [
    tc "bursty workload shows up in depth and lag series" (fun () ->
        let engine = Simnet.Engine.create () in
        check Alcotest.bool "off by default" true
          (Simnet.Engine.queue_depth_series engine = None);
        Simnet.Engine.enable_telemetry ~sample_every:1 engine;
        (* every ms, a burst of 8 immediate events; the queue piles up
           at each burst and drains before the next *)
        let stop = Simnet.Sim_time.of_ns (ms 10) in
        Simnet.Engine.schedule_every engine (ms 1) (fun () ->
            for _ = 1 to 8 do
              Simnet.Engine.schedule_after engine 0 (fun () -> ())
            done;
            Simnet.Sim_time.( < ) (Simnet.Engine.now engine) stop);
        Simnet.Engine.run engine ~until:stop;
        let depth =
          match Simnet.Engine.queue_depth_series engine with
          | Some s -> s
          | None -> Alcotest.fail "no depth series"
        in
        let lag =
          match Simnet.Engine.scheduling_lag_series engine with
          | Some s -> s
          | None -> Alcotest.fail "no lag series"
        in
        let depths = List.map snd (Timeseries.to_list depth) in
        let lags = List.map snd (Timeseries.to_list lag) in
        check Alcotest.bool "sampled every dispatch" true
          (List.length depths >= 80);
        check Alcotest.bool "burst depth observed" true
          (List.exists (fun d -> d >= 7.0) depths);
        check Alcotest.bool "drained between bursts" true
          (List.exists (fun d -> d = 0.0) depths);
        check Alcotest.bool "burst events have zero lag" true
          (List.exists (fun l -> l = 0.0) lags);
        check Alcotest.bool "tick events jump a full period" true
          (List.exists (fun l -> l >= float_of_int (ms 1)) lags);
        (* the sampled gauges ride publish_metrics *)
        let registry = Registry.create () in
        Simnet.Engine.publish_metrics ~registry engine;
        let rendered = Registry.to_prometheus registry in
        check_contains "depth gauge" ~needle:"sim_queue_depth_sampled" rendered;
        check_contains "lag gauge" ~needle:"sim_sched_lag_ns" rendered);
    tc "sample_every thins the series" (fun () ->
        let engine = Simnet.Engine.create () in
        Simnet.Engine.enable_telemetry ~sample_every:4 engine;
        for i = 1 to 100 do
          Simnet.Engine.schedule_after engine i (fun () -> ())
        done;
        Simnet.Engine.run engine;
        match Simnet.Engine.queue_depth_series engine with
        | None -> Alcotest.fail "no series"
        | Some s ->
            check Alcotest.int "one sample per 4 events" 25
              (Timeseries.length s));
  ]

(* ---- the alloc tiling invariant through spans and profiles ---- *)

let hop ~seq ~ts ~words ~component ~layer ~stage : Trace.hop =
  {
    Trace.seq;
    ts_ns = ts;
    component;
    layer;
    stage;
    port = None;
    trace_key = 3405;
    packet = "icmp";
    bytes = 64;
    cycles = 0;
    words;
    detail = "";
  }

let alloc_walk =
  {
    Trace.key = 3405;
    hops =
      [
        hop ~seq:1 ~ts:0 ~words:1000 ~component:"h0" ~layer:Trace.Host
          ~stage:"tx";
        hop ~seq:2 ~ts:1000 ~words:1250 ~component:"legacy0"
          ~layer:Trace.Legacy ~stage:"ingress";
        hop ~seq:3 ~ts:2000 ~words:1500 ~component:"sw0" ~layer:Trace.Switch
          ~stage:"pipeline";
        hop ~seq:4 ~ts:3000 ~words:1900 ~component:"h1" ~layer:Trace.Host
          ~stage:"rx";
      ];
  }

let profile_alloc_tests =
  [
    tc "span word endpoints telescope to the root exactly" (fun () ->
        match Span.of_trace alloc_walk with
        | [] -> Alcotest.fail "no spans"
        | root :: _ as spans ->
            check Alcotest.int "root alloc" 900 (Span.alloc_words root);
            let leaf_alloc =
              let parents = Hashtbl.create 16 in
              List.iter
                (fun (s : Span.t) ->
                  match s.Span.parent with
                  | Some p -> Hashtbl.replace parents p ()
                  | None -> ())
                spans;
              List.fold_left
                (fun acc (s : Span.t) ->
                  if Hashtbl.mem parents s.Span.id then acc
                  else acc + Span.alloc_words s)
                0 spans
            in
            check Alcotest.int "leaves tile the root's allocation" 900
              leaf_alloc);
    tc "profile alloc p50 sum equals the e2e alloc p50" (fun () ->
        let p = Profile.create () in
        Profile.record_trace p alloc_walk;
        (match Profile.e2e_alloc p with
        | None -> Alcotest.fail "no e2e alloc"
        | Some s -> check Alcotest.int "e2e alloc p50" 900 s.Profile.p50);
        check Alcotest.int "attributed = measured" 900
          (Profile.alloc_p50_sum_words p);
        let table = Profile.attribution_table p in
        check_contains "alloc column" ~needle:"wds/pkt" table;
        check_contains "alloc footer" ~needle:"stage alloc p50 sum" table);
    tc "perf rig: stage alloc sum attributes e2e alloc within 10%" (fun () ->
        match Harmless.Perf_rig.run ~num_hosts:3 ~pings:20 () with
        | Error e -> Alcotest.failf "rig: %s" e
        | Ok r -> (
            let profile = r.Harmless.Perf_rig.harmless in
            match Profile.e2e_alloc profile with
            | None -> Alcotest.fail "rig collected no e2e alloc"
            | Some e2e ->
                check Alcotest.bool "traced hops allocate" true
                  (e2e.Profile.p50 > 0);
                let attributed = Profile.alloc_p50_sum_words profile in
                let ratio =
                  float_of_int attributed /. float_of_int e2e.Profile.p50
                in
                if ratio < 0.9 || ratio > 1.1 then
                  Alcotest.failf
                    "alloc p50 sum %dw vs e2e %dw (ratio %.3f) outside 10%%"
                    attributed e2e.Profile.p50 ratio;
                let table = Harmless.Perf_rig.attribution r in
                check_contains "rig alloc line" ~needle:"alloc ratio" table));
  ]

(* ---- the alloc axis of the bench-regression gate ---- *)

let row ?ns ?words name : Bench_history.row =
  { Bench_history.name; ns_per_run = ns; minor_words_per_run = words;
    r_square = None; runs = 10 }

let snap rows : Bench_history.snapshot =
  { Bench_history.quick = false; label = ""; rows }

let cmp_of comparisons name =
  match
    List.find_opt (fun c -> c.Bench_history.cname = name) comparisons
  with
  | Some c -> c
  | None -> Alcotest.failf "no comparison row for %s" name

let bench_gate_tests =
  [
    tc "v2 snapshots round-trip words; v1 still parses as no-data"
      (fun () ->
        let v2 =
          {|{"schema":"harmless-bench/2","quick":false,"results":[
              {"name":"wire/decode-1518","ns_per_run":800.0,
               "minor_words_per_run":420.0,"r_square":0.99,"runs":20}]}|}
        in
        (match Bench_history.snapshot_of_string v2 with
        | Error e -> Alcotest.failf "v2: %s" e
        | Ok s -> (
            match s.Bench_history.rows with
            | [ r ] ->
                check
                  (Alcotest.option (Alcotest.float 1e-9))
                  "words parsed" (Some 420.0) r.Bench_history.minor_words_per_run;
                let line = Bench_history.snapshot_to_history_line s in
                check_contains "line schema"
                  ~needle:"harmless-bench-history/2" line;
                check_contains "line words" ~needle:"minor_words_per_run" line
            | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)));
        let v1 =
          {|{"schema":"harmless-bench/1","quick":false,"results":[
              {"name":"wire/decode-1518","ns_per_run":800.0,"r_square":0.99,"runs":20}]}|}
        in
        match Bench_history.snapshot_of_string v1 with
        | Error e -> Alcotest.failf "v1: %s" e
        | Ok s ->
            check
              (Alcotest.option (Alcotest.float 1e-9))
              "v1 words are None" None
              (List.hd s.Bench_history.rows).Bench_history.minor_words_per_run);
    tc "per-axis verdicts combine into the overall verdict" (fun () ->
        let baseline =
          snap
            [
              row ~ns:100.0 ~words:100.0 "a/both-steady";
              row ~ns:100.0 ~words:100.0 "b/alloc-regressed";
              row ~ns:100.0 ~words:100.0 "c/time-regressed-alloc-improved";
              row ~ns:100.0 "d/no-alloc-data";
              row ~ns:100.0 ~words:100.0 "e/alloc-improved";
            ]
        in
        let current =
          snap
            [
              row ~ns:102.0 ~words:104.0 "a/both-steady";
              row ~ns:102.0 ~words:200.0 "b/alloc-regressed";
              row ~ns:300.0 ~words:50.0 "c/time-regressed-alloc-improved";
              row ~ns:102.0 "d/no-alloc-data";
              row ~ns:102.0 ~words:50.0 "e/alloc-improved";
            ]
        in
        let d = Bench_history.diff ~baseline ~current () in
        let overall name = (cmp_of d name).Bench_history.cverdict in
        check Alcotest.bool "steady stays steady" true
          (overall "a/both-steady" = Bench_history.Steady);
        check Alcotest.bool "alloc regression alone gates" true
          (overall "b/alloc-regressed" = Bench_history.Regressed);
        check Alcotest.bool "time regression wins over alloc improvement" true
          (overall "c/time-regressed-alloc-improved" = Bench_history.Regressed);
        check Alcotest.bool "missing alloc data never gates" true
          (overall "d/no-alloc-data" = Bench_history.Steady);
        check Alcotest.bool "alloc improvement surfaces" true
          (overall "e/alloc-improved" = Bench_history.Improved);
        let b = cmp_of d "b/alloc-regressed" in
        check Alcotest.bool "time axis itself steady" true
          (b.Bench_history.time_verdict = Bench_history.Steady);
        check Alcotest.bool "alloc axis regressed" true
          (b.Bench_history.alloc_verdict = Bench_history.Regressed);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "words ratio" (Some 2.0) b.Bench_history.words_ratio);
    tc "doubled decode allocation trips the gate like a slowdown" (fun () ->
        let baseline =
          snap
            [
              row ~ns:800.0 ~words:420.0 "wire/decode-1518";
              row ~ns:100.0 ~words:50.0 "wire/encode-1518";
            ]
        in
        let doctored =
          snap
            [
              row ~ns:800.0 ~words:840.0 "wire/decode-1518";
              row ~ns:100.0 ~words:50.0 "wire/encode-1518";
            ]
        in
        (* both threshold presets catch a 2x allocation step — the same
           condition `harmlessctl perf check` exits 3 on *)
        List.iter
          (fun thresholds ->
            let d =
              Bench_history.diff ~thresholds ~baseline ~current:doctored ()
            in
            let regs = Bench_history.regressions d in
            check Alcotest.int "exactly the doctored bench" 1
              (List.length regs);
            check Alcotest.string "which one" "wire/decode-1518"
              (List.hd regs).Bench_history.cname)
          [ Bench_history.default_thresholds; Bench_history.quick_tolerant ];
        let table =
          Bench_history.render_table
            (Bench_history.diff ~baseline ~current:doctored ())
        in
        check_contains "axis-annotated verdict" ~needle:"REGRESSED(alloc)"
          table;
        check_contains "summary" ~needle:"1 regressed" table;
        (* and the clean run stays clean *)
        check Alcotest.int "no false positive" 0
          (List.length
             (Bench_history.regressions
                (Bench_history.diff ~baseline ~current:baseline ()))));
  ]

let suite =
  [
    ("memtel_zero_alloc", zero_alloc_tests);
    ("memtel_allocprof", allocprof_tests);
    ("memtel_gcstats", gcstats_tests);
    ("memtel_engine", engine_telemetry_tests);
    ("memtel_profile", profile_alloc_tests);
    ("memtel_bench_gate", bench_gate_tests);
  ]
