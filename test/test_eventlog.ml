(* The flight recorder and the post-mortem plane: per-stream ring
   bounds, the zero-cost disabled path, event line round-trips, the
   corr-id join with the packet tracer through the Chrome trace export,
   capture-at-finalize semantics, snapshot serialization, and the
   canary-breach root-cause golden. *)

open Telemetry

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_contains what ~needle hay =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle hay

let count_occurrences hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i acc =
    if i + ln > lh then acc
    else if String.sub hay i ln = needle then go (i + ln) (acc + 1)
    else go (i + 1) acc
  in
  if ln = 0 then 0 else go 0 0

let words () = int_of_float (Gc.minor_words ())

let test_pkt =
  Netpkt.Packet.udp
    ~dst:(Netpkt.Mac_addr.make_local 4)
    ~src:(Netpkt.Mac_addr.make_local 3)
    ~ip_src:(Netpkt.Ipv4_addr.of_string "10.9.0.1")
    ~ip_dst:(Netpkt.Ipv4_addr.of_string "10.9.0.2")
    ~src_port:7 ~dst_port:8 "y"

(* ---- the recorder itself ---- *)

let recorder_tests =
  [
    tc "per-stream ring wraps, keeps the newest, counts evictions"
      (fun () ->
        let (), retained =
          Eventlog.with_recorder ~stream_capacity:4 (fun r ->
              for i = 1 to 10 do
                Eventlog.emit ~ts_ns:i ~stream:"s"
                  ~detail:(Printf.sprintf "n%d" i) "tick"
              done;
              check Alcotest.int "recorded counts evicted too" 10
                (Eventlog.recorded r);
              check Alcotest.int "dropped = overflow" 6 (Eventlog.dropped r))
        in
        check Alcotest.int "ring retains capacity" 4 (List.length retained);
        check
          Alcotest.(list int)
          "newest survive, in order" [ 7; 8; 9; 10 ]
          (List.map (fun (e : Eventlog.event) -> e.Eventlog.seq) retained));
    tc "streams are bounded independently and merge by (ts, seq)"
      (fun () ->
        let (), retained =
          Eventlog.with_recorder ~stream_capacity:2 (fun r ->
              Eventlog.emit ~ts_ns:5 ~stream:"b" "one";
              Eventlog.emit ~ts_ns:1 ~stream:"a" "one";
              Eventlog.emit ~ts_ns:9 ~stream:"a" "two";
              Eventlog.emit ~ts_ns:3 ~stream:"a" "three";
              (* "a" wrapped (capacity 2); "b" did not. *)
              check Alcotest.int "one eviction" 1 (Eventlog.dropped r);
              check
                Alcotest.(list string)
                "streams sorted" [ "a"; "b" ] (Eventlog.streams r);
              check Alcotest.int "stream filter" 2
                (List.length (Eventlog.events ~stream:"a" r)))
        in
        check
          Alcotest.(list string)
          "merged (ts, seq) order" [ "three"; "one"; "two" ]
          (List.map (fun (e : Eventlog.event) -> e.Eventlog.name) retained));
    tc "min_level filters, levels order debug < info < warn < error"
      (fun () ->
        let (), _ =
          Eventlog.with_recorder (fun r ->
              Eventlog.emit ~level:Eventlog.Debug ~ts_ns:1 ~stream:"s" "d";
              Eventlog.emit ~level:Eventlog.Info ~ts_ns:2 ~stream:"s" "i";
              Eventlog.emit ~level:Eventlog.Warn ~ts_ns:3 ~stream:"s" "w";
              Eventlog.emit ~level:Eventlog.Error ~ts_ns:4 ~stream:"s" "e";
              check Alcotest.int "warn and up" 2
                (List.length (Eventlog.events ~min_level:Eventlog.Warn r)))
        in
        ());
    tc "stream and name must be tokens" (fun () ->
        let (), _ =
          Eventlog.with_recorder (fun _ ->
              Alcotest.check_raises "space in stream"
                (Invalid_argument
                   "Eventlog.emit: stream must be a non-empty token: \"a b\"")
                (fun () -> Eventlog.emit ~stream:"a b" "x");
              Alcotest.check_raises "empty name"
                (Invalid_argument
                   "Eventlog.emit: event name must be a non-empty token: \"\"")
                (fun () -> Eventlog.emit ~stream:"s" ""))
        in
        ());
    tc "corr_of_string is stable and never zero" (fun () ->
        let c = Eventlog.corr_of_string "channel:chaos-legacy-ss2" in
        check Alcotest.int "same name, same id" c
          (Eventlog.corr_of_string "channel:chaos-legacy-ss2");
        check Alcotest.bool "nonzero" true (c <> 0));
    tc "guarded no-op Eventlog.emit allocates exactly zero minor words"
      (fun () ->
        check Alcotest.bool "no recorder" false (Eventlog.enabled ());
        let emit_guarded () =
          if Eventlog.enabled () then
            Eventlog.emit ~ts_ns:0 ~stream:"eventlog" "noop"
        in
        emit_guarded ();
        let before = words () in
        for _ = 1 to 10_000 do
          emit_guarded ()
        done;
        check Alcotest.int "minor words delta over 10k emits" 0
          (words () - before));
    tc "event line round-trips through to_string/of_string" (fun () ->
        let (), retained =
          Eventlog.with_recorder (fun _ ->
              Eventlog.emit ~level:Eventlog.Warn ~ts_ns:4_200_000
                ~corr:(Eventlog.corr_of_string "trunk:primary")
                ~detail:"trunk:primary degrade loss=0.95" ~stream:"fault"
                "degrade")
        in
        let e = List.hd retained in
        let line = Eventlog.event_to_string e in
        match Eventlog.event_of_string line with
        | Error msg -> Alcotest.failf "parse failed: %s (%s)" msg line
        | Ok e' ->
            check Alcotest.string "line is a fixpoint" line
              (Eventlog.event_to_string e');
            check Alcotest.int "corr preserved" e.Eventlog.corr
              e'.Eventlog.corr;
            check Alcotest.string "detail preserved" e.Eventlog.detail
              e'.Eventlog.detail);
  ]

(* ---- the corr-id join with the packet tracer ---- *)

let join_tests =
  [
    tc "event and hop share one trace_key through the Chrome export"
      (fun () ->
        let key = Trace.key_of_packet test_pkt in
        let (), traces =
          Trace.with_collector (fun _ ->
              Trace.emit ~ts_ns:10 ~component:"host0" ~layer:Trace.Host
                ~stage:"tx" ~cycles:0 test_pkt)
        in
        let hops = List.concat_map (fun tr -> tr.Trace.hops) traces in
        let (), events =
          Eventlog.with_recorder (fun _ ->
              Eventlog.emit ~level:Eventlog.Debug ~ts_ns:20 ~corr:key
                ~detail:"dpid:2 port=0" ~stream:"controller" "packet-in")
        in
        let out = Chrome_trace.to_string ~events hops in
        let needle = Printf.sprintf "\"%08x\"" key in
        check Alcotest.int
          "trace_key appears in both the hop and the instant event" 2
          (count_occurrences out needle);
        check_contains "instant phase present" ~needle:"\"ph\":\"i\"" out;
        check_contains "per-stream pseudo thread"
          ~needle:"events:controller" out);
  ]

(* ---- capture-at-finalize and snapshot serialization ---- *)

let postmortem_tests =
  [
    tc "uneventful recording captures nothing" (fun () ->
        let snap, _ =
          Eventlog.with_recorder (fun r ->
              Eventlog.emit ~ts_ns:1 ~stream:"channel" "connect";
              Postmortem.capture ~scenario:"quiet" ~seed:1 ~captured_ns:10 r)
        in
        check Alcotest.bool "no trigger, no snapshot" true (snap = None));
    tc "capture windows events around the first trigger" (fun () ->
        let snap, _ =
          Eventlog.with_recorder (fun r ->
              Eventlog.emit ~ts_ns:1_000_000 ~stream:"channel" "connect";
              Eventlog.emit ~ts_ns:20_000_000 ~stream:"channel" "drop";
              Eventlog.emit ~level:Eventlog.Warn ~ts_ns:30_000_000
                ~corr:(Eventlog.corr_of_string "trunk:primary")
                ~detail:"trunk:primary down" ~stream:"fault" "down";
              Eventlog.emit ~level:Eventlog.Error ~ts_ns:31_000_000
                ~corr:(Eventlog.corr_of_string "slo") ~detail:"slo value=0"
                ~stream:"alert" "firing";
              Postmortem.capture ~scenario:"windowed" ~seed:7
                ~captured_ns:40_000_000 r)
        in
        match snap with
        | None -> Alcotest.fail "expected a snapshot"
        | Some s ->
            check Alcotest.int "window start = trigger - 5ms" 25_000_000
              s.Postmortem.window_start_ns;
            check Alcotest.int "pre-trigger noise excluded" 2
              (List.length s.Postmortem.events);
            check Alcotest.int "one trigger each kind" 2
              (List.length s.Postmortem.triggers);
            let tl = Postmortem.analyze s in
            (match tl.Postmortem.root_cause with
            | Some e ->
                check Alcotest.string "root cause is the fault" "fault"
                  e.Eventlog.stream
            | None -> Alcotest.fail "expected a root cause");
            (* serialization round-trip is a fixpoint *)
            let text = Postmortem.to_string s in
            (match Postmortem.of_string text with
            | Error msg -> Alcotest.failf "snapshot parse failed: %s" msg
            | Ok s' ->
                check Alcotest.string "to_string fixpoint" text
                  (Postmortem.to_string s'));
            check_contains "render names the root cause"
              ~needle:"root cause: fault down" (Postmortem.render s));
  ]

(* ---- the golden: the injected fault is the timeline's root cause ---- *)

let golden_tests =
  [
    tc "canary breach post-mortem names the trunk degrade as root cause"
      (fun () ->
        match Harmless.Migration_rig.canary_breach ~seed:42 () with
        | Error msg -> Alcotest.failf "breach scenario failed: %s" msg
        | Ok br -> (
            match br.Harmless.Migration_rig.postmortem with
            | None -> Alcotest.fail "breach must capture a post-mortem"
            | Some s ->
                let tl = Postmortem.analyze s in
                (match tl.Postmortem.root_cause with
                | None -> Alcotest.fail "expected a root cause"
                | Some e ->
                    check Alcotest.string "fault stream" "fault"
                      e.Eventlog.stream;
                    check Alcotest.string "degrade action" "degrade"
                      e.Eventlog.name;
                    check_contains "the injected target"
                      ~needle:"trunk:sw0" e.Eventlog.detail);
                let report = Postmortem.render s in
                check_contains "causal chain reaches the rollback"
                  ~needle:"migration.rollback sw0" report;
                check_contains "causal chain reaches the fleet abort"
                  ~needle:"fleet.abort" report;
                check_contains "liveness breach on the timeline"
                  ~needle:"alert.firing probe-liveness" report));
    tc "same seed, same snapshot (modulo process-global dpids)" (fun () ->
        (* Datapath ids come from a process-global counter, so two
           in-process runs disagree on them (and on the poller corr
           derived from them); byte-for-byte identity across fresh
           processes is what CI's cmp checks.  Everything else must
           match exactly. *)
        let normalize s =
          let s =
            Str.global_replace (Str.regexp "dpid:[0-9a-f]+") "dpid:_" s
          in
          Str.global_replace
            (Str.regexp "\\(poller \\)[0-9a-f]+")
            "\\1________" s
        in
        let snap_of () =
          match Harmless.Migration_rig.canary_breach ~seed:1337 () with
          | Error msg -> Alcotest.failf "breach scenario failed: %s" msg
          | Ok br -> (
              match br.Harmless.Migration_rig.postmortem with
              | None -> Alcotest.fail "breach must capture a post-mortem"
              | Some s -> normalize (Postmortem.to_string s))
        in
        check Alcotest.string "deterministic capture" (snap_of ())
          (snap_of ()));
  ]

let suite =
  [
    ("eventlog recorder", recorder_tests);
    ("eventlog trace join", join_tests);
    ("postmortem capture", postmortem_tests);
    ("postmortem golden", golden_tests);
  ]
